//! Irredundant sum-of-products (ISOP) extraction from a BDD interval.
//!
//! The Minato–Morreale algorithm computes a cube cover `C` for any function
//! interval `[lower, upper]` (with `lower ⊆ upper`): the cover satisfies
//! `lower ⊆ C ⊆ upper` and is *irredundant* — every cube contains at least
//! one minterm of `lower` no other cube covers.  Passing
//! `upper = lower ∨ dont_care` therefore performs two-level minimization
//! with the don't-care set absorbed for free, directly on the BDD and
//! without ever enumerating minterms.  This is the cover-extraction engine
//! of the symbolic logic back-end: next-state ON-sets are covered against
//! `¬OFF`, so unreachable codes (the don't-cares of the DAC'96 flow) cost
//! nothing.
//!
//! The recursion is memoised on `(lower, upper)` node pairs.  Because a
//! memoised cover can be referenced from many points of the recursion, the
//! cover is built as a shared DAG ([`IsopNode`], a poor man's ZDD) and only
//! expanded into an explicit cube list at the end.

use crate::hash::FxHashMap;
use crate::manager::{Bdd, BddManager};
use crate::node::{NodeId, VarId};
use std::rc::Rc;

/// One node of the shared cover DAG produced by the ISOP recursion.
///
/// A `Branch` mirrors one level of the recursion: cubes that carry the
/// negative literal of `var`, cubes that carry the positive literal, and
/// cubes that do not mention `var` at all.
enum IsopNode {
    /// The empty cover (no cubes).
    Empty,
    /// The single universal cube (no literals).
    Universe,
    /// Cubes split by their literal of `var`.
    Branch { var: VarId, neg: Rc<IsopNode>, pos: Rc<IsopNode>, dc: Rc<IsopNode> },
}

impl IsopNode {
    fn is_empty(&self) -> bool {
        matches!(self, IsopNode::Empty)
    }
}

/// The result of [`BddManager::isop`]: an irredundant cube cover plus the
/// function it computes.
#[derive(Clone, Debug)]
pub struct IsopCover {
    /// The cubes, each a sorted list of `(variable, phase)` literals.
    pub cubes: Vec<Vec<(VarId, bool)>>,
    /// The BDD of the cover (`lower ⊆ bdd ⊆ upper` holds by construction).
    pub bdd: Bdd,
}

impl IsopCover {
    /// Total number of fixed literals over all cubes — the area metric the
    /// paper reports.
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(Vec::len).sum()
    }
}

type IsopMemo = FxHashMap<(NodeId, NodeId), (Rc<IsopNode>, NodeId)>;

impl BddManager {
    /// The cofactor of `f` by a single literal: `f` with `var` fixed to
    /// `value`.  Synonym of [`Self::restrict`] under the name the two-level
    /// minimization literature uses.
    pub fn cofactor(&mut self, f: Bdd, var: VarId, value: bool) -> Bdd {
        self.restrict(f, var, value)
    }

    /// One satisfying assignment of `f` as `(var, value)` literals, or
    /// `None` when `f` is unsatisfiable.  Debugging helper: pairs with
    /// [`Self::cubes`] the way `one_sat`/`cube_iter` do in other BDD
    /// packages.
    pub fn one_sat(&self, f: Bdd) -> Option<Vec<(VarId, bool)>> {
        self.any_sat(f)
    }

    /// Computes an irredundant sum-of-products cover of any function in the
    /// interval `[lower, upper]` (Minato–Morreale).
    ///
    /// Every cube of the result lies entirely within `upper`, the union of
    /// the cubes covers `lower`, and no cube can be dropped without
    /// uncovering part of `lower`.  Minimizing an incompletely specified
    /// function `(on, dc)` is `isop(on, on ∨ dc)`; `isop(f, f)` yields an
    /// irredundant cover of `f` exactly.
    ///
    /// ```
    /// use bdd::BddManager;
    ///
    /// let mut m = BddManager::new(2);
    /// let (a, b) = (m.var(0), m.var(1));
    /// // ON-set {a ∧ b}, upper bound a: the don't-care a ∧ ¬b is absorbed,
    /// // so the cover collapses to the single literal a.
    /// let on = m.and(a, b);
    /// let cover = m.isop(on, a);
    /// assert_eq!(cover.cubes, vec![vec![(0, true)]]);
    /// assert_eq!(cover.literal_count(), 1);
    /// assert_eq!(cover.bdd, a);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `lower ⊄ upper` — the interval would be empty.
    pub fn isop(&mut self, lower: Bdd, upper: Bdd) -> IsopCover {
        assert!(self.implies(lower, upper), "isop: lower must imply upper");
        let mut memo: IsopMemo = FxHashMap::default();
        let (dag, f) = self.isop_rec(lower.node_id(), upper.node_id(), &mut memo);
        let mut cubes = Vec::new();
        let mut literals: Vec<(VarId, bool)> = Vec::new();
        collect_cubes(&dag, &mut literals, &mut cubes);
        IsopCover { cubes, bdd: Bdd(f) }
    }

    fn isop_rec(&mut self, l: NodeId, u: NodeId, memo: &mut IsopMemo) -> (Rc<IsopNode>, NodeId) {
        if l == NodeId::FALSE {
            return (Rc::new(IsopNode::Empty), NodeId::FALSE);
        }
        if u == NodeId::TRUE {
            return (Rc::new(IsopNode::Universe), NodeId::TRUE);
        }
        if self.budget_tripped() {
            // Budget poison: unwind with an empty cover; the caller discards
            // the result through `take_budget_trip`.
            return (Rc::new(IsopNode::Empty), NodeId::FALSE);
        }
        if let Some(hit) = memo.get(&(l, u)) {
            return hit.clone();
        }
        // Top variable of the pair; terminals report the sentinel, which is
        // larger than every real variable.
        let v = self.var_of(l).min(self.var_of(u));
        let (l0, l1) = self.cofactor_pair(l, v);
        let (u0, u1) = self.cofactor_pair(u, v);

        // Minterms of l0 (resp. l1) that no cube free of the ¬v (resp. v)
        // literal can reach: they must be covered by cubes carrying the
        // literal.
        let not_u1 = self.not(Bdd(u1)).node_id();
        let lnew0 = self.and(Bdd(l0), Bdd(not_u1)).node_id();
        let not_u0 = self.not(Bdd(u0)).node_id();
        let lnew1 = self.and(Bdd(l1), Bdd(not_u0)).node_id();
        let (c0, f0) = self.isop_rec(lnew0, u0, memo);
        let (c1, f1) = self.isop_rec(lnew1, u1, memo);

        // Whatever those literal-carrying cubes left uncovered can (and, for
        // irredundancy, must) be covered by cubes without a v literal; their
        // room is the intersection of both upper cofactors.
        let not_f0 = self.not(Bdd(f0)).node_id();
        let lrem0 = self.and(Bdd(l0), Bdd(not_f0)).node_id();
        let not_f1 = self.not(Bdd(f1)).node_id();
        let lrem1 = self.and(Bdd(l1), Bdd(not_f1)).node_id();
        let ld = self.or(Bdd(lrem0), Bdd(lrem1)).node_id();
        let ud = self.and(Bdd(u0), Bdd(u1)).node_id();
        let (cd, fd) = self.isop_rec(ld, ud, memo);

        // The cover function: every cofactor is independent of v, so one
        // `mk` assembles it without a full apply.
        let low = self.or(Bdd(f0), Bdd(fd)).node_id();
        let high = self.or(Bdd(f1), Bdd(fd)).node_id();
        let f = self.mk(v, low, high);

        let dag = if c0.is_empty() && c1.is_empty() {
            // No cube mentions v at this level: flatten to the shared part so
            // cube expansion does not walk a chain of empty branches.
            cd
        } else {
            Rc::new(IsopNode::Branch { var: v, neg: c0, pos: c1, dc: cd })
        };
        memo.insert((l, u), (dag.clone(), f));
        (dag, f)
    }

    /// Both cofactors of `f` by `var`, assuming `var` is at or above `f`'s
    /// root level.
    fn cofactor_pair(&self, f: NodeId, var: VarId) -> (NodeId, NodeId) {
        if self.var_of(f) == var {
            let (_, low, high) = self.node_triple(f);
            (low, high)
        } else {
            (f, f)
        }
    }
}

/// Expands the cover DAG into explicit cubes (one per root-to-leaf path that
/// ends in `Universe`).
fn collect_cubes(
    node: &IsopNode,
    literals: &mut Vec<(VarId, bool)>,
    out: &mut Vec<Vec<(VarId, bool)>>,
) {
    match node {
        IsopNode::Empty => {}
        IsopNode::Universe => out.push(literals.clone()),
        IsopNode::Branch { var, neg, pos, dc } => {
            literals.push((*var, false));
            collect_cubes(neg, literals, out);
            literals.pop();
            literals.push((*var, true));
            collect_cubes(pos, literals, out);
            literals.pop();
            collect_cubes(dc, literals, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 — deterministic generator for the randomized tests.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    fn random_cube_set(m: &mut BddManager, rng: &mut Rng, nv: u32, cubes: usize) -> Bdd {
        let mut acc = m.bottom();
        for _ in 0..cubes {
            let mut lits = Vec::new();
            for v in 0..nv {
                match rng.next() % 3 {
                    0 => lits.push((v, false)),
                    1 => lits.push((v, true)),
                    _ => {}
                }
            }
            let cube = m.cube_of(&lits);
            acc = m.or(acc, cube);
        }
        acc
    }

    fn cover_bdd(m: &mut BddManager, cover: &IsopCover) -> Bdd {
        let mut acc = m.bottom();
        for cube in &cover.cubes {
            let c = m.cube_of(cube);
            acc = m.or(acc, c);
        }
        acc
    }

    #[test]
    fn isop_of_simple_functions() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        let cover = m.isop(f, f);
        assert_eq!(cover.bdd, f);
        assert_eq!(cover.cubes, vec![vec![(0, true), (1, true)]]);
        assert_eq!(cover.literal_count(), 2);
        let g = m.or(a, b);
        let cover = m.isop(g, g);
        assert_eq!(cover.bdd, g);
        assert_eq!(cover.cubes.len(), 2);
        // Constants.
        assert!(m.isop(m.bottom(), m.bottom()).cubes.is_empty());
        let top_cover = m.isop(m.top(), m.top());
        assert_eq!(top_cover.cubes, vec![Vec::<(VarId, bool)>::new()]);
    }

    #[test]
    fn dont_cares_shrink_the_cover() {
        // ON = {000}, OFF = {111}: one free literal separates them once the
        // other six minterms are don't-care.
        let mut m = BddManager::new(3);
        let on = m.cube_of(&[(0, false), (1, false), (2, false)]);
        let off = m.cube_of(&[(0, true), (1, true), (2, true)]);
        let upper = m.not(off);
        let cover = m.isop(on, upper);
        assert_eq!(cover.cubes.len(), 1);
        assert!(cover.cubes[0].len() <= 1, "a single literal suffices: {:?}", cover.cubes);
        assert!(m.implies(on, cover.bdd));
        assert!(m.implies(cover.bdd, upper));
    }

    #[test]
    #[should_panic(expected = "lower must imply upper")]
    fn inverted_interval_panics() {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        let na = m.nvar(0);
        let _ = m.isop(a, na);
    }

    #[test]
    fn isop_interval_and_irredundancy_on_random_functions() {
        for seed in 0..60u64 {
            let mut rng = Rng(seed);
            let nv = 2 + (rng.next() % 8) as u32;
            let mut m = BddManager::new(nv as usize);
            let lower_cubes = 1 + (rng.next() % 6) as usize;
            let lower = random_cube_set(&mut m, &mut rng, nv, lower_cubes);
            let dc_cubes = (rng.next() % 4) as usize;
            let dc = random_cube_set(&mut m, &mut rng, nv, dc_cubes);
            let upper = m.or(lower, dc);
            let cover = m.isop(lower, upper);
            // The cover computes a function inside the interval…
            assert!(m.implies(lower, cover.bdd), "seed {seed}: cover misses lower");
            assert!(m.implies(cover.bdd, upper), "seed {seed}: cover leaves upper");
            // …its cube list denotes exactly that function…
            let rebuilt = cover_bdd(&mut m, &cover);
            assert_eq!(rebuilt, cover.bdd, "seed {seed}: cube list diverged from BDD");
            // …every cube individually stays inside upper…
            for cube in &cover.cubes {
                let c = m.cube_of(cube);
                assert!(m.implies(c, upper), "seed {seed}: cube {cube:?} escapes upper");
            }
            // …and no cube is redundant: dropping it must uncover lower.
            for skip in 0..cover.cubes.len() {
                let mut rest = m.bottom();
                for (i, cube) in cover.cubes.iter().enumerate() {
                    if i != skip {
                        let c = m.cube_of(cube);
                        rest = m.or(rest, c);
                    }
                }
                assert!(
                    !m.implies(lower, rest),
                    "seed {seed}: cube {skip} is redundant in {:?}",
                    cover.cubes
                );
            }
        }
    }

    #[test]
    fn exact_cover_matches_sat_count() {
        for seed in 100..130u64 {
            let mut rng = Rng(seed);
            let nv = 3 + (rng.next() % 6) as u32;
            let mut m = BddManager::new(nv as usize);
            let f_cubes = 1 + (rng.next() % 7) as usize;
            let f = random_cube_set(&mut m, &mut rng, nv, f_cubes);
            let cover = m.isop(f, f);
            assert_eq!(cover.bdd, f, "seed {seed}: isop(f, f) must compute f exactly");
            let rebuilt = cover_bdd(&mut m, &cover);
            assert_eq!(rebuilt, f, "seed {seed}");
        }
    }

    #[test]
    fn cofactor_and_one_sat_helpers() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let c = m.var(2);
        let f = m.and(a, c);
        assert_eq!(m.cofactor(f, 0, true), c);
        assert_eq!(m.cofactor(f, 0, false), m.bottom());
        let sat = m.one_sat(f).unwrap();
        assert!(sat.contains(&(0, true)) && sat.contains(&(2, true)));
        assert!(m.one_sat(m.bottom()).is_none());
    }
}
