//! Reduced Ordered Binary Decision Diagrams (ROBDDs).
//!
//! The DAC'96 state-encoding paper attributes its capacity to handle
//! "extremely large state graphs" to two ingredients: reasoning at the
//! granularity of regions, and a *symbolic* representation of the state
//! graph by Ordered Binary Decision Diagrams.  This crate is a
//! self-contained ROBDD package built for that second ingredient: the
//! symbolic reachability and CSC-conflict engines of the `stg` crate encode
//! sets of markings as BDDs over one variable per Petri-net place.
//!
//! Design:
//!
//! * a [`BddManager`] owns all nodes; hash-consing (a unique table)
//!   guarantees canonicity, so function equality is handle equality,
//! * [`Bdd`] is a cheap copyable handle (node index) into a manager,
//! * binary operations go through a memoised Shannon-expansion `apply`,
//! * set quantification (`exists_many`/`forall_many`) runs as one fused
//!   recursion over a sorted variable cube, and the relational product
//!   [`BddManager::and_exists`] conjoins and quantifies in a single pass
//!   without materialising the intermediate conjunction — the image
//!   operator symbolic reachability is built on,
//! * restriction, satisfy-count, cube enumeration and memory/cache
//!   statistics ([`BddManager::stats`]) round out the toolkit.
//!
//! # Example
//!
//! ```
//! use bdd::BddManager;
//!
//! let mut m = BddManager::new(3);
//! let (a, b, c) = (m.var(0), m.var(1), m.var(2));
//! let ab = m.and(a, b);
//! let f = m.or(ab, c);
//! assert_eq!(m.sat_count(f), 5); // out of 8 assignments
//! assert!(m.implies(ab, f));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
mod cubes;
pub mod hash;
mod isop;
mod manager;
mod node;

pub use budget::{Budget, BudgetExceeded, Resource};
pub use cubes::{Cube, CubeIter};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use isop::IsopCover;
pub use manager::{Bdd, BddManager, BddStats};
pub use node::{NodeId, VarId};
