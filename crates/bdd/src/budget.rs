//! Shared resource budgets for cooperative interruption.
//!
//! Symbolic algorithms have no natural upper bound: an adversarial STG or a
//! bad variable order can blow the BDD arena to millions of nodes or keep a
//! fixpoint iterating long past any useful deadline.  A [`Budget`] is a
//! cheaply clonable handle (an `Arc` over atomics) that every stage of a
//! synthesis flow shares: it carries optional ceilings for allocated BDD
//! nodes and memoised apply steps, an optional wall-clock deadline, and a
//! cooperative cancel flag.
//!
//! Checks are designed to be cheap enough for the hottest loops: the
//! [`BddManager`](crate::BddManager) batches its node/step counters locally
//! and only flushes them into the shared atomics (and samples the clock)
//! every [`CHECK_INTERVAL`] allocations, so a deadline is honoured within
//! one check interval rather than exactly.
//!
//! When a ceiling is hit the violation is reported as a typed
//! [`BudgetExceeded`] value naming the stage, the [`Resource`] that ran out,
//! and how much was spent — callers surface it as an error variant instead
//! of panicking or running away.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How many node allocations / apply steps a manager accumulates locally
/// before flushing into the shared counters and re-evaluating the limits.
///
/// This is the granularity at which deadlines and ceilings are enforced:
/// a budget trip is detected within one interval of the true crossing.
pub const CHECK_INTERVAL: u64 = 1024;

/// The resource dimension that ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The ceiling on live BDD nodes allocated across the flow.
    Nodes,
    /// The ceiling on memoised apply steps (a proxy for CPU work).
    ApplySteps,
    /// The wall-clock deadline.
    WallClock,
    /// The cooperative cancel flag was raised by the caller.
    Cancelled,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Nodes => write!(f, "BDD nodes"),
            Resource::ApplySteps => write!(f, "apply steps"),
            Resource::WallClock => write!(f, "wall clock"),
            Resource::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// A typed report that a stage ran out of a budgeted resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The flow stage that was executing when the budget tripped
    /// (e.g. `"reachability"`, `"candidate-search"`, `"isop"`).
    pub stage: String,
    /// Which resource ran out.
    pub resource: Resource,
    /// How much of the resource had been spent when the trip was detected
    /// (nodes, steps, or elapsed milliseconds depending on `resource`).
    pub spent: u64,
    /// The configured ceiling (nodes, steps, or the deadline in
    /// milliseconds); zero for a cooperative cancellation.
    pub limit: u64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.resource {
            Resource::Nodes => write!(
                f,
                "budget exceeded in {}: {} nodes allocated (limit {})",
                self.stage, self.spent, self.limit
            ),
            Resource::ApplySteps => write!(
                f,
                "budget exceeded in {}: {} apply steps (limit {})",
                self.stage, self.spent, self.limit
            ),
            Resource::WallClock => write!(
                f,
                "budget exceeded in {}: {} ms elapsed (deadline {} ms)",
                self.stage, self.spent, self.limit
            ),
            Resource::Cancelled => write!(f, "cancelled during {}", self.stage),
        }
    }
}

impl std::error::Error for BudgetExceeded {}

#[derive(Debug)]
struct Inner {
    node_limit: Option<u64>,
    step_limit: Option<u64>,
    start: Instant,
    deadline: Option<Instant>,
    cancel: AtomicBool,
    nodes: AtomicU64,
    steps: AtomicU64,
    /// The flow stage currently charging this budget; used to label trips.
    stage: Mutex<&'static str>,
}

/// A shared, cheaply clonable resource budget.
///
/// All clones observe the same counters, deadline and cancel flag, so the
/// ceilings govern the whole job even when it spans several
/// [`BddManager`](crate::BddManager)s (the symbolic CSC solver rebuilds the
/// state space once per inserted signal, each time with a fresh manager).
#[derive(Debug, Clone)]
pub struct Budget {
    inner: Arc<Inner>,
}

impl Budget {
    /// Creates a budget with the given optional ceilings.  `None` means the
    /// corresponding dimension is unlimited; the cancel flag is always
    /// available.  The wall clock starts running immediately.
    pub fn new(
        node_limit: Option<u64>,
        step_limit: Option<u64>,
        timeout: Option<Duration>,
    ) -> Self {
        let start = Instant::now();
        Budget {
            inner: Arc::new(Inner {
                node_limit,
                step_limit,
                start,
                deadline: timeout.map(|t| start + t),
                cancel: AtomicBool::new(false),
                nodes: AtomicU64::new(0),
                steps: AtomicU64::new(0),
                stage: Mutex::new("flow"),
            }),
        }
    }

    /// A budget with no limits at all — useful as a default that still
    /// supports cooperative cancellation.
    pub fn unlimited() -> Self {
        Budget::new(None, None, None)
    }

    /// Raises the cooperative cancel flag; the next check in any stage
    /// sharing this budget reports [`Resource::Cancelled`].
    pub fn cancel(&self) {
        self.inner.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether the cancel flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancel.load(Ordering::Relaxed)
    }

    /// Labels subsequent budget trips with `stage`.  Stages are `'static`
    /// names of flow phases, e.g. `"reachability"`.
    pub fn set_stage(&self, stage: &'static str) {
        *self.inner.stage.lock().expect("budget stage lock poisoned") = stage;
    }

    /// The stage label budget trips currently carry.
    pub fn stage(&self) -> &'static str {
        *self.inner.stage.lock().expect("budget stage lock poisoned")
    }

    /// Total BDD nodes charged so far across all sharers.
    pub fn nodes_spent(&self) -> u64 {
        self.inner.nodes.load(Ordering::Relaxed)
    }

    /// Total apply steps charged so far across all sharers.
    pub fn steps_spent(&self) -> u64 {
        self.inner.steps.load(Ordering::Relaxed)
    }

    /// Milliseconds elapsed since the budget was created.
    pub fn elapsed_ms(&self) -> u64 {
        self.inner.start.elapsed().as_millis() as u64
    }

    /// The configured node ceiling, if any.
    pub fn node_limit(&self) -> Option<u64> {
        self.inner.node_limit
    }

    /// The configured apply-step ceiling, if any.
    pub fn step_limit(&self) -> Option<u64> {
        self.inner.step_limit
    }

    /// The configured deadline as milliseconds from budget creation, if any.
    pub fn deadline_ms(&self) -> Option<u64> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(self.inner.start).as_millis() as u64)
    }

    /// Charges `nodes` node allocations and `steps` apply steps to the
    /// shared counters, then evaluates every limit (including the deadline —
    /// this call samples the clock, so batch charges through
    /// [`CHECK_INTERVAL`]-sized windows in hot loops).
    ///
    /// Returns a typed [`BudgetExceeded`] if any ceiling is now crossed.
    pub fn charge(&self, nodes: u64, steps: u64) -> Result<(), BudgetExceeded> {
        let inner = &self.inner;
        let total_nodes = inner.nodes.fetch_add(nodes, Ordering::Relaxed) + nodes;
        let total_steps = inner.steps.fetch_add(steps, Ordering::Relaxed) + steps;
        if inner.cancel.load(Ordering::Relaxed) {
            return Err(self.exceeded(Resource::Cancelled, 0, 0));
        }
        if let Some(limit) = inner.node_limit {
            if total_nodes > limit {
                return Err(self.exceeded(Resource::Nodes, total_nodes, limit));
            }
        }
        if let Some(limit) = inner.step_limit {
            if total_steps > limit {
                return Err(self.exceeded(Resource::ApplySteps, total_steps, limit));
            }
        }
        if let Some(deadline) = inner.deadline {
            let now = Instant::now();
            if now >= deadline {
                let spent = now.duration_since(inner.start).as_millis() as u64;
                let limit = deadline.saturating_duration_since(inner.start).as_millis() as u64;
                return Err(self.exceeded(Resource::WallClock, spent, limit));
            }
        }
        Ok(())
    }

    /// Evaluates the limits without charging anything — the cheap check for
    /// per-iteration loop headers (reachability images, candidate search).
    pub fn check(&self) -> Result<(), BudgetExceeded> {
        self.charge(0, 0)
    }

    /// Evaluates only the wall-clock deadline and the cancellation flag.
    ///
    /// Engines that allocate no BDD nodes (the explicit state-graph
    /// pipeline) call this instead of [`Budget::check`]: when a flow
    /// degrades onto the explicit rung *because* the node ceiling tripped,
    /// the shared node counter is already over the limit, and re-checking
    /// it there would abort work the ceiling was never meant to govern.
    pub fn check_deadline(&self) -> Result<(), BudgetExceeded> {
        let inner = &self.inner;
        if inner.cancel.load(Ordering::Relaxed) {
            return Err(self.exceeded(Resource::Cancelled, 0, 0));
        }
        if let Some(deadline) = inner.deadline {
            let now = Instant::now();
            if now >= deadline {
                let spent = now.duration_since(inner.start).as_millis() as u64;
                let limit = deadline.saturating_duration_since(inner.start).as_millis() as u64;
                return Err(self.exceeded(Resource::WallClock, spent, limit));
            }
        }
        Ok(())
    }

    fn exceeded(&self, resource: Resource, spent: u64, limit: u64) -> BudgetExceeded {
        BudgetExceeded { stage: self.stage().to_string(), resource, spent, limit }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        for _ in 0..100 {
            b.charge(1_000_000, 1_000_000).expect("unlimited budget tripped");
        }
    }

    #[test]
    fn node_ceiling_trips_with_stage_label() {
        let b = Budget::new(Some(10), None, None);
        b.set_stage("reachability");
        b.charge(8, 0).expect("under the ceiling");
        let err = b.charge(8, 0).expect_err("over the ceiling");
        assert_eq!(err.resource, Resource::Nodes);
        assert_eq!(err.stage, "reachability");
        assert_eq!(err.spent, 16);
        assert_eq!(err.limit, 10);
    }

    #[test]
    fn step_ceiling_trips() {
        let b = Budget::new(None, Some(5), None);
        let err = b.charge(0, 6).expect_err("over the step ceiling");
        assert_eq!(err.resource, Resource::ApplySteps);
    }

    #[test]
    fn deadline_trips_after_elapsing() {
        let b = Budget::new(None, None, Some(Duration::from_millis(0)));
        std::thread::sleep(Duration::from_millis(2));
        let err = b.check().expect_err("deadline passed");
        assert_eq!(err.resource, Resource::WallClock);
        assert!(err.spent >= err.limit);
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let b = Budget::unlimited();
        let clone = b.clone();
        clone.cancel();
        let err = b.check().expect_err("cancelled");
        assert_eq!(err.resource, Resource::Cancelled);
    }

    #[test]
    fn counters_are_shared_across_clones() {
        let b = Budget::new(Some(100), None, None);
        let clone = b.clone();
        b.charge(60, 0).expect("first sharer under the ceiling");
        let err = clone.charge(60, 0).expect_err("combined charge over the ceiling");
        assert_eq!(err.resource, Resource::Nodes);
        assert_eq!(b.nodes_spent(), 120);
    }
}
