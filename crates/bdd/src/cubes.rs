//! Enumeration of satisfying cubes (paths to the `true` terminal).

use crate::manager::{Bdd, BddManager};
use crate::node::{NodeId, VarId};

/// A partial assignment: one entry per variable, `None` meaning "don't care".
///
/// Each cube corresponds to one path from the root of a BDD to the `true`
/// terminal; the set of satisfying assignments of the BDD is the disjoint
/// union of the assignments covered by its cubes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cube {
    values: Vec<Option<bool>>,
}

impl Cube {
    /// Value of `var` in this cube (`None` = unconstrained).
    pub fn value(&self, var: VarId) -> Option<bool> {
        self.values.get(var as usize).copied().flatten()
    }

    /// The fixed literals of the cube as `(var, value)` pairs.
    pub fn literals(&self) -> Vec<(VarId, bool)> {
        self.values.iter().enumerate().filter_map(|(i, v)| v.map(|b| (i as VarId, b))).collect()
    }

    /// Number of assignments covered by this cube, given the total number of
    /// variables.
    pub fn assignment_count(&self, num_vars: usize) -> u128 {
        let fixed = self.values.iter().filter(|v| v.is_some()).count();
        1u128 << (num_vars - fixed).min(127)
    }

    /// Full assignments covered by the cube with don't-cares expanded to
    /// `false`.
    pub fn to_assignment(&self, num_vars: usize) -> Vec<bool> {
        (0..num_vars).map(|i| self.values.get(i).copied().flatten().unwrap_or(false)).collect()
    }
}

/// Iterator over the satisfying cubes of a BDD.
pub struct CubeIter<'a> {
    manager: &'a BddManager,
    num_vars: usize,
    stack: Vec<(NodeId, Vec<Option<bool>>)>,
}

impl<'a> CubeIter<'a> {
    /// Creates an iterator over the cubes of `f`.
    pub fn new(manager: &'a BddManager, f: Bdd) -> Self {
        let num_vars = manager.num_vars();
        CubeIter { manager, num_vars, stack: vec![(f.node_id(), vec![None; num_vars])] }
    }
}

impl Iterator for CubeIter<'_> {
    type Item = Cube;

    fn next(&mut self) -> Option<Cube> {
        while let Some((node, values)) = self.stack.pop() {
            match node {
                NodeId::FALSE => continue,
                NodeId::TRUE => return Some(Cube { values }),
                _ => {
                    let (var, low, high) = self.manager.node_triple(node);
                    let mut low_values = values.clone();
                    low_values[var as usize] = Some(false);
                    let mut high_values = values;
                    high_values[var as usize] = Some(true);
                    self.stack.push((low, low_values));
                    self.stack.push((high, high_values));
                }
            }
        }
        let _ = self.num_vars;
        None
    }
}

impl BddManager {
    /// Iterates over the satisfying cubes of `f`.
    pub fn cubes(&self, f: Bdd) -> CubeIter<'_> {
        CubeIter::new(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubes_of_simple_functions() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let c = m.var(2);
        let f = m.and(a, c);
        let cubes: Vec<Cube> = m.cubes(f).collect();
        assert_eq!(cubes.len(), 1);
        assert_eq!(cubes[0].literals(), vec![(0, true), (2, true)]);
        assert_eq!(cubes[0].value(1), None);
        assert_eq!(cubes[0].assignment_count(3), 2);
    }

    #[test]
    fn cubes_partition_the_on_set() {
        let mut m = BddManager::new(4);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let nc = m.not(c);
        let f = m.or(ab, nc);
        let total: u128 = m.cubes(f).map(|cube| cube.assignment_count(4)).sum();
        assert_eq!(total, m.sat_count(f));
    }

    #[test]
    fn cube_assignments_evaluate_to_true() {
        let mut m = BddManager::new(4);
        let a = m.var(0);
        let b = m.var(1);
        let d = m.var(3);
        let bd = m.and(b, d);
        let f = m.xor(a, bd);
        for cube in m.cubes(f) {
            assert!(m.eval(f, &cube.to_assignment(4)));
        }
    }

    #[test]
    fn false_has_no_cubes() {
        let m = BddManager::new(2);
        assert_eq!(m.cubes(m.bottom()).count(), 0);
        assert_eq!(m.cubes(m.top()).count(), 1);
    }
}
