//! Fast non-cryptographic hashing for node-index keys.
//!
//! `std`'s default hasher (SipHash 1-3) is keyed and DoS-resistant, which is
//! wasted work for interning BDD nodes: the keys are small fixed-width
//! integers produced by the package itself, and hashing sits directly on the
//! `mk`/`apply` hot path.  This module implements the FxHash construction
//! (the multiply-xor fold used by rustc) in-crate so the workspace stays
//! std-only, plus `HashMap`/`HashSet` aliases for the cold-path memo tables
//! that still want a real map.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash multiplier (a 64-bit truncation of π's golden-ratio cousin
/// used by Firefox and rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Folds one word into a running FxHash state.
#[inline]
pub fn fx_combine(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(SEED)
}

/// Hashes a short sequence of words (convenience over [`fx_combine`]).
#[inline]
pub fn fx_hash_words(words: &[u64]) -> u64 {
    words.iter().fold(0, |h, &w| fx_combine(h, w))
}

/// A [`Hasher`] implementing the FxHash word fold.
///
/// Not DoS-resistant — only use for keys the program generates itself.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.hash = fx_combine(self.hash, u64::from_ne_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.hash = fx_combine(self.hash, u64::from_ne_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.hash = fx_combine(self.hash, n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.hash = fx_combine(self.hash, n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.hash = fx_combine(self.hash, n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.hash = fx_combine(self.hash, n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.hash = fx_combine(self.hash, n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hasher_is_deterministic_and_spreads_small_keys() {
        let hash_of = |n: u64| {
            let mut h = FxHasher::default();
            h.write_u64(n);
            h.finish()
        };
        assert_eq!(hash_of(42), hash_of(42));
        // Consecutive small integers must land in different low bits, since
        // the unique table masks the hash down to a table index.
        let low_bits: std::collections::HashSet<u64> = (0..64).map(|n| hash_of(n) & 0x3f).collect();
        assert!(low_bits.len() > 32, "low bits too clustered: {}", low_bits.len());
    }

    #[test]
    fn write_handles_unaligned_tails() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0, 0, 0, 0, 0]);
        // Same padded word, same fold.
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[3, 2, 1]);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn fx_map_roundtrips() {
        let mut map: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            map.insert((i, i * 2), i);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get(&(500, 1000)), Some(&500));
    }
}
