//! The BDD manager: hash-consed node store and Boolean operations.

use crate::node::{Node, NodeId, VarId};
use std::collections::HashMap;
use std::fmt;

/// A handle to a Boolean function stored in a [`BddManager`].
///
/// Handles are plain node indices: they are `Copy`, comparing them with `==`
/// decides functional equality (thanks to canonicity), and they are only
/// meaningful for the manager that created them.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bdd(pub(crate) NodeId);

impl Bdd {
    /// Returns the underlying node id.
    pub fn node_id(self) -> NodeId {
        self.0
    }

    /// Returns `true` if this is the constant `false` function.
    pub fn is_false(self) -> bool {
        self.0 == NodeId::FALSE
    }

    /// Returns `true` if this is the constant `true` function.
    pub fn is_true(self) -> bool {
        self.0 == NodeId::TRUE
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bdd({:?})", self.0)
    }
}

#[derive(Copy, Clone, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    Xor,
}

/// Owner of all BDD nodes, the unique table and the operation caches.
///
/// The number of variables is fixed at construction; variables are indexed
/// `0..num_vars` and that index is also their position in the ordering.
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<Node, NodeId>,
    apply_cache: HashMap<(Op, NodeId, NodeId), NodeId>,
    not_cache: HashMap<NodeId, NodeId>,
    num_vars: usize,
}

impl BddManager {
    /// Creates a manager for `num_vars` Boolean variables.
    pub fn new(num_vars: usize) -> Self {
        let terminal = Node { var: VarId::MAX, low: NodeId::FALSE, high: NodeId::FALSE };
        BddManager {
            // Index 0 and 1 are reserved for the terminals; their content is
            // never inspected through the unique table.
            nodes: vec![terminal, terminal],
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            not_cache: HashMap::new(),
            num_vars,
        }
    }

    /// Number of variables of this manager.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total number of nodes allocated so far (including terminals).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The constant `true` function.
    pub fn top(&self) -> Bdd {
        Bdd(NodeId::TRUE)
    }

    /// The constant `false` function.
    pub fn bottom(&self) -> Bdd {
        Bdd(NodeId::FALSE)
    }

    /// The function of a single positive literal.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn var(&mut self, var: VarId) -> Bdd {
        assert!((var as usize) < self.num_vars, "variable {var} out of range");
        Bdd(self.mk(var, NodeId::FALSE, NodeId::TRUE))
    }

    /// The function of a single negative literal.
    pub fn nvar(&mut self, var: VarId) -> Bdd {
        assert!((var as usize) < self.num_vars, "variable {var} out of range");
        Bdd(self.mk(var, NodeId::TRUE, NodeId::FALSE))
    }

    /// A literal: positive if `value` is `true`, negative otherwise.
    pub fn literal(&mut self, var: VarId, value: bool) -> Bdd {
        if value {
            self.var(var)
        } else {
            self.nvar(var)
        }
    }

    /// The conjunction of the given literals.
    pub fn cube_of(&mut self, literals: &[(VarId, bool)]) -> Bdd {
        let mut acc = self.top();
        // Build from the highest variable down so that each `and` touches a
        // small BDD.
        let mut sorted: Vec<(VarId, bool)> = literals.to_vec();
        sorted.sort_by(|a, b| b.0.cmp(&a.0));
        for &(v, val) in &sorted {
            let lit = self.literal(v, val);
            acc = self.and(lit, acc);
        }
        acc
    }

    fn node(&self, id: NodeId) -> Node {
        self.nodes[id.index()]
    }

    fn var_of(&self, id: NodeId) -> VarId {
        if id.is_terminal() {
            VarId::MAX
        } else {
            self.nodes[id.index()].var
        }
    }

    fn mk(&mut self, var: VarId, low: NodeId, high: NodeId) -> NodeId {
        if low == high {
            return low;
        }
        let node = Node { var, low, high };
        if let Some(&id) = self.unique.get(&node) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, id);
        id
    }

    /// Logical negation.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        Bdd(self.not_rec(f.0))
    }

    fn not_rec(&mut self, f: NodeId) -> NodeId {
        match f {
            NodeId::FALSE => NodeId::TRUE,
            NodeId::TRUE => NodeId::FALSE,
            _ => {
                if let Some(&r) = self.not_cache.get(&f) {
                    return r;
                }
                let n = self.node(f);
                let low = self.not_rec(n.low);
                let high = self.not_rec(n.high);
                let r = self.mk(n.var, low, high);
                self.not_cache.insert(f, r);
                r
            }
        }
    }

    /// Logical conjunction.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Bdd(self.apply(Op::And, f.0, g.0))
    }

    /// Logical disjunction.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Bdd(self.apply(Op::Or, f.0, g.0))
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Bdd(self.apply(Op::Xor, f.0, g.0))
    }

    /// `f ∧ ¬g`.
    pub fn and_not(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.and(f, ng)
    }

    /// Exclusive nor (equivalence).
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let x = self.xor(f, g);
        self.not(x)
    }

    /// If-then-else: `(f ∧ g) ∨ (¬f ∧ h)`.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        let fg = self.and(f, g);
        let nf = self.not(f);
        let nfh = self.and(nf, h);
        self.or(fg, nfh)
    }

    /// Conjunction of an iterator of functions.
    pub fn and_many<I: IntoIterator<Item = Bdd>>(&mut self, fs: I) -> Bdd {
        let mut acc = self.top();
        for f in fs {
            acc = self.and(acc, f);
            if acc.is_false() {
                break;
            }
        }
        acc
    }

    /// Disjunction of an iterator of functions.
    pub fn or_many<I: IntoIterator<Item = Bdd>>(&mut self, fs: I) -> Bdd {
        let mut acc = self.bottom();
        for f in fs {
            acc = self.or(acc, f);
            if acc.is_true() {
                break;
            }
        }
        acc
    }

    fn apply(&mut self, op: Op, f: NodeId, g: NodeId) -> NodeId {
        // Terminal cases.
        match op {
            Op::And => {
                if f == NodeId::FALSE || g == NodeId::FALSE {
                    return NodeId::FALSE;
                }
                if f == NodeId::TRUE {
                    return g;
                }
                if g == NodeId::TRUE {
                    return f;
                }
                if f == g {
                    return f;
                }
            }
            Op::Or => {
                if f == NodeId::TRUE || g == NodeId::TRUE {
                    return NodeId::TRUE;
                }
                if f == NodeId::FALSE {
                    return g;
                }
                if g == NodeId::FALSE {
                    return f;
                }
                if f == g {
                    return f;
                }
            }
            Op::Xor => {
                if f == g {
                    return NodeId::FALSE;
                }
                if f == NodeId::FALSE {
                    return g;
                }
                if g == NodeId::FALSE {
                    return f;
                }
            }
        }
        // Normalise commutative operands for better cache hit rates.
        let (a, b) = if f <= g { (f, g) } else { (g, f) };
        if let Some(&r) = self.apply_cache.get(&(op, a, b)) {
            return r;
        }
        let va = self.var_of(a);
        let vb = self.var_of(b);
        let v = va.min(vb);
        let (a_low, a_high) = if va == v {
            let n = self.node(a);
            (n.low, n.high)
        } else {
            (a, a)
        };
        let (b_low, b_high) = if vb == v {
            let n = self.node(b);
            (n.low, n.high)
        } else {
            (b, b)
        };
        let low = self.apply(op, a_low, b_low);
        let high = self.apply(op, a_high, b_high);
        let r = self.mk(v, low, high);
        self.apply_cache.insert((op, a, b), r);
        r
    }

    /// The cofactor of `f` with `var` fixed to `value`.
    pub fn restrict(&mut self, f: Bdd, var: VarId, value: bool) -> Bdd {
        let mut cache = HashMap::new();
        Bdd(self.restrict_rec(f.0, var, value, &mut cache))
    }

    fn restrict_rec(
        &mut self,
        f: NodeId,
        var: VarId,
        value: bool,
        cache: &mut HashMap<NodeId, NodeId>,
    ) -> NodeId {
        if f.is_terminal() {
            return f;
        }
        let n = self.node(f);
        if n.var > var {
            return f;
        }
        if let Some(&r) = cache.get(&f) {
            return r;
        }
        let r = if n.var == var {
            if value {
                n.high
            } else {
                n.low
            }
        } else {
            let low = self.restrict_rec(n.low, var, value, cache);
            let high = self.restrict_rec(n.high, var, value, cache);
            self.mk(n.var, low, high)
        };
        cache.insert(f, r);
        r
    }

    /// Existential quantification of a single variable.
    pub fn exists(&mut self, f: Bdd, var: VarId) -> Bdd {
        let f0 = self.restrict(f, var, false);
        let f1 = self.restrict(f, var, true);
        self.or(f0, f1)
    }

    /// Existential quantification of a set of variables.
    pub fn exists_many(&mut self, f: Bdd, vars: &[VarId]) -> Bdd {
        let mut acc = f;
        for &v in vars {
            acc = self.exists(acc, v);
        }
        acc
    }

    /// Universal quantification of a single variable.
    pub fn forall(&mut self, f: Bdd, var: VarId) -> Bdd {
        let f0 = self.restrict(f, var, false);
        let f1 = self.restrict(f, var, true);
        self.and(f0, f1)
    }

    /// Universal quantification of a set of variables.
    pub fn forall_many(&mut self, f: Bdd, vars: &[VarId]) -> Bdd {
        let mut acc = f;
        for &v in vars {
            acc = self.forall(acc, v);
        }
        acc
    }

    /// Returns `true` if `f → g` is a tautology.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> bool {
        self.and_not(f, g).is_false()
    }

    /// Evaluates `f` under a complete assignment (indexed by variable).
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than the variable index of a node
    /// encountered during evaluation.
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut current = f.0;
        while !current.is_terminal() {
            let n = self.node(current);
            current = if assignment[n.var as usize] { n.high } else { n.low };
        }
        current == NodeId::TRUE
    }

    /// Number of satisfying assignments of `f` over all `num_vars` variables
    /// (saturating at `u128::MAX`).
    pub fn sat_count(&self, f: Bdd) -> u128 {
        let bits = self.num_vars as u32;
        if bits >= 128 {
            // Work in floating point to avoid overflow; saturate.
            let approx = self.sat_count_f64(f);
            return if approx >= u128::MAX as f64 { u128::MAX } else { approx as u128 };
        }
        let mut cache: HashMap<NodeId, u128> = HashMap::new();
        let fraction = self.sat_fraction(f.0, &mut cache);
        let shift = bits - self.depth_below_root(f.0);
        fraction.checked_shl(shift).unwrap_or(u128::MAX)
    }

    /// Number of satisfying assignments as a float (usable beyond 128
    /// variables, at the cost of rounding).
    pub fn sat_count_f64(&self, f: Bdd) -> f64 {
        // `density` returns the fraction of assignments (over all variables)
        // that satisfy the sub-function rooted at `f`.
        fn density(m: &BddManager, f: NodeId, cache: &mut HashMap<NodeId, f64>) -> f64 {
            match f {
                NodeId::FALSE => 0.0,
                NodeId::TRUE => 1.0,
                _ => {
                    if let Some(&c) = cache.get(&f) {
                        return c;
                    }
                    let n = m.node(f);
                    let d = 0.5 * density(m, n.low, cache) + 0.5 * density(m, n.high, cache);
                    cache.insert(f, d);
                    d
                }
            }
        }
        let mut cache = HashMap::new();
        density(self, f.0, &mut cache) * 2f64.powi(self.num_vars as i32)
    }

    fn depth_below_root(&self, f: NodeId) -> u32 {
        if f.is_terminal() {
            0
        } else {
            (self.num_vars as u32) - self.node(f).var
        }
    }

    fn sat_fraction(&self, f: NodeId, cache: &mut HashMap<NodeId, u128>) -> u128 {
        // Returns the number of satisfying assignments over the variables
        // strictly below (and including) the root variable of `f`, assuming
        // the remaining variables above are free (the caller scales).
        match f {
            NodeId::FALSE => 0,
            NodeId::TRUE => 1,
            _ => {
                if let Some(&c) = cache.get(&f) {
                    return c;
                }
                let n = self.node(f);
                let count = |m: &Self, child: NodeId, cache: &mut HashMap<NodeId, u128>| {
                    let sub = m.sat_fraction(child, cache);
                    let child_var = if child.is_terminal() {
                        m.num_vars as VarId
                    } else {
                        m.node(child).var
                    };
                    let gap = child_var - n.var - 1;
                    sub.saturating_mul(1u128 << gap.min(127))
                };
                let total = count(self, n.low, cache).saturating_add(count(self, n.high, cache));
                cache.insert(f, total);
                total
            }
        }
    }

    /// Returns one satisfying assignment as a vector of `(var, value)` pairs
    /// for the variables that matter, or `None` if `f` is unsatisfiable.
    pub fn any_sat(&self, f: Bdd) -> Option<Vec<(VarId, bool)>> {
        if f.is_false() {
            return None;
        }
        let mut lits = Vec::new();
        let mut current = f.0;
        while !current.is_terminal() {
            let n = self.node(current);
            if n.low != NodeId::FALSE {
                lits.push((n.var, false));
                current = n.low;
            } else {
                lits.push((n.var, true));
                current = n.high;
            }
        }
        Some(lits)
    }

    /// The set of variables `f` depends on.
    pub fn support(&self, f: Bdd) -> Vec<VarId> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f.0];
        while let Some(id) = stack.pop() {
            if id.is_terminal() || !seen.insert(id) {
                continue;
            }
            let n = self.node(id);
            vars.insert(n.var);
            stack.push(n.low);
            stack.push(n.high);
        }
        vars.into_iter().collect()
    }

    /// Number of distinct nodes reachable from `f` (a size measure).
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.0];
        let mut count = 0;
        while let Some(id) = stack.pop() {
            if id.is_terminal() || !seen.insert(id) {
                continue;
            }
            count += 1;
            let n = self.node(id);
            stack.push(n.low);
            stack.push(n.high);
        }
        count
    }

    pub(crate) fn node_triple(&self, id: NodeId) -> (VarId, NodeId, NodeId) {
        let n = self.node(id);
        (n.var, n.low, n.high)
    }
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BddManager")
            .field("num_vars", &self.num_vars)
            .field("num_nodes", &self.nodes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_literals() {
        let mut m = BddManager::new(2);
        assert!(m.top().is_true());
        assert!(m.bottom().is_false());
        let a = m.var(0);
        let na = m.nvar(0);
        assert_eq!(m.not(a), na);
        assert_eq!(m.not(na), a);
        assert_eq!(m.and(a, na), m.bottom());
        assert_eq!(m.or(a, na), m.top());
    }

    #[test]
    fn canonical_forms_share_nodes() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let f1 = m.and(a, b);
        let f2 = m.and(b, a);
        assert_eq!(f1, f2, "conjunction is canonical regardless of operand order");
        let g1 = m.or(a, b);
        let g2 = {
            let na = m.not(a);
            let nb = m.not(b);
            let n = m.and(na, nb);
            m.not(n)
        };
        assert_eq!(g1, g2, "De Morgan duals are identical nodes");
    }

    #[test]
    fn xor_iff_ite() {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let x = m.xor(a, b);
        assert_eq!(m.sat_count(x), 2);
        let e = m.iff(a, b);
        assert_eq!(m.sat_count(e), 2);
        let nx = m.not(x);
        assert_eq!(e, nx);
        let i = m.ite(a, b, m.bottom());
        let ab = m.and(a, b);
        assert_eq!(i, ab);
    }

    #[test]
    fn sat_count_examples() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        assert_eq!(m.sat_count(m.top()), 8);
        assert_eq!(m.sat_count(m.bottom()), 0);
        assert_eq!(m.sat_count(a), 4);
        let ab = m.and(a, b);
        assert_eq!(m.sat_count(ab), 2);
        let f = m.or(ab, c);
        assert_eq!(m.sat_count(f), 5);
        assert!((m.sat_count_f64(f) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn quantification() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        let ex_b = m.exists(f, 1);
        assert_eq!(ex_b, a);
        let all_b = m.forall(f, 1);
        assert!(all_b.is_false());
        let g = m.or(a, b);
        let all = m.forall_many(g, &[0, 1]);
        assert!(all.is_false());
        let ex = m.exists_many(g, &[0, 1]);
        assert!(ex.is_true());
    }

    #[test]
    fn restrict_cofactors() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let c = m.var(2);
        let f = {
            let ac = m.and(a, c);
            let na = m.nvar(0);
            let b = m.var(1);
            let nab = m.and(na, b);
            m.or(ac, nab)
        };
        let f_a1 = m.restrict(f, 0, true);
        assert_eq!(f_a1, c);
        let f_a0 = m.restrict(f, 0, false);
        assert_eq!(f_a0, m.var(1));
    }

    #[test]
    fn eval_and_any_sat() {
        let mut m = BddManager::new(4);
        let lits = [(0, true), (2, false), (3, true)];
        let cube = m.cube_of(&lits);
        assert!(m.eval(cube, &[true, false, false, true]));
        assert!(m.eval(cube, &[true, true, false, true]));
        assert!(!m.eval(cube, &[true, true, true, true]));
        let sat = m.any_sat(cube).unwrap();
        for (v, val) in lits {
            assert!(sat.contains(&(v, val)));
        }
        assert!(m.any_sat(m.bottom()).is_none());
    }

    #[test]
    fn support_and_size() {
        let mut m = BddManager::new(5);
        let a = m.var(0);
        let d = m.var(3);
        let f = m.xor(a, d);
        assert_eq!(m.support(f), vec![0, 3]);
        assert_eq!(m.size(f), 3);
        assert_eq!(m.support(m.top()), Vec::<VarId>::new());
        assert_eq!(m.size(m.top()), 0);
    }

    #[test]
    fn implies_checks_entailment() {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        let aorb = m.or(a, b);
        assert!(m.implies(ab, a));
        assert!(m.implies(ab, aorb));
        assert!(!m.implies(aorb, ab));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn var_out_of_range_panics() {
        let mut m = BddManager::new(2);
        m.var(2);
    }

    #[test]
    fn and_or_many_fold() {
        let mut m = BddManager::new(8);
        let all_vars: Vec<Bdd> = (0..8).map(|i| m.var(i)).collect();
        let conj = m.and_many(all_vars.iter().copied());
        assert_eq!(m.sat_count(conj), 1);
        let disj = m.or_many(all_vars.iter().copied());
        assert_eq!(m.sat_count(disj), 255);
    }
}
