//! The BDD manager: arena node store, interning index and operation cache.
//!
//! # Architecture
//!
//! The manager is built for the symbolic-reachability workloads of the
//! DAC'96 flow, where millions of `mk`/`apply` calls dominate the runtime.
//! Three structures cooperate:
//!
//! * **Node arena** — all nodes live in one contiguous `Vec<Node>`; a
//!   [`NodeId`] is an index into it.  Nodes are never removed or mutated, so
//!   ids stay valid for the life of the manager.  Slots 0 and 1 hold the
//!   `false`/`true` terminals, represented with the sentinel variable
//!   [`TERMINAL_VAR`] so that variable comparisons place them below every
//!   decision level without branching.
//! * **Unique table** — an open-addressed index (linear probing, FxHash,
//!   power-of-two capacity, ≤ 75 % load) storing only `u32` node ids; key
//!   comparisons read the `(var, low, high)` triple straight from the arena.
//!   This is what makes hash-consing canonical: `mk` returns an existing id
//!   whenever the triple is already interned.
//! * **Apply cache** — a bounded direct-mapped memo table keyed by
//!   `(Op, NodeId, NodeId)` (negation uses `Op::Not` with both operands
//!   equal).  Entries carry a generation tag: [`BddManager::clear_caches`]
//!   invalidates every entry in O(1) by bumping the generation, and the
//!   cache is re-sized (which also clears it) when the arena outgrows it.
//!   Collisions simply overwrite — stale results are only ever *missed*,
//!   never returned, because the full key is stored and compared.
//!
//! # Invariants
//!
//! 1. Canonicity: for every interned `(var, low, high)` with `low != high`
//!    there is exactly one id, so `Bdd` equality is function equality.
//! 2. Ordering: children of a node have strictly larger variable indices
//!    (terminals report [`TERMINAL_VAR`], the maximum).  Checked by debug
//!    assertions in `mk`.
//! 3. Terminal representation: arena slots 0/1 are the only nodes with
//!    `var == TERMINAL_VAR`, and they are never looked up through the
//!    unique table.
//! 4. Cache soundness: a hit `(op, f, g) → r` is only returned while `r`'s
//!    interning is still live, which is always, since nodes are never freed.

use crate::hash::{fx_combine, FxHashMap, FxHashSet};
use crate::node::{Node, NodeId, VarId, TERMINAL_VAR};
use std::fmt;

/// A handle to a Boolean function stored in a [`BddManager`].
///
/// Handles are plain node indices: they are `Copy`, comparing them with `==`
/// decides functional equality (thanks to canonicity), and they are only
/// meaningful for the manager that created them.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bdd(pub(crate) NodeId);

impl Bdd {
    /// Returns the underlying node id.
    pub fn node_id(self) -> NodeId {
        self.0
    }

    /// Returns `true` if this is the constant `false` function.
    pub fn is_false(self) -> bool {
        self.0 == NodeId::FALSE
    }

    /// Returns `true` if this is the constant `true` function.
    pub fn is_true(self) -> bool {
        self.0 == NodeId::TRUE
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bdd({:?})", self.0)
    }
}

#[derive(Copy, Clone, PartialEq, Eq)]
#[repr(u8)]
enum Op {
    And = 0,
    Or = 1,
    Xor = 2,
    Not = 3,
}

/// Sentinel for an empty unique-table slot (no node can have this id: the
/// arena is capped far below `u32::MAX` entries in practice, and the table
/// never stores terminals).
const EMPTY_SLOT: u32 = u32::MAX;

/// Open-addressed interning index over the node arena.
///
/// Stores bare node ids; the key of slot `s` is the `(var, low, high)`
/// triple of `arena[slots[s]]`.  Linear probing over a power-of-two table
/// kept at most 3/4 full.
struct UniqueTable {
    slots: Vec<u32>,
    len: usize,
}

impl UniqueTable {
    fn with_node_capacity(nodes: usize) -> Self {
        let slots = (nodes.max(16) * 2).next_power_of_two();
        UniqueTable { slots: vec![EMPTY_SLOT; slots], len: 0 }
    }

    #[inline]
    fn hash(node: &Node) -> u64 {
        fx_combine(fx_combine(node.var as u64, node.low.0 as u64), node.high.0 as u64)
    }

    /// Returns the interned id of `node`, inserting it into `arena` if new.
    #[inline]
    fn intern(&mut self, arena: &mut Vec<Node>, node: Node) -> NodeId {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow(arena);
        }
        let mask = self.slots.len() - 1;
        let mut i = (Self::hash(&node) as usize) & mask;
        loop {
            match self.slots[i] {
                EMPTY_SLOT => {
                    // Hard assert even in release: past u32::MAX ids the new
                    // id would collide with EMPTY_SLOT and silently break
                    // canonicity.  This is the cold (new-node) path, so the
                    // check costs nothing.
                    assert!(
                        arena.len() < EMPTY_SLOT as usize,
                        "node arena overflow (2^32-1 nodes)"
                    );
                    let id = NodeId(arena.len() as u32);
                    arena.push(node);
                    self.slots[i] = id.0;
                    self.len += 1;
                    return id;
                }
                raw => {
                    if arena[raw as usize] == node {
                        return NodeId(raw);
                    }
                    i = (i + 1) & mask;
                }
            }
        }
    }

    /// Doubles the table and re-inserts every interned id.
    fn grow(&mut self, arena: &[Node]) {
        self.resize_to(self.slots.len() * 2, arena);
    }

    /// Ensures the table can absorb `nodes` interned nodes without growing.
    fn reserve_for(&mut self, nodes: usize, arena: &[Node]) {
        let wanted = (nodes.max(16) * 2).next_power_of_two();
        if wanted > self.slots.len() {
            self.resize_to(wanted, arena);
        }
    }

    fn resize_to(&mut self, new_slots: usize, arena: &[Node]) {
        let mask = new_slots - 1;
        let mut slots = vec![EMPTY_SLOT; new_slots];
        for &raw in self.slots.iter().filter(|&&raw| raw != EMPTY_SLOT) {
            let mut i = (Self::hash(&arena[raw as usize]) as usize) & mask;
            while slots[i] != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            slots[i] = raw;
        }
        self.slots = slots;
    }
}

#[derive(Copy, Clone)]
struct CacheEntry {
    a: u32,
    b: u32,
    result: u32,
    op: u8,
    generation: u32,
}

const EMPTY_ENTRY: CacheEntry = CacheEntry { a: 0, b: 0, result: 0, op: 0, generation: 0 };

/// Bounded direct-mapped memo table for `apply`/`not` results.
///
/// The live generation starts at 1 and empty entries carry generation 0, so
/// a fresh table never produces hits.  `clear` bumps the generation instead
/// of touching the entries; `resize` reallocates (implicitly clearing).
struct ApplyCache {
    entries: Vec<CacheEntry>,
    generation: u32,
}

/// Initial apply-cache size (entries; must be a power of two).
const APPLY_CACHE_MIN: usize = 1 << 12;
/// Apply-cache growth stops here: bounded memory even on huge state spaces.
const APPLY_CACHE_MAX: usize = 1 << 20;

impl ApplyCache {
    fn new(entries: usize) -> Self {
        debug_assert!(entries.is_power_of_two());
        ApplyCache { entries: vec![EMPTY_ENTRY; entries], generation: 1 }
    }

    #[inline]
    fn slot(&self, op: Op, a: NodeId, b: NodeId) -> usize {
        let h = fx_combine(fx_combine(op as u64, a.0 as u64), b.0 as u64);
        (h as usize) & (self.entries.len() - 1)
    }

    #[inline]
    fn lookup(&self, op: Op, a: NodeId, b: NodeId) -> Option<NodeId> {
        let e = &self.entries[self.slot(op, a, b)];
        (e.generation == self.generation && e.op == op as u8 && e.a == a.0 && e.b == b.0)
            .then_some(NodeId(e.result))
    }

    #[inline]
    fn store(&mut self, op: Op, a: NodeId, b: NodeId, result: NodeId) {
        let slot = self.slot(op, a, b);
        self.entries[slot] = CacheEntry {
            a: a.0,
            b: b.0,
            result: result.0,
            op: op as u8,
            generation: self.generation,
        };
    }

    /// O(1) invalidation of every entry.
    fn clear(&mut self) {
        self.generation = match self.generation.checked_add(1) {
            Some(g) => g,
            None => {
                // Generation wrap: physically reset so stale tags can't match.
                self.entries.fill(EMPTY_ENTRY);
                1
            }
        };
    }

    /// Grows (and thereby clears) the cache while the arena outpaces it.
    fn grow_for(&mut self, nodes: usize) {
        let wanted = nodes.next_power_of_two().clamp(APPLY_CACHE_MIN, APPLY_CACHE_MAX);
        if wanted > self.entries.len() {
            *self = ApplyCache::new(wanted);
        }
    }
}

/// Owner of all BDD nodes, the unique table and the operation cache.
///
/// The number of variables is fixed at construction; variables are indexed
/// `0..num_vars` and that index is also their position in the ordering.
/// See the [module docs](self) for the arena/cache architecture.
pub struct BddManager {
    nodes: Vec<Node>,
    unique: UniqueTable,
    cache: ApplyCache,
    num_vars: usize,
}

impl BddManager {
    /// Creates a manager for `num_vars` Boolean variables.
    pub fn new(num_vars: usize) -> Self {
        Self::with_capacity(num_vars, 1 << 10)
    }

    /// Creates a manager pre-sized for roughly `node_capacity` nodes.
    ///
    /// Sizing the arena and unique table up front keeps fixpoint loops (such
    /// as symbolic reachability) from rehashing while they grow.
    pub fn with_capacity(num_vars: usize, node_capacity: usize) -> Self {
        assert!(
            num_vars < TERMINAL_VAR as usize,
            "variable count {num_vars} collides with the terminal sentinel"
        );
        let mut nodes = Vec::with_capacity(node_capacity.max(2));
        // Index 0 and 1 are reserved for the terminals; they are never
        // reached through the unique table.
        nodes.push(Node::TERMINAL);
        nodes.push(Node::TERMINAL);
        BddManager {
            nodes,
            unique: UniqueTable::with_node_capacity(node_capacity),
            cache: ApplyCache::new(APPLY_CACHE_MIN),
            num_vars,
        }
    }

    /// Pre-allocates room for `additional` more nodes (arena and unique
    /// table), so a known-size workload triggers no growth rehashing.
    pub fn reserve(&mut self, additional: usize) {
        self.nodes.reserve(additional);
        self.unique.reserve_for(self.nodes.len() + additional, &self.nodes);
    }

    /// Invalidates the operation cache in O(1) (generation bump).
    ///
    /// Results computed afterwards are re-derived through `mk`, so handles
    /// stay canonical across clears; only memoisation is lost.  Useful
    /// between phases whose operand sets do not overlap.
    pub fn clear_caches(&mut self) {
        self.cache.clear();
    }

    /// Number of variables of this manager.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total number of nodes allocated so far (including terminals).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The constant `true` function.
    pub fn top(&self) -> Bdd {
        Bdd(NodeId::TRUE)
    }

    /// The constant `false` function.
    pub fn bottom(&self) -> Bdd {
        Bdd(NodeId::FALSE)
    }

    /// The function of a single positive literal.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn var(&mut self, var: VarId) -> Bdd {
        assert!((var as usize) < self.num_vars, "variable {var} out of range");
        Bdd(self.mk(var, NodeId::FALSE, NodeId::TRUE))
    }

    /// The function of a single negative literal.
    pub fn nvar(&mut self, var: VarId) -> Bdd {
        assert!((var as usize) < self.num_vars, "variable {var} out of range");
        Bdd(self.mk(var, NodeId::TRUE, NodeId::FALSE))
    }

    /// A literal: positive if `value` is `true`, negative otherwise.
    pub fn literal(&mut self, var: VarId, value: bool) -> Bdd {
        if value {
            self.var(var)
        } else {
            self.nvar(var)
        }
    }

    /// The conjunction of the given literals.
    pub fn cube_of(&mut self, literals: &[(VarId, bool)]) -> Bdd {
        let mut acc = self.top();
        // Build from the highest variable down so that each `and` touches a
        // small BDD.
        let mut sorted: Vec<(VarId, bool)> = literals.to_vec();
        sorted.sort_by_key(|&(v, _)| std::cmp::Reverse(v));
        for &(v, val) in &sorted {
            let lit = self.literal(v, val);
            acc = self.and(lit, acc);
        }
        acc
    }

    #[inline]
    fn node(&self, id: NodeId) -> Node {
        self.nodes[id.index()]
    }

    /// The decision variable of `id`; terminals report the sentinel
    /// [`TERMINAL_VAR`], which orders below every real variable level.
    #[inline]
    fn var_of(&self, id: NodeId) -> VarId {
        // Terminal arena slots physically carry the sentinel, so no branch
        // on `id.is_terminal()` is needed.
        let node = &self.nodes[id.index()];
        debug_assert_eq!(
            node.is_terminal(),
            id.is_terminal(),
            "terminal invariants diverged: sentinel var on a non-terminal slot (or vice versa)"
        );
        node.var
    }

    fn mk(&mut self, var: VarId, low: NodeId, high: NodeId) -> NodeId {
        if low == high {
            return low;
        }
        debug_assert!(
            (var as usize) < self.num_vars,
            "mk: variable {var} out of range (terminal sentinel leaked into a decision node?)"
        );
        debug_assert!(
            low.index() < self.nodes.len() && high.index() < self.nodes.len(),
            "mk: child id out of arena bounds"
        );
        debug_assert!(
            self.var_of(low) > var && self.var_of(high) > var,
            "mk: ordering violated (children must have strictly larger variables; \
             terminals report TERMINAL_VAR)"
        );
        let id = self.unique.intern(&mut self.nodes, Node { var, low, high });
        // Keep the (bounded) apply cache proportional to the arena.
        if self.nodes.len() > self.cache.entries.len() * 4
            && self.cache.entries.len() < APPLY_CACHE_MAX
        {
            self.cache.grow_for(self.nodes.len());
        }
        id
    }

    /// Logical negation.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        Bdd(self.not_rec(f.0))
    }

    fn not_rec(&mut self, f: NodeId) -> NodeId {
        match f {
            NodeId::FALSE => NodeId::TRUE,
            NodeId::TRUE => NodeId::FALSE,
            _ => {
                if let Some(r) = self.cache.lookup(Op::Not, f, f) {
                    return r;
                }
                let n = self.node(f);
                let low = self.not_rec(n.low);
                let high = self.not_rec(n.high);
                let r = self.mk(n.var, low, high);
                self.cache.store(Op::Not, f, f, r);
                r
            }
        }
    }

    /// Logical conjunction.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Bdd(self.apply(Op::And, f.0, g.0))
    }

    /// Logical disjunction.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Bdd(self.apply(Op::Or, f.0, g.0))
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Bdd(self.apply(Op::Xor, f.0, g.0))
    }

    /// `f ∧ ¬g`.
    pub fn and_not(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.and(f, ng)
    }

    /// Exclusive nor (equivalence).
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let x = self.xor(f, g);
        self.not(x)
    }

    /// If-then-else: `(f ∧ g) ∨ (¬f ∧ h)`.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        let fg = self.and(f, g);
        let nf = self.not(f);
        let nfh = self.and(nf, h);
        self.or(fg, nfh)
    }

    /// Conjunction of an iterator of functions.
    pub fn and_many<I: IntoIterator<Item = Bdd>>(&mut self, fs: I) -> Bdd {
        let mut acc = self.top();
        for f in fs {
            acc = self.and(acc, f);
            if acc.is_false() {
                break;
            }
        }
        acc
    }

    /// Disjunction of an iterator of functions.
    pub fn or_many<I: IntoIterator<Item = Bdd>>(&mut self, fs: I) -> Bdd {
        let mut acc = self.bottom();
        for f in fs {
            acc = self.or(acc, f);
            if acc.is_true() {
                break;
            }
        }
        acc
    }

    fn apply(&mut self, op: Op, f: NodeId, g: NodeId) -> NodeId {
        // Terminal cases.
        match op {
            Op::And => {
                if f == NodeId::FALSE || g == NodeId::FALSE {
                    return NodeId::FALSE;
                }
                if f == NodeId::TRUE {
                    return g;
                }
                if g == NodeId::TRUE {
                    return f;
                }
                if f == g {
                    return f;
                }
            }
            Op::Or => {
                if f == NodeId::TRUE || g == NodeId::TRUE {
                    return NodeId::TRUE;
                }
                if f == NodeId::FALSE {
                    return g;
                }
                if g == NodeId::FALSE {
                    return f;
                }
                if f == g {
                    return f;
                }
            }
            Op::Xor => {
                if f == g {
                    return NodeId::FALSE;
                }
                if f == NodeId::FALSE {
                    return g;
                }
                if g == NodeId::FALSE {
                    return f;
                }
            }
            Op::Not => unreachable!("negation goes through not_rec"),
        }
        // Normalise commutative operands for better cache hit rates.
        let (a, b) = if f <= g { (f, g) } else { (g, f) };
        if let Some(r) = self.cache.lookup(op, a, b) {
            return r;
        }
        let va = self.var_of(a);
        let vb = self.var_of(b);
        let v = va.min(vb);
        let (a_low, a_high) = if va == v {
            let n = self.node(a);
            (n.low, n.high)
        } else {
            (a, a)
        };
        let (b_low, b_high) = if vb == v {
            let n = self.node(b);
            (n.low, n.high)
        } else {
            (b, b)
        };
        let low = self.apply(op, a_low, b_low);
        let high = self.apply(op, a_high, b_high);
        let r = self.mk(v, low, high);
        self.cache.store(op, a, b, r);
        r
    }

    /// The cofactor of `f` with `var` fixed to `value`.
    pub fn restrict(&mut self, f: Bdd, var: VarId, value: bool) -> Bdd {
        let mut cache = FxHashMap::default();
        Bdd(self.restrict_rec(f.0, var, value, &mut cache))
    }

    fn restrict_rec(
        &mut self,
        f: NodeId,
        var: VarId,
        value: bool,
        cache: &mut FxHashMap<NodeId, NodeId>,
    ) -> NodeId {
        if f.is_terminal() {
            return f;
        }
        let n = self.node(f);
        if n.var > var {
            return f;
        }
        if let Some(&r) = cache.get(&f) {
            return r;
        }
        let r = if n.var == var {
            if value {
                n.high
            } else {
                n.low
            }
        } else {
            let low = self.restrict_rec(n.low, var, value, cache);
            let high = self.restrict_rec(n.high, var, value, cache);
            self.mk(n.var, low, high)
        };
        cache.insert(f, r);
        r
    }

    /// Existential quantification of a single variable.
    pub fn exists(&mut self, f: Bdd, var: VarId) -> Bdd {
        let f0 = self.restrict(f, var, false);
        let f1 = self.restrict(f, var, true);
        self.or(f0, f1)
    }

    /// Existential quantification of a set of variables.
    pub fn exists_many(&mut self, f: Bdd, vars: &[VarId]) -> Bdd {
        let mut acc = f;
        for &v in vars {
            acc = self.exists(acc, v);
        }
        acc
    }

    /// Universal quantification of a single variable.
    pub fn forall(&mut self, f: Bdd, var: VarId) -> Bdd {
        let f0 = self.restrict(f, var, false);
        let f1 = self.restrict(f, var, true);
        self.and(f0, f1)
    }

    /// Universal quantification of a set of variables.
    pub fn forall_many(&mut self, f: Bdd, vars: &[VarId]) -> Bdd {
        let mut acc = f;
        for &v in vars {
            acc = self.forall(acc, v);
        }
        acc
    }

    /// Returns `true` if `f → g` is a tautology.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> bool {
        self.and_not(f, g).is_false()
    }

    /// Evaluates `f` under a complete assignment (indexed by variable).
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than the variable index of a node
    /// encountered during evaluation.
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut current = f.0;
        while !current.is_terminal() {
            let n = self.node(current);
            current = if assignment[n.var as usize] { n.high } else { n.low };
        }
        current == NodeId::TRUE
    }

    /// Number of satisfying assignments of `f` over all `num_vars` variables
    /// (saturating at `u128::MAX`).
    pub fn sat_count(&self, f: Bdd) -> u128 {
        let bits = self.num_vars as u32;
        if bits >= 128 {
            // Work in floating point to avoid overflow; saturate.
            let approx = self.sat_count_f64(f);
            return if approx >= u128::MAX as f64 { u128::MAX } else { approx as u128 };
        }
        let mut cache: FxHashMap<NodeId, u128> = FxHashMap::default();
        let fraction = self.sat_fraction(f.0, &mut cache);
        let shift = bits - self.depth_below_root(f.0);
        fraction.checked_shl(shift).unwrap_or(u128::MAX)
    }

    /// Number of satisfying assignments as a float (usable beyond 128
    /// variables, at the cost of rounding).
    pub fn sat_count_f64(&self, f: Bdd) -> f64 {
        // `density` returns the fraction of assignments (over all variables)
        // that satisfy the sub-function rooted at `f`.
        fn density(m: &BddManager, f: NodeId, cache: &mut FxHashMap<NodeId, f64>) -> f64 {
            match f {
                NodeId::FALSE => 0.0,
                NodeId::TRUE => 1.0,
                _ => {
                    if let Some(&c) = cache.get(&f) {
                        return c;
                    }
                    let n = m.node(f);
                    let d = 0.5 * density(m, n.low, cache) + 0.5 * density(m, n.high, cache);
                    cache.insert(f, d);
                    d
                }
            }
        }
        let mut cache = FxHashMap::default();
        density(self, f.0, &mut cache) * 2f64.powi(self.num_vars as i32)
    }

    fn depth_below_root(&self, f: NodeId) -> u32 {
        if f.is_terminal() {
            0
        } else {
            (self.num_vars as u32) - self.node(f).var
        }
    }

    fn sat_fraction(&self, f: NodeId, cache: &mut FxHashMap<NodeId, u128>) -> u128 {
        // Returns the number of satisfying assignments over the variables
        // strictly below (and including) the root variable of `f`, assuming
        // the remaining variables above are free (the caller scales).
        match f {
            NodeId::FALSE => 0,
            NodeId::TRUE => 1,
            _ => {
                if let Some(&c) = cache.get(&f) {
                    return c;
                }
                let n = self.node(f);
                let count = |m: &Self, child: NodeId, cache: &mut FxHashMap<NodeId, u128>| {
                    let sub = m.sat_fraction(child, cache);
                    let child_var =
                        if child.is_terminal() { m.num_vars as VarId } else { m.node(child).var };
                    let gap = child_var - n.var - 1;
                    sub.saturating_mul(1u128 << gap.min(127))
                };
                let total = count(self, n.low, cache).saturating_add(count(self, n.high, cache));
                cache.insert(f, total);
                total
            }
        }
    }

    /// Returns one satisfying assignment as a vector of `(var, value)` pairs
    /// for the variables that matter, or `None` if `f` is unsatisfiable.
    pub fn any_sat(&self, f: Bdd) -> Option<Vec<(VarId, bool)>> {
        if f.is_false() {
            return None;
        }
        let mut lits = Vec::new();
        let mut current = f.0;
        while !current.is_terminal() {
            let n = self.node(current);
            if n.low != NodeId::FALSE {
                lits.push((n.var, false));
                current = n.low;
            } else {
                lits.push((n.var, true));
                current = n.high;
            }
        }
        Some(lits)
    }

    /// The set of variables `f` depends on.
    pub fn support(&self, f: Bdd) -> Vec<VarId> {
        let mut seen = FxHashSet::default();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f.0];
        while let Some(id) = stack.pop() {
            if id.is_terminal() || !seen.insert(id) {
                continue;
            }
            let n = self.node(id);
            vars.insert(n.var);
            stack.push(n.low);
            stack.push(n.high);
        }
        vars.into_iter().collect()
    }

    /// Number of distinct nodes reachable from `f` (a size measure).
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = FxHashSet::default();
        let mut stack = vec![f.0];
        let mut count = 0;
        while let Some(id) = stack.pop() {
            if id.is_terminal() || !seen.insert(id) {
                continue;
            }
            count += 1;
            let n = self.node(id);
            stack.push(n.low);
            stack.push(n.high);
        }
        count
    }

    pub(crate) fn node_triple(&self, id: NodeId) -> (VarId, NodeId, NodeId) {
        let n = self.node(id);
        (n.var, n.low, n.high)
    }
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BddManager")
            .field("num_vars", &self.num_vars)
            .field("num_nodes", &self.nodes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_literals() {
        let mut m = BddManager::new(2);
        assert!(m.top().is_true());
        assert!(m.bottom().is_false());
        let a = m.var(0);
        let na = m.nvar(0);
        assert_eq!(m.not(a), na);
        assert_eq!(m.not(na), a);
        assert_eq!(m.and(a, na), m.bottom());
        assert_eq!(m.or(a, na), m.top());
    }

    #[test]
    fn canonical_forms_share_nodes() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let f1 = m.and(a, b);
        let f2 = m.and(b, a);
        assert_eq!(f1, f2, "conjunction is canonical regardless of operand order");
        let g1 = m.or(a, b);
        let g2 = {
            let na = m.not(a);
            let nb = m.not(b);
            let n = m.and(na, nb);
            m.not(n)
        };
        assert_eq!(g1, g2, "De Morgan duals are identical nodes");
    }

    #[test]
    fn xor_iff_ite() {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let x = m.xor(a, b);
        assert_eq!(m.sat_count(x), 2);
        let e = m.iff(a, b);
        assert_eq!(m.sat_count(e), 2);
        let nx = m.not(x);
        assert_eq!(e, nx);
        let i = m.ite(a, b, m.bottom());
        let ab = m.and(a, b);
        assert_eq!(i, ab);
    }

    #[test]
    fn sat_count_examples() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        assert_eq!(m.sat_count(m.top()), 8);
        assert_eq!(m.sat_count(m.bottom()), 0);
        assert_eq!(m.sat_count(a), 4);
        let ab = m.and(a, b);
        assert_eq!(m.sat_count(ab), 2);
        let f = m.or(ab, c);
        assert_eq!(m.sat_count(f), 5);
        assert!((m.sat_count_f64(f) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn quantification() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        let ex_b = m.exists(f, 1);
        assert_eq!(ex_b, a);
        let all_b = m.forall(f, 1);
        assert!(all_b.is_false());
        let g = m.or(a, b);
        let all = m.forall_many(g, &[0, 1]);
        assert!(all.is_false());
        let ex = m.exists_many(g, &[0, 1]);
        assert!(ex.is_true());
    }

    #[test]
    fn restrict_cofactors() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let c = m.var(2);
        let f = {
            let ac = m.and(a, c);
            let na = m.nvar(0);
            let b = m.var(1);
            let nab = m.and(na, b);
            m.or(ac, nab)
        };
        let f_a1 = m.restrict(f, 0, true);
        assert_eq!(f_a1, c);
        let f_a0 = m.restrict(f, 0, false);
        assert_eq!(f_a0, m.var(1));
    }

    #[test]
    fn eval_and_any_sat() {
        let mut m = BddManager::new(4);
        let lits = [(0, true), (2, false), (3, true)];
        let cube = m.cube_of(&lits);
        assert!(m.eval(cube, &[true, false, false, true]));
        assert!(m.eval(cube, &[true, true, false, true]));
        assert!(!m.eval(cube, &[true, true, true, true]));
        let sat = m.any_sat(cube).unwrap();
        for (v, val) in lits {
            assert!(sat.contains(&(v, val)));
        }
        assert!(m.any_sat(m.bottom()).is_none());
    }

    #[test]
    fn support_and_size() {
        let mut m = BddManager::new(5);
        let a = m.var(0);
        let d = m.var(3);
        let f = m.xor(a, d);
        assert_eq!(m.support(f), vec![0, 3]);
        assert_eq!(m.size(f), 3);
        assert_eq!(m.support(m.top()), Vec::<VarId>::new());
        assert_eq!(m.size(m.top()), 0);
    }

    #[test]
    fn implies_checks_entailment() {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        let aorb = m.or(a, b);
        assert!(m.implies(ab, a));
        assert!(m.implies(ab, aorb));
        assert!(!m.implies(aorb, ab));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn var_out_of_range_panics() {
        let mut m = BddManager::new(2);
        m.var(2);
    }

    #[test]
    fn and_or_many_fold() {
        let mut m = BddManager::new(8);
        let all_vars: Vec<Bdd> = (0..8).map(|i| m.var(i)).collect();
        let conj = m.and_many(all_vars.iter().copied());
        assert_eq!(m.sat_count(conj), 1);
        let disj = m.or_many(all_vars.iter().copied());
        assert_eq!(m.sat_count(disj), 255);
    }

    #[test]
    fn terminal_sentinel_is_explicit() {
        let m = BddManager::new(4);
        assert!(m.nodes[0].is_terminal());
        assert!(m.nodes[1].is_terminal());
        assert_eq!(m.var_of(NodeId::FALSE), TERMINAL_VAR);
        assert_eq!(m.var_of(NodeId::TRUE), TERMINAL_VAR);
    }

    #[test]
    #[should_panic(expected = "terminal sentinel")]
    fn num_vars_may_not_collide_with_the_sentinel() {
        let _ = BddManager::new(TERMINAL_VAR as usize);
    }

    #[test]
    fn results_stay_canonical_across_cache_clears() {
        let mut m = BddManager::new(6);
        let vars: Vec<Bdd> = (0..6).map(|i| m.var(i)).collect();
        let mut before = Vec::new();
        for i in 0..5 {
            let x = m.xor(vars[i], vars[i + 1]);
            before.push(m.or(x, vars[0]));
        }
        m.clear_caches();
        // Recomputing after an O(1) cache invalidation must return the very
        // same handles (canonicity lives in the unique table, not the cache).
        for (i, &expected) in before.iter().enumerate() {
            let x = m.xor(vars[i], vars[i + 1]);
            assert_eq!(m.or(x, vars[0]), expected);
        }
        let nodes_after_recompute = m.num_nodes();
        m.clear_caches();
        let a = m.and(vars[2], vars[3]);
        let b = m.and(vars[3], vars[2]);
        assert_eq!(a, b);
        assert_eq!(m.num_nodes(), nodes_after_recompute + 1, "one new conjunction node");
    }

    #[test]
    fn cache_generation_survives_many_clears() {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let expected = m.and(a, b);
        for _ in 0..10_000 {
            m.clear_caches();
        }
        assert_eq!(m.and(a, b), expected);
    }

    #[test]
    fn reserve_prevents_arena_reallocation() {
        let mut m = BddManager::with_capacity(16, 4);
        m.reserve(100_000);
        let start_capacity = m.nodes.capacity();
        let vars: Vec<Bdd> = (0..16).map(|i| m.var(i)).collect();
        let mut acc = m.bottom();
        for chunk in vars.chunks(2) {
            let pair = m.and(chunk[0], chunk[1]);
            acc = m.or(acc, pair);
        }
        assert!(m.num_nodes() > 2);
        assert_eq!(m.nodes.capacity(), start_capacity, "no growth after reserve");
        assert!(!acc.is_false());
    }

    #[test]
    fn unique_table_grows_past_initial_capacity() {
        // Force many distinct nodes through a tiny initial table.
        let mut m = BddManager::with_capacity(24, 4);
        let vars: Vec<Bdd> = (0..24).map(|i| m.var(i)).collect();
        let mut fns = Vec::new();
        for i in 0..24 {
            for j in (i + 1)..24 {
                fns.push(m.xor(vars[i], vars[j]));
            }
        }
        // Re-deriving every function must return identical handles even
        // after multiple table growths.
        for (k, &expected) in fns.iter().enumerate() {
            let mut idx = 0;
            'outer: for i in 0..24 {
                for j in (i + 1)..24 {
                    if idx == k {
                        assert_eq!(m.xor(vars[i], vars[j]), expected);
                        break 'outer;
                    }
                    idx += 1;
                }
            }
        }
        assert!(m.num_nodes() > 24 * 3);
    }
}
