//! The BDD manager: arena node store, interning index and operation cache.
//!
//! # Architecture
//!
//! The manager is built for the symbolic-reachability workloads of the
//! DAC'96 flow, where millions of `mk`/`apply` calls dominate the runtime.
//! Three structures cooperate:
//!
//! * **Node arena** — all nodes live in one contiguous `Vec<Node>`; a
//!   [`NodeId`] is an index into it.  Nodes are never removed or mutated, so
//!   ids stay valid for the life of the manager.  Slots 0 and 1 hold the
//!   `false`/`true` terminals, represented with the sentinel variable
//!   [`TERMINAL_VAR`] so that variable comparisons place them below every
//!   decision level without branching.
//! * **Unique table** — an open-addressed index (linear probing, FxHash,
//!   power-of-two capacity, ≤ 75 % load) storing only `u32` node ids; key
//!   comparisons read the `(var, low, high)` triple straight from the arena.
//!   This is what makes hash-consing canonical: `mk` returns an existing id
//!   whenever the triple is already interned.
//! * **Apply cache** — a bounded direct-mapped memo table keyed by
//!   `(Op, NodeId, NodeId, NodeId)`: binary connectives use two operands
//!   (negation uses `Op::Not` with both operands equal), while the
//!   quantifier recursions key the third slot with the variable cube and
//!   the fused relational product `and_exists` uses all three.  Entries
//!   carry a generation tag: [`BddManager::clear_caches`] invalidates
//!   every entry in O(1) by bumping the generation, and the cache is
//!   re-sized (which also clears it) when the arena outgrows it.
//!   Collisions simply overwrite — stale results are only ever *missed*,
//!   never returned, because the full key is stored and compared.
//!
//! # Invariants
//!
//! 1. Canonicity: for every interned `(var, low, high)` with `low != high`
//!    there is exactly one id, so `Bdd` equality is function equality.
//! 2. Ordering: children of a node have strictly larger variable indices
//!    (terminals report [`TERMINAL_VAR`], the maximum).  Checked by debug
//!    assertions in `mk`.
//! 3. Terminal representation: arena slots 0/1 are the only nodes with
//!    `var == TERMINAL_VAR`, and they are never looked up through the
//!    unique table.
//! 4. Cache soundness: a hit `(op, f, g) → r` is only returned while `r`'s
//!    interning is still live, which is always, since nodes are never freed.

use crate::budget::{Budget, BudgetExceeded, CHECK_INTERVAL};
use crate::hash::{fx_combine, FxHashMap, FxHashSet};
use crate::node::{Node, NodeId, VarId, TERMINAL_VAR};
use std::cell::RefCell;
use std::fmt;

/// A handle to a Boolean function stored in a [`BddManager`].
///
/// Handles are plain node indices: they are `Copy`, comparing them with `==`
/// decides functional equality (thanks to canonicity), and they are only
/// meaningful for the manager that created them.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bdd(pub(crate) NodeId);

impl Bdd {
    /// Returns the underlying node id.
    pub fn node_id(self) -> NodeId {
        self.0
    }

    /// Returns `true` if this is the constant `false` function.
    pub fn is_false(self) -> bool {
        self.0 == NodeId::FALSE
    }

    /// Returns `true` if this is the constant `true` function.
    pub fn is_true(self) -> bool {
        self.0 == NodeId::TRUE
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bdd({:?})", self.0)
    }
}

#[derive(Copy, Clone, PartialEq, Eq)]
#[repr(u8)]
enum Op {
    And = 0,
    Or = 1,
    Xor = 2,
    Not = 3,
    /// `∃ cube. f` — keyed `(f, cube, -)`.
    Exists = 4,
    /// `∀ cube. f` — keyed `(f, cube, -)`.
    Forall = 5,
    /// `∃ cube. f ∧ g` — the fused relational product, keyed `(f, g, cube)`.
    AndExists = 6,
    /// Shift every odd variable down by one — keyed `(f, -, -)`.
    Unprime = 7,
    /// Shift every even variable up by one — keyed `(f, -, -)`.
    Prime = 8,
}

/// Sentinel for an empty unique-table slot (no node can have this id: the
/// arena is capped far below `u32::MAX` entries in practice, and the table
/// never stores terminals).
const EMPTY_SLOT: u32 = u32::MAX;

/// Open-addressed interning index over the node arena.
///
/// Stores bare node ids; the key of slot `s` is the `(var, low, high)`
/// triple of `arena[slots[s]]`.  Linear probing over a power-of-two table
/// kept at most 3/4 full.
struct UniqueTable {
    slots: Vec<u32>,
    len: usize,
}

impl UniqueTable {
    fn with_node_capacity(nodes: usize) -> Self {
        let slots = (nodes.max(16) * 2).next_power_of_two();
        UniqueTable { slots: vec![EMPTY_SLOT; slots], len: 0 }
    }

    #[inline]
    fn hash(node: &Node) -> u64 {
        fx_combine(fx_combine(node.var as u64, node.low.0 as u64), node.high.0 as u64)
    }

    /// Returns the interned id of `node`, inserting it into `arena` if new.
    #[inline]
    fn intern(&mut self, arena: &mut Vec<Node>, node: Node) -> NodeId {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow(arena);
        }
        let mask = self.slots.len() - 1;
        let mut i = (Self::hash(&node) as usize) & mask;
        loop {
            match self.slots[i] {
                EMPTY_SLOT => {
                    // Hard assert even in release: past u32::MAX ids the new
                    // id would collide with EMPTY_SLOT and silently break
                    // canonicity.  This is the cold (new-node) path, so the
                    // check costs nothing.
                    assert!(
                        arena.len() < EMPTY_SLOT as usize,
                        "node arena overflow (2^32-1 nodes)"
                    );
                    let id = NodeId(arena.len() as u32);
                    arena.push(node);
                    self.slots[i] = id.0;
                    self.len += 1;
                    return id;
                }
                raw => {
                    if arena[raw as usize] == node {
                        return NodeId(raw);
                    }
                    i = (i + 1) & mask;
                }
            }
        }
    }

    /// Doubles the table and re-inserts every interned id.
    fn grow(&mut self, arena: &[Node]) {
        self.resize_to(self.slots.len() * 2, arena);
    }

    /// Ensures the table can absorb `nodes` interned nodes without growing.
    fn reserve_for(&mut self, nodes: usize, arena: &[Node]) {
        let wanted = (nodes.max(16) * 2).next_power_of_two();
        if wanted > self.slots.len() {
            self.resize_to(wanted, arena);
        }
    }

    fn resize_to(&mut self, new_slots: usize, arena: &[Node]) {
        let mask = new_slots - 1;
        let mut slots = vec![EMPTY_SLOT; new_slots];
        for &raw in self.slots.iter().filter(|&&raw| raw != EMPTY_SLOT) {
            let mut i = (Self::hash(&arena[raw as usize]) as usize) & mask;
            while slots[i] != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            slots[i] = raw;
        }
        self.slots = slots;
    }
}

#[derive(Copy, Clone)]
struct CacheEntry {
    a: u32,
    b: u32,
    c: u32,
    result: u32,
    op: u8,
    generation: u32,
}

const EMPTY_ENTRY: CacheEntry = CacheEntry { a: 0, b: 0, c: 0, result: 0, op: 0, generation: 0 };

/// Bounded direct-mapped memo table for `apply`/`not`/quantifier results.
///
/// Keys are `(op, a, b, c)` quadruples; binary and unary operations pass the
/// `false` terminal for the unused operands (sound because `op` is part of
/// the stored key).  The live generation starts at 1 and empty entries carry
/// generation 0, so a fresh table never produces hits.  `clear` bumps the
/// generation instead of touching the entries; `resize` reallocates
/// (implicitly clearing).
struct ApplyCache {
    entries: Vec<CacheEntry>,
    generation: u32,
    hits: u64,
    misses: u64,
}

/// Initial apply-cache size (entries; must be a power of two).
const APPLY_CACHE_MIN: usize = 1 << 12;
/// Apply-cache growth stops here: bounded memory even on huge state spaces.
const APPLY_CACHE_MAX: usize = 1 << 20;

impl ApplyCache {
    fn new(entries: usize) -> Self {
        debug_assert!(entries.is_power_of_two());
        ApplyCache { entries: vec![EMPTY_ENTRY; entries], generation: 1, hits: 0, misses: 0 }
    }

    #[inline]
    fn slot(&self, op: Op, a: NodeId, b: NodeId, c: NodeId) -> usize {
        let h = fx_combine(fx_combine(fx_combine(op as u64, a.0 as u64), b.0 as u64), c.0 as u64);
        (h as usize) & (self.entries.len() - 1)
    }

    #[inline]
    fn lookup3(&mut self, op: Op, a: NodeId, b: NodeId, c: NodeId) -> Option<NodeId> {
        let e = &self.entries[self.slot(op, a, b, c)];
        let hit = e.generation == self.generation
            && e.op == op as u8
            && e.a == a.0
            && e.b == b.0
            && e.c == c.0;
        if hit {
            self.hits += 1;
            Some(NodeId(e.result))
        } else {
            self.misses += 1;
            None
        }
    }

    #[inline]
    fn lookup(&mut self, op: Op, a: NodeId, b: NodeId) -> Option<NodeId> {
        self.lookup3(op, a, b, NodeId::FALSE)
    }

    #[inline]
    fn store3(&mut self, op: Op, a: NodeId, b: NodeId, c: NodeId, result: NodeId) {
        let slot = self.slot(op, a, b, c);
        self.entries[slot] = CacheEntry {
            a: a.0,
            b: b.0,
            c: c.0,
            result: result.0,
            op: op as u8,
            generation: self.generation,
        };
    }

    #[inline]
    fn store(&mut self, op: Op, a: NodeId, b: NodeId, result: NodeId) {
        self.store3(op, a, b, NodeId::FALSE, result);
    }

    /// O(1) invalidation of every entry.
    fn clear(&mut self) {
        self.generation = match self.generation.checked_add(1) {
            Some(g) => g,
            None => {
                // Generation wrap: physically reset so stale tags can't match.
                self.entries.fill(EMPTY_ENTRY);
                1
            }
        };
    }

    /// Grows (and thereby clears) the cache while the arena outpaces it.
    fn grow_for(&mut self, nodes: usize) {
        let wanted = nodes.next_power_of_two().clamp(APPLY_CACHE_MIN, APPLY_CACHE_MAX);
        if wanted > self.entries.len() {
            *self = ApplyCache::new(wanted);
        }
    }
}

/// Reusable traversal state for the read-only analyses (`sat_count`,
/// `sat_count_f64`, `size`, `support`).
///
/// The satisfy-count memos are *persistent*: a node's count depends only on
/// its (immutable) sub-DAG, so entries stay valid for the life of the
/// manager and repeated counts over a growing reachable set share work.
/// The visited set and stack are per-call scratch whose allocations are
/// retained between calls.
#[derive(Default)]
struct TraversalScratch {
    sat_u128: FxHashMap<NodeId, u128>,
    sat_f64: FxHashMap<NodeId, f64>,
    visited: FxHashSet<NodeId>,
    stack: Vec<NodeId>,
}

/// A point-in-time snapshot of a manager's memory and cache behaviour.
///
/// Returned by [`BddManager::stats`]; the bench harness records these next
/// to wall-clock numbers so perf baselines capture space as well as time.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BddStats {
    /// Nodes currently in the arena (including the two terminals).
    pub num_nodes: usize,
    /// High-water mark of the arena.  Nodes are never freed today, so this
    /// equals `num_nodes`; it is a separate field so the bench schema
    /// survives a future garbage collector.
    pub peak_nodes: usize,
    /// Interned (non-terminal) nodes in the unique table.
    pub unique_entries: usize,
    /// Capacity of the operation cache, in entries.
    pub cache_entries: usize,
    /// Operation-cache lookups that returned a memoised result.
    pub cache_hits: u64,
    /// Operation-cache lookups that missed (and recomputed).
    pub cache_misses: u64,
}

/// Owner of all BDD nodes, the unique table and the operation cache.
///
/// The number of variables is fixed at construction; variables are indexed
/// `0..num_vars` and that index is also their position in the ordering.
/// See the crate-level docs for the arena/cache architecture.
pub struct BddManager {
    nodes: Vec<Node>,
    unique: UniqueTable,
    cache: ApplyCache,
    num_vars: usize,
    scratch: RefCell<TraversalScratch>,
    /// Optional shared resource budget; see [`Self::set_budget`].
    budget: Option<Budget>,
    /// `mk` calls since the last budget flush (batched so the hot path pays
    /// one increment and one compare per call).
    steps_since_check: u64,
    /// Arena length at the last flush, to charge only the delta.
    nodes_at_last_check: u64,
    /// Fast poison flag: set when the budget trips, checked at the top of
    /// every recursion so in-flight operations unwind quickly.
    tripped: bool,
    /// The typed trip report, taken by [`Self::take_budget_trip`].
    trip: Option<BudgetExceeded>,
}

impl BddManager {
    /// Creates a manager for `num_vars` Boolean variables.
    pub fn new(num_vars: usize) -> Self {
        Self::with_capacity(num_vars, 1 << 10)
    }

    /// Creates a manager pre-sized for roughly `node_capacity` nodes.
    ///
    /// Sizing the arena and unique table up front keeps fixpoint loops (such
    /// as symbolic reachability) from rehashing while they grow.
    pub fn with_capacity(num_vars: usize, node_capacity: usize) -> Self {
        assert!(
            num_vars < TERMINAL_VAR as usize,
            "variable count {num_vars} collides with the terminal sentinel"
        );
        let mut nodes = Vec::with_capacity(node_capacity.max(2));
        // Index 0 and 1 are reserved for the terminals; they are never
        // reached through the unique table.
        nodes.push(Node::TERMINAL);
        nodes.push(Node::TERMINAL);
        BddManager {
            nodes,
            unique: UniqueTable::with_node_capacity(node_capacity),
            cache: ApplyCache::new(APPLY_CACHE_MIN),
            num_vars,
            scratch: RefCell::new(TraversalScratch::default()),
            budget: None,
            steps_since_check: 0,
            nodes_at_last_check: 0,
            tripped: false,
            trip: None,
        }
    }

    /// Attaches a shared [`Budget`] to this manager.
    ///
    /// From now on node allocations are charged to the budget in batches of
    /// [`CHECK_INTERVAL`] `mk` calls; when a ceiling trips, every in-flight
    /// recursion unwinds by returning the `false` terminal (without storing
    /// cache entries), and the typed report waits in
    /// [`Self::take_budget_trip`].  Results produced after a trip are
    /// meaningless and must be discarded by the caller.
    pub fn set_budget(&mut self, budget: Budget) {
        self.nodes_at_last_check = self.nodes.len() as u64;
        self.budget = Some(budget);
    }

    /// The attached budget, if any.
    pub fn budget(&self) -> Option<&Budget> {
        self.budget.as_ref()
    }

    /// Whether the budget has tripped (and results are poisoned) since the
    /// last [`Self::take_budget_trip`].
    pub fn budget_tripped(&self) -> bool {
        self.tripped
    }

    /// Flushes pending charges (sampling the wall clock) and reports a trip
    /// if any ceiling is crossed.  Call this at loop headers — reachability
    /// images, candidate evaluations — where a typed error can be surfaced.
    ///
    /// Does not clear the poison flag; use [`Self::take_budget_trip`] for
    /// that.
    pub fn check_budget(&mut self) -> Result<(), BudgetExceeded> {
        self.flush_budget();
        match &self.trip {
            Some(trip) => Err(trip.clone()),
            None => Ok(()),
        }
    }

    /// Takes the pending budget trip, clearing the poison flag so the
    /// manager can be reused (the operation cache is invalidated, since
    /// results computed while poisoned were short-circuited).
    pub fn take_budget_trip(&mut self) -> Option<BudgetExceeded> {
        self.flush_budget();
        let trip = self.trip.take();
        if self.tripped {
            self.tripped = false;
            self.cache.clear();
        }
        trip
    }

    /// Charges the un-flushed `mk` batch to the budget and records a trip if
    /// a ceiling is crossed.
    fn flush_budget(&mut self) {
        let steps = std::mem::take(&mut self.steps_since_check);
        let Some(budget) = &self.budget else { return };
        let nodes_now = self.nodes.len() as u64;
        let new_nodes = nodes_now.saturating_sub(self.nodes_at_last_check);
        self.nodes_at_last_check = nodes_now;
        if self.tripped {
            return;
        }
        if let Err(trip) = budget.charge(new_nodes, steps) {
            self.trip = Some(trip);
            self.tripped = true;
        }
    }

    /// Pre-allocates room for `additional` more nodes (arena and unique
    /// table), so a known-size workload triggers no growth rehashing.
    pub fn reserve(&mut self, additional: usize) {
        self.nodes.reserve(additional);
        self.unique.reserve_for(self.nodes.len() + additional, &self.nodes);
    }

    /// Invalidates the operation cache in O(1) (generation bump) and drops
    /// the persistent satisfy-count memos.
    ///
    /// Results computed afterwards are re-derived through `mk`, so handles
    /// stay canonical across clears; only memoisation is lost.  Useful
    /// between phases whose operand sets do not overlap.
    pub fn clear_caches(&mut self) {
        self.cache.clear();
        let scratch = self.scratch.get_mut();
        scratch.sat_u128.clear();
        scratch.sat_f64.clear();
    }

    /// Snapshot of node counts and operation-cache behaviour.
    pub fn stats(&self) -> BddStats {
        BddStats {
            num_nodes: self.nodes.len(),
            peak_nodes: self.nodes.len(),
            unique_entries: self.unique.len,
            cache_entries: self.cache.entries.len(),
            cache_hits: self.cache.hits,
            cache_misses: self.cache.misses,
        }
    }

    /// Number of variables of this manager.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total number of nodes allocated so far (including terminals).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The constant `true` function.
    pub fn top(&self) -> Bdd {
        Bdd(NodeId::TRUE)
    }

    /// The constant `false` function.
    pub fn bottom(&self) -> Bdd {
        Bdd(NodeId::FALSE)
    }

    /// The function of a single positive literal.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn var(&mut self, var: VarId) -> Bdd {
        assert!((var as usize) < self.num_vars, "variable {var} out of range");
        Bdd(self.mk(var, NodeId::FALSE, NodeId::TRUE))
    }

    /// The function of a single negative literal.
    pub fn nvar(&mut self, var: VarId) -> Bdd {
        assert!((var as usize) < self.num_vars, "variable {var} out of range");
        Bdd(self.mk(var, NodeId::TRUE, NodeId::FALSE))
    }

    /// A literal: positive if `value` is `true`, negative otherwise.
    pub fn literal(&mut self, var: VarId, value: bool) -> Bdd {
        if value {
            self.var(var)
        } else {
            self.nvar(var)
        }
    }

    /// The conjunction of the given literals.
    pub fn cube_of(&mut self, literals: &[(VarId, bool)]) -> Bdd {
        let mut acc = self.top();
        // Build from the highest variable down so that each `and` touches a
        // small BDD.
        let mut sorted: Vec<(VarId, bool)> = literals.to_vec();
        sorted.sort_by_key(|&(v, _)| std::cmp::Reverse(v));
        for &(v, val) in &sorted {
            let lit = self.literal(v, val);
            acc = self.and(lit, acc);
        }
        acc
    }

    #[inline]
    fn node(&self, id: NodeId) -> Node {
        self.nodes[id.index()]
    }

    /// The decision variable of `id`; terminals report the sentinel
    /// [`TERMINAL_VAR`], which orders below every real variable level.
    #[inline]
    pub(crate) fn var_of(&self, id: NodeId) -> VarId {
        // Terminal arena slots physically carry the sentinel, so no branch
        // on `id.is_terminal()` is needed.
        let node = &self.nodes[id.index()];
        debug_assert_eq!(
            node.is_terminal(),
            id.is_terminal(),
            "terminal invariants diverged: sentinel var on a non-terminal slot (or vice versa)"
        );
        node.var
    }

    pub(crate) fn mk(&mut self, var: VarId, low: NodeId, high: NodeId) -> NodeId {
        if low == high {
            return low;
        }
        debug_assert!(
            (var as usize) < self.num_vars,
            "mk: variable {var} out of range (terminal sentinel leaked into a decision node?)"
        );
        debug_assert!(
            low.index() < self.nodes.len() && high.index() < self.nodes.len(),
            "mk: child id out of arena bounds"
        );
        debug_assert!(
            self.var_of(low) > var && self.var_of(high) > var,
            "mk: ordering violated (children must have strictly larger variables; \
             terminals report TERMINAL_VAR)"
        );
        let id = self.unique.intern(&mut self.nodes, Node { var, low, high });
        // Keep the (bounded) apply cache proportional to the arena.
        if self.nodes.len() > self.cache.entries.len() * 4
            && self.cache.entries.len() < APPLY_CACHE_MAX
        {
            self.cache.grow_for(self.nodes.len());
        }
        // Budget accounting is batched: one increment per call, a flush
        // (shared atomics + clock sample) every CHECK_INTERVAL calls.
        if self.budget.is_some() {
            self.steps_since_check += 1;
            if self.steps_since_check >= CHECK_INTERVAL {
                self.flush_budget();
            }
        }
        id
    }

    /// Logical negation.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        Bdd(self.not_rec(f.0))
    }

    fn not_rec(&mut self, f: NodeId) -> NodeId {
        match f {
            NodeId::FALSE => NodeId::TRUE,
            NodeId::TRUE => NodeId::FALSE,
            _ => {
                if self.tripped {
                    // Budget poison: unwind fast with a placeholder; the
                    // caller discards the result via `take_budget_trip`.
                    return NodeId::FALSE;
                }
                if let Some(r) = self.cache.lookup(Op::Not, f, f) {
                    return r;
                }
                let n = self.node(f);
                let low = self.not_rec(n.low);
                let high = self.not_rec(n.high);
                let r = self.mk(n.var, low, high);
                if !self.tripped {
                    self.cache.store(Op::Not, f, f, r);
                }
                r
            }
        }
    }

    /// Logical conjunction.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Bdd(self.apply(Op::And, f.0, g.0))
    }

    /// Logical disjunction.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Bdd(self.apply(Op::Or, f.0, g.0))
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Bdd(self.apply(Op::Xor, f.0, g.0))
    }

    /// `f ∧ ¬g`.
    pub fn and_not(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.and(f, ng)
    }

    /// Exclusive nor (equivalence).
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let x = self.xor(f, g);
        self.not(x)
    }

    /// If-then-else: `(f ∧ g) ∨ (¬f ∧ h)`.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        let fg = self.and(f, g);
        let nf = self.not(f);
        let nfh = self.and(nf, h);
        self.or(fg, nfh)
    }

    /// Conjunction of an iterator of functions.
    pub fn and_many<I: IntoIterator<Item = Bdd>>(&mut self, fs: I) -> Bdd {
        let mut acc = self.top();
        for f in fs {
            acc = self.and(acc, f);
            if acc.is_false() {
                break;
            }
        }
        acc
    }

    /// Disjunction of an iterator of functions.
    pub fn or_many<I: IntoIterator<Item = Bdd>>(&mut self, fs: I) -> Bdd {
        let mut acc = self.bottom();
        for f in fs {
            acc = self.or(acc, f);
            if acc.is_true() {
                break;
            }
        }
        acc
    }

    fn apply(&mut self, op: Op, f: NodeId, g: NodeId) -> NodeId {
        // Terminal cases.
        match op {
            Op::And => {
                if f == NodeId::FALSE || g == NodeId::FALSE {
                    return NodeId::FALSE;
                }
                if f == NodeId::TRUE {
                    return g;
                }
                if g == NodeId::TRUE {
                    return f;
                }
                if f == g {
                    return f;
                }
            }
            Op::Or => {
                if f == NodeId::TRUE || g == NodeId::TRUE {
                    return NodeId::TRUE;
                }
                if f == NodeId::FALSE {
                    return g;
                }
                if g == NodeId::FALSE {
                    return f;
                }
                if f == g {
                    return f;
                }
            }
            Op::Xor => {
                if f == g {
                    return NodeId::FALSE;
                }
                if f == NodeId::FALSE {
                    return g;
                }
                if g == NodeId::FALSE {
                    return f;
                }
            }
            Op::Not | Op::Exists | Op::Forall | Op::AndExists | Op::Unprime | Op::Prime => {
                unreachable!("apply only handles the binary Boolean connectives")
            }
        }
        if self.tripped {
            // Budget poison: unwind fast; caller discards via `take_budget_trip`.
            return NodeId::FALSE;
        }
        // Normalise commutative operands for better cache hit rates.
        let (a, b) = if f <= g { (f, g) } else { (g, f) };
        if let Some(r) = self.cache.lookup(op, a, b) {
            return r;
        }
        let va = self.var_of(a);
        let vb = self.var_of(b);
        let v = va.min(vb);
        let (a_low, a_high) = if va == v {
            let n = self.node(a);
            (n.low, n.high)
        } else {
            (a, a)
        };
        let (b_low, b_high) = if vb == v {
            let n = self.node(b);
            (n.low, n.high)
        } else {
            (b, b)
        };
        let low = self.apply(op, a_low, b_low);
        let high = self.apply(op, a_high, b_high);
        let r = self.mk(v, low, high);
        if !self.tripped {
            self.cache.store(op, a, b, r);
        }
        r
    }

    /// The cofactor of `f` with `var` fixed to `value`.
    pub fn restrict(&mut self, f: Bdd, var: VarId, value: bool) -> Bdd {
        let mut cache = FxHashMap::default();
        Bdd(self.restrict_rec(f.0, var, value, &mut cache))
    }

    fn restrict_rec(
        &mut self,
        f: NodeId,
        var: VarId,
        value: bool,
        cache: &mut FxHashMap<NodeId, NodeId>,
    ) -> NodeId {
        if f.is_terminal() {
            return f;
        }
        let n = self.node(f);
        if n.var > var {
            return f;
        }
        if let Some(&r) = cache.get(&f) {
            return r;
        }
        let r = if n.var == var {
            if value {
                n.high
            } else {
                n.low
            }
        } else {
            let low = self.restrict_rec(n.low, var, value, cache);
            let high = self.restrict_rec(n.high, var, value, cache);
            self.mk(n.var, low, high)
        };
        cache.insert(f, r);
        r
    }

    /// Builds the positive cube `v₀ ∧ v₁ ∧ …` identifying a quantification
    /// set.  The input may be unsorted and contain duplicates.
    ///
    /// The cube doubles as the memo key for the quantifier recursions, so
    /// callers that quantify the same set repeatedly (fixpoint loops) should
    /// build it once and reuse it through [`Self::exists_cube`],
    /// [`Self::forall_cube`] and [`Self::and_exists_with`].
    pub fn quant_cube(&mut self, vars: &[VarId]) -> Bdd {
        let mut sorted: Vec<VarId> = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let lits: Vec<(VarId, bool)> = sorted.into_iter().map(|v| (v, true)).collect();
        self.cube_of(&lits)
    }

    /// Returns `true` if `f` is a conjunction of positive literals (the
    /// shape [`Self::quant_cube`] produces); the constant `true` is the
    /// empty cube.
    pub fn is_quant_cube(&self, f: Bdd) -> bool {
        let mut cur = f.0;
        while !cur.is_terminal() {
            let n = self.node(cur);
            if n.low != NodeId::FALSE {
                return false;
            }
            cur = n.high;
        }
        cur == NodeId::TRUE
    }

    /// Existential quantification of a single variable.
    pub fn exists(&mut self, f: Bdd, var: VarId) -> Bdd {
        self.exists_many(f, &[var])
    }

    /// Existential quantification of a set of variables.
    ///
    /// One fused recursion over the whole (sorted, deduplicated) set — not a
    /// per-variable loop — so shared sub-DAGs are traversed once and no
    /// intermediate one-variable results are materialised.
    pub fn exists_many(&mut self, f: Bdd, vars: &[VarId]) -> Bdd {
        let cube = self.quant_cube(vars);
        self.exists_cube(f, cube)
    }

    /// Existential quantification over a prebuilt [`Self::quant_cube`].
    pub fn exists_cube(&mut self, f: Bdd, cube: Bdd) -> Bdd {
        // A tripped manager may have collapsed the cube to FALSE while it
        // was being built; poison the result instead of asserting.
        if self.tripped {
            return Bdd(NodeId::FALSE);
        }
        debug_assert!(self.is_quant_cube(cube), "quantifier cube must be positive literals");
        Bdd(self.exists_rec(f.0, cube.0))
    }

    fn exists_rec(&mut self, f: NodeId, mut cube: NodeId) -> NodeId {
        // Quantifying a variable `f` does not depend on is a no-op: skip
        // cube levels above `f`'s root.  Terminals report TERMINAL_VAR, so
        // this also drains the cube when `f` is constant.
        let vf = self.var_of(f);
        while cube != NodeId::TRUE && self.var_of(cube) < vf {
            cube = self.node(cube).high;
        }
        if f.is_terminal() || cube == NodeId::TRUE {
            return f;
        }
        if self.tripped {
            return NodeId::FALSE;
        }
        if let Some(r) = self.cache.lookup(Op::Exists, f, cube) {
            return r;
        }
        let n = self.node(f);
        let r = if n.var == self.var_of(cube) {
            let rest = self.node(cube).high;
            let low = self.exists_rec(n.low, rest);
            if low == NodeId::TRUE {
                // ∨ with anything is true: prune the high branch entirely.
                NodeId::TRUE
            } else {
                let high = self.exists_rec(n.high, rest);
                self.apply(Op::Or, low, high)
            }
        } else {
            let low = self.exists_rec(n.low, cube);
            let high = self.exists_rec(n.high, cube);
            self.mk(n.var, low, high)
        };
        if !self.tripped {
            self.cache.store(Op::Exists, f, cube, r);
        }
        r
    }

    /// Universal quantification of a single variable.
    pub fn forall(&mut self, f: Bdd, var: VarId) -> Bdd {
        self.forall_many(f, &[var])
    }

    /// Universal quantification of a set of variables (one fused recursion,
    /// like [`Self::exists_many`]).
    pub fn forall_many(&mut self, f: Bdd, vars: &[VarId]) -> Bdd {
        let cube = self.quant_cube(vars);
        self.forall_cube(f, cube)
    }

    /// Universal quantification over a prebuilt [`Self::quant_cube`].
    pub fn forall_cube(&mut self, f: Bdd, cube: Bdd) -> Bdd {
        if self.tripped {
            return Bdd(NodeId::FALSE);
        }
        debug_assert!(self.is_quant_cube(cube), "quantifier cube must be positive literals");
        Bdd(self.forall_rec(f.0, cube.0))
    }

    fn forall_rec(&mut self, f: NodeId, mut cube: NodeId) -> NodeId {
        let vf = self.var_of(f);
        while cube != NodeId::TRUE && self.var_of(cube) < vf {
            cube = self.node(cube).high;
        }
        if f.is_terminal() || cube == NodeId::TRUE {
            return f;
        }
        if self.tripped {
            return NodeId::FALSE;
        }
        if let Some(r) = self.cache.lookup(Op::Forall, f, cube) {
            return r;
        }
        let n = self.node(f);
        let r = if n.var == self.var_of(cube) {
            let rest = self.node(cube).high;
            let low = self.forall_rec(n.low, rest);
            if low == NodeId::FALSE {
                NodeId::FALSE
            } else {
                let high = self.forall_rec(n.high, rest);
                self.apply(Op::And, low, high)
            }
        } else {
            let low = self.forall_rec(n.low, cube);
            let high = self.forall_rec(n.high, cube);
            self.mk(n.var, low, high)
        };
        if !self.tripped {
            self.cache.store(Op::Forall, f, cube, r);
        }
        r
    }

    /// The fused relational product `∃ vars. f ∧ g`.
    ///
    /// A single recursion conjoins and quantifies in one pass: the
    /// intermediate `f ∧ g` BDD is never materialised, and the disjunction
    /// at quantified levels short-circuits to `true` without visiting the
    /// other branch.  This is the image operator of symbolic reachability.
    ///
    /// ```
    /// use bdd::BddManager;
    ///
    /// let mut m = BddManager::new(3);
    /// let (a, b, c) = (m.var(0), m.var(1), m.var(2));
    /// // ∃a. (a ∨ b) ∧ (a ∨ c) — the fused product equals the two-step one.
    /// let ab = m.or(a, b);
    /// let ac = m.or(a, c);
    /// let fused = m.and_exists(ab, ac, &[0]);
    /// let conjoined = m.and(ab, ac);
    /// let two_step = m.exists_many(conjoined, &[0]);
    /// assert_eq!(fused, two_step);
    /// assert!(fused.is_true()); // choosing a = 1 satisfies both operands
    /// ```
    pub fn and_exists(&mut self, f: Bdd, g: Bdd, vars: &[VarId]) -> Bdd {
        let cube = self.quant_cube(vars);
        self.and_exists_with(f, g, cube)
    }

    /// [`Self::and_exists`] over a prebuilt [`Self::quant_cube`] — the form
    /// fixpoint loops should call so the cube (which is also the memo key)
    /// is interned once.
    pub fn and_exists_with(&mut self, f: Bdd, g: Bdd, cube: Bdd) -> Bdd {
        if self.tripped {
            return Bdd(NodeId::FALSE);
        }
        debug_assert!(self.is_quant_cube(cube), "quantifier cube must be positive literals");
        Bdd(self.and_exists_rec(f.0, g.0, cube.0))
    }

    fn and_exists_rec(&mut self, f: NodeId, g: NodeId, mut cube: NodeId) -> NodeId {
        if f == NodeId::FALSE || g == NodeId::FALSE {
            return NodeId::FALSE;
        }
        // Degenerate operands reduce to a plain quantification (which has
        // better sharing under its own cache key).
        if f == NodeId::TRUE {
            return self.exists_rec(g, cube);
        }
        if g == NodeId::TRUE || f == g {
            return self.exists_rec(f, cube);
        }
        // Conjunction is commutative: normalise the operand order.
        let (f, g) = if f <= g { (f, g) } else { (g, f) };
        let vf = self.var_of(f);
        let vg = self.var_of(g);
        let v = vf.min(vg);
        while cube != NodeId::TRUE && self.var_of(cube) < v {
            cube = self.node(cube).high;
        }
        if cube == NodeId::TRUE {
            // No variables left to quantify below this level.
            return self.apply(Op::And, f, g);
        }
        if self.tripped {
            return NodeId::FALSE;
        }
        if let Some(r) = self.cache.lookup3(Op::AndExists, f, g, cube) {
            return r;
        }
        let (f_low, f_high) = if vf == v {
            let n = self.node(f);
            (n.low, n.high)
        } else {
            (f, f)
        };
        let (g_low, g_high) = if vg == v {
            let n = self.node(g);
            (n.low, n.high)
        } else {
            (g, g)
        };
        let r = if v == self.var_of(cube) {
            let rest = self.node(cube).high;
            let low = self.and_exists_rec(f_low, g_low, rest);
            if low == NodeId::TRUE {
                NodeId::TRUE
            } else {
                let high = self.and_exists_rec(f_high, g_high, rest);
                self.apply(Op::Or, low, high)
            }
        } else {
            let low = self.and_exists_rec(f_low, g_low, cube);
            let high = self.and_exists_rec(f_high, g_high, cube);
            self.mk(v, low, high)
        };
        if !self.tripped {
            self.cache.store3(Op::AndExists, f, g, cube, r);
        }
        r
    }

    /// Maps every *odd* variable in `f`'s support to its even predecessor
    /// (`2i+1 ↦ 2i`), leaving even variables in place.
    ///
    /// This is the rename step of the relational-product image under an
    /// interleaved current/next variable encoding (current state in the even
    /// variables, next state in the odd ones): after quantifying the current
    /// copy, `unprime` moves the next-state result back onto the current
    /// variables.  The map preserves the variable order, so the result is
    /// built by a single structural traversal.
    ///
    /// # Panics
    ///
    /// `f` must not depend on both `2i` and `2i + 1` for any `i` — the two
    /// would collide on the same level after the shift.  Violations panic
    /// (in release builds too): silently interning an out-of-order node
    /// would corrupt canonicity for the whole manager.
    pub fn unprime(&mut self, f: Bdd) -> Bdd {
        Bdd(self.unprime_rec(f.0))
    }

    fn unprime_rec(&mut self, f: NodeId) -> NodeId {
        if f.is_terminal() {
            return f;
        }
        if self.tripped {
            return NodeId::FALSE;
        }
        if let Some(r) = self.cache.lookup(Op::Unprime, f, f) {
            return r;
        }
        let n = self.node(f);
        let low = self.unprime_rec(n.low);
        let high = self.unprime_rec(n.high);
        let var = n.var - (n.var & 1);
        assert!(
            self.var_of(low) > var && self.var_of(high) > var,
            "unprime: input depends on both variables of the pair ({var}, {})",
            var + 1
        );
        let r = self.mk(var, low, high);
        if !self.tripped {
            self.cache.store(Op::Unprime, f, f, r);
        }
        r
    }

    /// Maps every *even* variable in `f`'s support to its odd successor
    /// (`2i ↦ 2i + 1`), leaving odd variables in place — the inverse rename
    /// of [`Self::unprime`].
    ///
    /// Under the interleaved current/next encoding this re-expresses a
    /// current-state predicate over the next-state copies, which is how a
    /// *pair* relation (e.g. the CSC conflict relation between two reachable
    /// states) is built: keep one operand on the current variables, `prime`
    /// the other, and conjoin.
    ///
    /// ```
    /// use bdd::BddManager;
    ///
    /// let mut m = BddManager::new(4);
    /// let cur = m.var(0);           // current copy of state variable 0
    /// let primed = m.prime(cur);    // the same predicate on the next copy
    /// assert_eq!(primed, m.var(1));
    /// assert_eq!(m.unprime(primed), cur);
    /// ```
    ///
    /// # Panics
    ///
    /// `f` must not depend on both `2i` and `2i + 1` for any `i`, and no
    /// variable of `f`'s support may be the last manager variable (its odd
    /// successor must exist).  Violations panic in release builds too, for
    /// the same canonicity reason as [`Self::unprime`].
    pub fn prime(&mut self, f: Bdd) -> Bdd {
        Bdd(self.prime_rec(f.0))
    }

    fn prime_rec(&mut self, f: NodeId) -> NodeId {
        if f.is_terminal() {
            return f;
        }
        if self.tripped {
            return NodeId::FALSE;
        }
        if let Some(r) = self.cache.lookup(Op::Prime, f, f) {
            return r;
        }
        let n = self.node(f);
        let low = self.prime_rec(n.low);
        let high = self.prime_rec(n.high);
        let var = n.var | 1;
        assert!(
            (var as usize) < self.num_vars,
            "prime: variable {} has no odd successor in the manager",
            n.var
        );
        assert!(
            self.var_of(low) > var && self.var_of(high) > var,
            "prime: input depends on both variables of the pair ({}, {var})",
            var - 1
        );
        let r = self.mk(var, low, high);
        if !self.tripped {
            self.cache.store(Op::Prime, f, f, r);
        }
        r
    }

    /// Returns `true` if `f → g` is a tautology.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> bool {
        self.and_not(f, g).is_false()
    }

    /// Evaluates `f` under a complete assignment (indexed by variable).
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than the variable index of a node
    /// encountered during evaluation.
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut current = f.0;
        while !current.is_terminal() {
            let n = self.node(current);
            current = if assignment[n.var as usize] { n.high } else { n.low };
        }
        current == NodeId::TRUE
    }

    /// Number of satisfying assignments of `f` over all `num_vars` variables
    /// (saturating at `u128::MAX`).
    pub fn sat_count(&self, f: Bdd) -> u128 {
        let bits = self.num_vars as u32;
        if bits >= 128 {
            // Work in floating point to avoid overflow; saturate.
            let approx = self.sat_count_f64(f);
            return if approx >= u128::MAX as f64 { u128::MAX } else { approx as u128 };
        }
        let mut scratch = self.scratch.borrow_mut();
        let fraction = self.sat_fraction(f.0, &mut scratch.sat_u128);
        let shift = bits - self.depth_below_root(f.0);
        fraction.checked_shl(shift).unwrap_or(u128::MAX)
    }

    /// Number of satisfying assignments as a float (usable beyond 128
    /// variables, at the cost of rounding).
    pub fn sat_count_f64(&self, f: Bdd) -> f64 {
        // `density` returns the fraction of assignments (over all variables)
        // that satisfy the sub-function rooted at `f`.
        fn density(m: &BddManager, f: NodeId, cache: &mut FxHashMap<NodeId, f64>) -> f64 {
            match f {
                NodeId::FALSE => 0.0,
                NodeId::TRUE => 1.0,
                _ => {
                    if let Some(&c) = cache.get(&f) {
                        return c;
                    }
                    let n = m.node(f);
                    let d = 0.5 * density(m, n.low, cache) + 0.5 * density(m, n.high, cache);
                    cache.insert(f, d);
                    d
                }
            }
        }
        let mut scratch = self.scratch.borrow_mut();
        density(self, f.0, &mut scratch.sat_f64) * 2f64.powi(self.num_vars as i32)
    }

    fn depth_below_root(&self, f: NodeId) -> u32 {
        if f.is_terminal() {
            0
        } else {
            (self.num_vars as u32) - self.node(f).var
        }
    }

    fn sat_fraction(&self, f: NodeId, cache: &mut FxHashMap<NodeId, u128>) -> u128 {
        // Returns the number of satisfying assignments over the variables
        // strictly below (and including) the root variable of `f`, assuming
        // the remaining variables above are free (the caller scales).
        match f {
            NodeId::FALSE => 0,
            NodeId::TRUE => 1,
            _ => {
                if let Some(&c) = cache.get(&f) {
                    return c;
                }
                let n = self.node(f);
                let count = |m: &Self, child: NodeId, cache: &mut FxHashMap<NodeId, u128>| {
                    let sub = m.sat_fraction(child, cache);
                    let child_var =
                        if child.is_terminal() { m.num_vars as VarId } else { m.node(child).var };
                    let gap = child_var - n.var - 1;
                    sub.saturating_mul(1u128 << gap.min(127))
                };
                let total = count(self, n.low, cache).saturating_add(count(self, n.high, cache));
                cache.insert(f, total);
                total
            }
        }
    }

    /// Returns one satisfying assignment as a vector of `(var, value)` pairs
    /// for the variables that matter, or `None` if `f` is unsatisfiable.
    pub fn any_sat(&self, f: Bdd) -> Option<Vec<(VarId, bool)>> {
        if f.is_false() {
            return None;
        }
        let mut lits = Vec::new();
        let mut current = f.0;
        while !current.is_terminal() {
            let n = self.node(current);
            if n.low != NodeId::FALSE {
                lits.push((n.var, false));
                current = n.low;
            } else {
                lits.push((n.var, true));
                current = n.high;
            }
        }
        Some(lits)
    }

    /// The set of variables `f` depends on.
    pub fn support(&self, f: Bdd) -> Vec<VarId> {
        let mut scratch = self.scratch.borrow_mut();
        let TraversalScratch { visited, stack, .. } = &mut *scratch;
        visited.clear();
        let mut vars = std::collections::BTreeSet::new();
        stack.push(f.0);
        while let Some(id) = stack.pop() {
            if id.is_terminal() || !visited.insert(id) {
                continue;
            }
            let n = self.node(id);
            vars.insert(n.var);
            stack.push(n.low);
            stack.push(n.high);
        }
        vars.into_iter().collect()
    }

    /// Number of distinct nodes reachable from `f` (a size measure).
    pub fn size(&self, f: Bdd) -> usize {
        let mut scratch = self.scratch.borrow_mut();
        let TraversalScratch { visited, stack, .. } = &mut *scratch;
        visited.clear();
        stack.push(f.0);
        let mut count = 0;
        while let Some(id) = stack.pop() {
            if id.is_terminal() || !visited.insert(id) {
                continue;
            }
            count += 1;
            let n = self.node(id);
            stack.push(n.low);
            stack.push(n.high);
        }
        count
    }

    pub(crate) fn node_triple(&self, id: NodeId) -> (VarId, NodeId, NodeId) {
        let n = self.node(id);
        (n.var, n.low, n.high)
    }
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BddManager")
            .field("num_vars", &self.num_vars)
            .field("num_nodes", &self.nodes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_literals() {
        let mut m = BddManager::new(2);
        assert!(m.top().is_true());
        assert!(m.bottom().is_false());
        let a = m.var(0);
        let na = m.nvar(0);
        assert_eq!(m.not(a), na);
        assert_eq!(m.not(na), a);
        assert_eq!(m.and(a, na), m.bottom());
        assert_eq!(m.or(a, na), m.top());
    }

    #[test]
    fn canonical_forms_share_nodes() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let f1 = m.and(a, b);
        let f2 = m.and(b, a);
        assert_eq!(f1, f2, "conjunction is canonical regardless of operand order");
        let g1 = m.or(a, b);
        let g2 = {
            let na = m.not(a);
            let nb = m.not(b);
            let n = m.and(na, nb);
            m.not(n)
        };
        assert_eq!(g1, g2, "De Morgan duals are identical nodes");
    }

    #[test]
    fn xor_iff_ite() {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let x = m.xor(a, b);
        assert_eq!(m.sat_count(x), 2);
        let e = m.iff(a, b);
        assert_eq!(m.sat_count(e), 2);
        let nx = m.not(x);
        assert_eq!(e, nx);
        let i = m.ite(a, b, m.bottom());
        let ab = m.and(a, b);
        assert_eq!(i, ab);
    }

    #[test]
    fn sat_count_examples() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        assert_eq!(m.sat_count(m.top()), 8);
        assert_eq!(m.sat_count(m.bottom()), 0);
        assert_eq!(m.sat_count(a), 4);
        let ab = m.and(a, b);
        assert_eq!(m.sat_count(ab), 2);
        let f = m.or(ab, c);
        assert_eq!(m.sat_count(f), 5);
        assert!((m.sat_count_f64(f) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn quantification() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        let ex_b = m.exists(f, 1);
        assert_eq!(ex_b, a);
        let all_b = m.forall(f, 1);
        assert!(all_b.is_false());
        let g = m.or(a, b);
        let all = m.forall_many(g, &[0, 1]);
        assert!(all.is_false());
        let ex = m.exists_many(g, &[0, 1]);
        assert!(ex.is_true());
    }

    #[test]
    fn restrict_cofactors() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let c = m.var(2);
        let f = {
            let ac = m.and(a, c);
            let na = m.nvar(0);
            let b = m.var(1);
            let nab = m.and(na, b);
            m.or(ac, nab)
        };
        let f_a1 = m.restrict(f, 0, true);
        assert_eq!(f_a1, c);
        let f_a0 = m.restrict(f, 0, false);
        assert_eq!(f_a0, m.var(1));
    }

    #[test]
    fn eval_and_any_sat() {
        let mut m = BddManager::new(4);
        let lits = [(0, true), (2, false), (3, true)];
        let cube = m.cube_of(&lits);
        assert!(m.eval(cube, &[true, false, false, true]));
        assert!(m.eval(cube, &[true, true, false, true]));
        assert!(!m.eval(cube, &[true, true, true, true]));
        let sat = m.any_sat(cube).unwrap();
        for (v, val) in lits {
            assert!(sat.contains(&(v, val)));
        }
        assert!(m.any_sat(m.bottom()).is_none());
    }

    #[test]
    fn support_and_size() {
        let mut m = BddManager::new(5);
        let a = m.var(0);
        let d = m.var(3);
        let f = m.xor(a, d);
        assert_eq!(m.support(f), vec![0, 3]);
        assert_eq!(m.size(f), 3);
        assert_eq!(m.support(m.top()), Vec::<VarId>::new());
        assert_eq!(m.size(m.top()), 0);
    }

    #[test]
    fn implies_checks_entailment() {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        let aorb = m.or(a, b);
        assert!(m.implies(ab, a));
        assert!(m.implies(ab, aorb));
        assert!(!m.implies(aorb, ab));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn var_out_of_range_panics() {
        let mut m = BddManager::new(2);
        m.var(2);
    }

    #[test]
    fn and_or_many_fold() {
        let mut m = BddManager::new(8);
        let all_vars: Vec<Bdd> = (0..8).map(|i| m.var(i)).collect();
        let conj = m.and_many(all_vars.iter().copied());
        assert_eq!(m.sat_count(conj), 1);
        let disj = m.or_many(all_vars.iter().copied());
        assert_eq!(m.sat_count(disj), 255);
    }

    #[test]
    fn terminal_sentinel_is_explicit() {
        let m = BddManager::new(4);
        assert!(m.nodes[0].is_terminal());
        assert!(m.nodes[1].is_terminal());
        assert_eq!(m.var_of(NodeId::FALSE), TERMINAL_VAR);
        assert_eq!(m.var_of(NodeId::TRUE), TERMINAL_VAR);
    }

    #[test]
    #[should_panic(expected = "terminal sentinel")]
    fn num_vars_may_not_collide_with_the_sentinel() {
        let _ = BddManager::new(TERMINAL_VAR as usize);
    }

    #[test]
    fn results_stay_canonical_across_cache_clears() {
        let mut m = BddManager::new(6);
        let vars: Vec<Bdd> = (0..6).map(|i| m.var(i)).collect();
        let mut before = Vec::new();
        for i in 0..5 {
            let x = m.xor(vars[i], vars[i + 1]);
            before.push(m.or(x, vars[0]));
        }
        m.clear_caches();
        // Recomputing after an O(1) cache invalidation must return the very
        // same handles (canonicity lives in the unique table, not the cache).
        for (i, &expected) in before.iter().enumerate() {
            let x = m.xor(vars[i], vars[i + 1]);
            assert_eq!(m.or(x, vars[0]), expected);
        }
        let nodes_after_recompute = m.num_nodes();
        m.clear_caches();
        let a = m.and(vars[2], vars[3]);
        let b = m.and(vars[3], vars[2]);
        assert_eq!(a, b);
        assert_eq!(m.num_nodes(), nodes_after_recompute + 1, "one new conjunction node");
    }

    #[test]
    fn cache_generation_survives_many_clears() {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let expected = m.and(a, b);
        for _ in 0..10_000 {
            m.clear_caches();
        }
        assert_eq!(m.and(a, b), expected);
    }

    #[test]
    fn reserve_prevents_arena_reallocation() {
        let mut m = BddManager::with_capacity(16, 4);
        m.reserve(100_000);
        let start_capacity = m.nodes.capacity();
        let vars: Vec<Bdd> = (0..16).map(|i| m.var(i)).collect();
        let mut acc = m.bottom();
        for chunk in vars.chunks(2) {
            let pair = m.and(chunk[0], chunk[1]);
            acc = m.or(acc, pair);
        }
        assert!(m.num_nodes() > 2);
        assert_eq!(m.nodes.capacity(), start_capacity, "no growth after reserve");
        assert!(!acc.is_false());
    }

    /// SplitMix64 — deterministic generator for the randomized tests.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    /// A random union of cubes over `nv` variables — the shape reachability
    /// frontiers take.
    fn random_cube_set(m: &mut BddManager, rng: &mut Rng, nv: u32, cubes: usize) -> Bdd {
        let mut acc = m.bottom();
        for _ in 0..cubes {
            let mut lits = Vec::new();
            for v in 0..nv {
                match rng.next() % 3 {
                    0 => lits.push((v, false)),
                    1 => lits.push((v, true)),
                    _ => {}
                }
            }
            let cube = m.cube_of(&lits);
            acc = m.or(acc, cube);
        }
        acc
    }

    /// Reference quantifier: the old one-variable-at-a-time loop.
    fn exists_loop(m: &mut BddManager, f: Bdd, vars: &[VarId]) -> Bdd {
        let mut acc = f;
        for &v in vars {
            let f0 = m.restrict(acc, v, false);
            let f1 = m.restrict(acc, v, true);
            acc = m.or(f0, f1);
        }
        acc
    }

    #[test]
    fn and_exists_equals_exists_of_and_on_random_cube_sets() {
        for seed in 0..40u64 {
            let mut rng = Rng(seed);
            let nv = 2 + (rng.next() % 7) as u32;
            let mut m = BddManager::new(nv as usize);
            let fc = 1 + (rng.next() % 6) as usize;
            let f = random_cube_set(&mut m, &mut rng, nv, fc);
            let gc = 1 + (rng.next() % 6) as usize;
            let g = random_cube_set(&mut m, &mut rng, nv, gc);
            let vars: Vec<VarId> = (0..nv).filter(|_| rng.next() % 2 == 0).collect();
            let fused = m.and_exists(f, g, &vars);
            let fg = m.and(f, g);
            let reference = m.exists_many(fg, &vars);
            assert_eq!(fused, reference, "seed {seed}, vars {vars:?}");
            // Cross-check against the per-variable loop as well.
            assert_eq!(exists_loop(&mut m, fg, &vars), reference, "seed {seed}");
        }
    }

    #[test]
    fn fused_quantifiers_match_the_per_variable_loop() {
        for seed in 100..130u64 {
            let mut rng = Rng(seed);
            let nv = 3 + (rng.next() % 6) as u32;
            let mut m = BddManager::new(nv as usize);
            let fc = 1 + (rng.next() % 8) as usize;
            let f = random_cube_set(&mut m, &mut rng, nv, fc);
            let vars: Vec<VarId> = (0..nv).filter(|_| rng.next() % 2 == 0).collect();
            let fused = m.exists_many(f, &vars);
            assert_eq!(fused, exists_loop(&mut m, f, &vars), "seed {seed}");
            // ∀ is the De Morgan dual of ∃.
            let all = m.forall_many(f, &vars);
            let nf = m.not(f);
            let ex_nf = m.exists_many(nf, &vars);
            assert_eq!(all, m.not(ex_nf), "seed {seed}");
        }
    }

    #[test]
    fn quantifier_sets_are_order_and_duplicate_insensitive() {
        let mut m = BddManager::new(5);
        let a = m.var(0);
        let c = m.var(2);
        let e = m.var(4);
        let ac = m.and(a, c);
        let f = m.or(ac, e);
        let sorted = m.exists_many(f, &[0, 2]);
        let shuffled = m.exists_many(f, &[2, 0, 2, 0]);
        assert_eq!(sorted, shuffled);
        let cube1 = m.quant_cube(&[4, 1, 1, 4]);
        let cube2 = m.quant_cube(&[1, 4]);
        assert_eq!(cube1, cube2);
        assert!(m.is_quant_cube(cube1));
        let not_a_cube = m.or(a, c);
        assert!(!m.is_quant_cube(not_a_cube));
        assert!(m.is_quant_cube(m.top()));
        assert!(!m.is_quant_cube(m.bottom()));
    }

    #[test]
    fn and_exists_never_builds_the_conjunction_when_it_can_prune() {
        // f ∧ g is huge, but quantifying everything collapses to a constant;
        // the fused operator must answer without materialising f ∧ g.
        let mut m = BddManager::new(16);
        let f_vars: Vec<Bdd> = (0..16).map(|i| m.var(i)).collect();
        let mut f = m.bottom();
        for pair in f_vars.chunks(2) {
            let x = m.xor(pair[0], pair[1]);
            f = m.or(f, x);
        }
        let g = m.top();
        let all: Vec<VarId> = (0..16).collect();
        let r = m.and_exists(f, g, &all);
        assert!(r.is_true());
    }

    #[test]
    fn unprime_shifts_odd_variables_down() {
        let mut m = BddManager::new(8);
        // f over the odd (next-state) variables 1, 3, 5.
        let x1 = m.var(1);
        let x3 = m.var(3);
        let x5 = m.var(5);
        let x13 = m.and(x1, x3);
        let f = m.or(x13, x5);
        let g = m.unprime(f);
        let e0 = m.var(0);
        let e2 = m.var(2);
        let e4 = m.var(4);
        let e02 = m.and(e0, e2);
        let expected = m.or(e02, e4);
        assert_eq!(g, expected);
        // Mixed support is fine as long as no even/odd pair collides.
        let e6 = m.var(6);
        let mixed = m.and(f, e6);
        let unprimed = m.unprime(mixed);
        let expected_mixed = m.and(expected, e6);
        assert_eq!(unprimed, expected_mixed);
        // Even-only functions are fixed points.
        assert_eq!(m.unprime(expected), expected);
    }

    #[test]
    #[should_panic(expected = "both variables of the pair")]
    fn unprime_rejects_colliding_variable_pairs() {
        let mut m = BddManager::new(4);
        let x0 = m.var(0);
        let x1 = m.var(1);
        let bad = m.and(x0, x1);
        let _ = m.unprime(bad);
    }

    #[test]
    fn prime_shifts_even_variables_up_and_inverts_unprime() {
        let mut m = BddManager::new(8);
        let e0 = m.var(0);
        let e2 = m.var(2);
        let e4 = m.var(4);
        let e02 = m.and(e0, e2);
        let f = m.or(e02, e4);
        let primed = m.prime(f);
        let x1 = m.var(1);
        let x3 = m.var(3);
        let x5 = m.var(5);
        let x13 = m.and(x1, x3);
        let expected = m.or(x13, x5);
        assert_eq!(primed, expected);
        assert_eq!(m.unprime(primed), f, "unprime ∘ prime is the identity");
        // Odd-only functions are fixed points; mixed support is fine as long
        // as no even/odd pair collides.
        assert_eq!(m.prime(expected), expected);
        let mixed = m.and(f, x5);
        // f depends on var 4, x5 on var 5 — the pair (4, 5) collides.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut m2 = BddManager::new(8);
            let e4 = m2.var(4);
            let x5 = m2.var(5);
            let bad = m2.and(e4, x5);
            m2.prime(bad)
        }));
        assert!(result.is_err(), "colliding pair must panic");
        let _ = mixed;
    }

    #[test]
    #[should_panic(expected = "no odd successor")]
    fn prime_rejects_the_last_variable() {
        // In a 3-variable manager the even variable 2 has no odd partner.
        let mut m = BddManager::new(3);
        let top_even = m.var(2);
        let _ = m.prime(top_even);
    }

    #[test]
    fn stats_report_nodes_and_cache_traffic() {
        let mut m = BddManager::new(6);
        let before = m.stats();
        assert_eq!(before.num_nodes, before.peak_nodes);
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        let _ = m.and(a, b); // exercises the cache
        let after = m.stats();
        assert!(after.num_nodes > before.num_nodes);
        assert_eq!(after.num_nodes, after.peak_nodes);
        assert!(after.cache_hits > 0, "repeat conjunction must hit the cache");
        assert!(after.cache_misses > 0);
        assert!(after.unique_entries >= 3);
        assert!(!ab.is_false());
    }

    #[test]
    fn sat_count_memo_survives_and_stays_correct_across_growth() {
        let mut m = BddManager::new(10);
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        assert_eq!(m.sat_count(ab), 256);
        // Grow the DAG, then count a superset function: persisted per-node
        // fractions must compose correctly with the new nodes.
        let c = m.var(2);
        let f = m.or(ab, c);
        assert_eq!(m.sat_count(f), 256 + 512 - 128);
        assert!((m.sat_count_f64(f) - m.sat_count(f) as f64).abs() < 1e-6);
        m.clear_caches();
        assert_eq!(m.sat_count(f), 640, "counts unchanged after cache clear");
    }

    #[test]
    fn unique_table_grows_past_initial_capacity() {
        // Force many distinct nodes through a tiny initial table.
        let mut m = BddManager::with_capacity(24, 4);
        let vars: Vec<Bdd> = (0..24).map(|i| m.var(i)).collect();
        let mut fns = Vec::new();
        for i in 0..24 {
            for j in (i + 1)..24 {
                fns.push(m.xor(vars[i], vars[j]));
            }
        }
        // Re-deriving every function must return identical handles even
        // after multiple table growths.
        for (k, &expected) in fns.iter().enumerate() {
            let mut idx = 0;
            'outer: for i in 0..24 {
                for j in (i + 1)..24 {
                    if idx == k {
                        assert_eq!(m.xor(vars[i], vars[j]), expected);
                        break 'outer;
                    }
                    idx += 1;
                }
            }
        }
        assert!(m.num_nodes() > 24 * 3);
    }

    #[test]
    fn node_budget_trips_and_poisons_until_taken() {
        use crate::budget::{Budget, Resource};
        let mut m = BddManager::new(64);
        let budget = Budget::new(Some(256), None, None);
        budget.set_stage("test-stage");
        m.set_budget(budget.clone());
        // Build XOR chains until the node ceiling trips (XOR of distinct
        // variables shares nothing, so the arena grows steadily).
        let mut acc = m.bottom();
        for round in 0..10_000u64 {
            let v = m.var((round % 64) as VarId);
            acc = m.xor(acc, v);
            if m.check_budget().is_err() {
                break;
            }
        }
        assert!(m.budget_tripped(), "256-node ceiling never tripped");
        // While poisoned, operations return placeholders without panicking.
        let a = m.var(0);
        let b = m.var(1);
        let _ = m.and(a, b);
        let trip = m.take_budget_trip().expect("trip report present");
        assert_eq!(trip.resource, Resource::Nodes);
        assert_eq!(trip.stage, "test-stage");
        assert!(trip.spent > trip.limit);
        // After taking the trip the manager computes correctly again (the
        // budget itself stays exceeded, but no new check has run yet).
        assert!(!m.budget_tripped());
        let ab = m.and(a, b);
        assert!(m.implies(ab, a) && m.implies(ab, b));
    }

    #[test]
    fn cancellation_is_observed_at_check_points() {
        use crate::budget::{Budget, Resource};
        let mut m = BddManager::new(8);
        let budget = Budget::unlimited();
        m.set_budget(budget.clone());
        budget.cancel();
        let err = m.check_budget().expect_err("cancelled budget must trip");
        assert_eq!(err.resource, Resource::Cancelled);
    }
}
