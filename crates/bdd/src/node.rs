//! Node and variable identifiers.

use std::fmt;

/// Index of a BDD variable (its position in the global ordering).
pub type VarId = u32;

/// Index of a node inside a [`crate::BddManager`].
///
/// `NodeId(0)` is the constant `false` terminal and `NodeId(1)` the constant
/// `true` terminal.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The `false` terminal.
    pub const FALSE: NodeId = NodeId(0);
    /// The `true` terminal.
    pub const TRUE: NodeId = NodeId(1);

    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if this is one of the two terminal nodes.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            NodeId::FALSE => write!(f, "⊥"),
            NodeId::TRUE => write!(f, "⊤"),
            NodeId(i) => write!(f, "n{i}"),
        }
    }
}

/// The sentinel variable index carried by the two terminal nodes.
///
/// Terminals sit conceptually *below* every decision level, so their
/// variable must compare greater than any real variable in the `min`-based
/// top-variable computations of `apply`.  `VarId::MAX` guarantees that, and
/// [`crate::BddManager`] asserts at construction that no real variable can
/// ever collide with it.
pub(crate) const TERMINAL_VAR: VarId = VarId::MAX;

/// An internal decision node: `if var then high else low`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct Node {
    pub var: VarId,
    pub low: NodeId,
    pub high: NodeId,
}

impl Node {
    /// The arena representation of both terminals: children point at the
    /// `false` terminal and are never followed.
    pub(crate) const TERMINAL: Node =
        Node { var: TERMINAL_VAR, low: NodeId::FALSE, high: NodeId::FALSE };

    /// Returns `true` if this node is one of the two terminals.
    ///
    /// This is the *representation* invariant (`var == TERMINAL_VAR`); it
    /// must agree with the *positional* invariant ([`NodeId::is_terminal`],
    /// index ≤ 1) for the first two arena slots and only those.
    #[inline]
    pub(crate) fn is_terminal(&self) -> bool {
        self.var == TERMINAL_VAR
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals() {
        assert!(NodeId::FALSE.is_terminal());
        assert!(NodeId::TRUE.is_terminal());
        assert!(!NodeId(2).is_terminal());
        assert_eq!(format!("{:?}", NodeId::FALSE), "⊥");
        assert_eq!(format!("{:?}", NodeId::TRUE), "⊤");
        assert_eq!(format!("{:?}", NodeId(5)), "n5");
    }
}
