//! Error type for Petri-net construction and analysis.

use std::error::Error;
use std::fmt;

/// Errors raised while building or analysing a Petri net.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PetriError {
    /// The net has no transitions or no places.
    EmptyNet,
    /// A place or transition index is out of range.
    UnknownNode {
        /// Human-readable kind ("place" or "transition").
        kind: &'static str,
        /// Offending index.
        index: usize,
        /// Number of nodes of that kind.
        count: usize,
    },
    /// A duplicate arc was added between the same pair of nodes.
    DuplicateArc {
        /// Description of the arc.
        description: String,
    },
    /// The reachability analysis found a marking that puts more than one
    /// token in a place, so the net is not safe.
    NotSafe {
        /// Name of the offending place.
        place: String,
        /// Name of the transition whose firing caused the violation.
        transition: String,
    },
    /// The reachability analysis exceeded the caller-supplied state limit.
    StateLimitExceeded {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The initial marking enables no transition and the net has places
    /// marked inconsistently (e.g. everything empty).
    DeadInitialMarking,
}

impl fmt::Display for PetriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PetriError::EmptyNet => {
                write!(f, "petri net must have at least one place and one transition")
            }
            PetriError::UnknownNode { kind, index, count } => {
                write!(f, "{kind} index {index} out of range (net has {count})")
            }
            PetriError::DuplicateArc { description } => write!(f, "duplicate arc {description}"),
            PetriError::NotSafe { place, transition } => write!(
                f,
                "net is not safe: firing '{transition}' puts a second token in place '{place}'"
            ),
            PetriError::StateLimitExceeded { limit } => {
                write!(f, "reachability graph exceeds the limit of {limit} states")
            }
            PetriError::DeadInitialMarking => {
                write!(f, "initial marking enables no transition")
            }
        }
    }
}

impl Error for PetriError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_relevant_names() {
        let e = PetriError::NotSafe { place: "p3".into(), transition: "a+".into() };
        let msg = e.to_string();
        assert!(msg.contains("p3"));
        assert!(msg.contains("a+"));
        assert!(PetriError::StateLimitExceeded { limit: 7 }.to_string().contains('7'));
    }
}
