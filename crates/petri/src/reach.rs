//! Explicit reachability-graph construction.

use crate::{Marking, PetriError, PetriNet, TransId};
use std::collections::HashMap;
use std::collections::VecDeque;
use ts::{StateId, TransitionSystem, TransitionSystemBuilder};

/// The reachability graph of a safe Petri net.
///
/// States of the embedded [`TransitionSystem`] correspond one-to-one to the
/// reachable markings (`markings[state.index()]`); events correspond to net
/// transitions and carry the same names.
#[derive(Clone, Debug)]
pub struct ReachabilityGraph {
    /// The reachability graph as a transition system.
    pub ts: TransitionSystem,
    /// The marking of every state, indexed by [`StateId`].
    pub markings: Vec<Marking>,
}

impl ReachabilityGraph {
    /// The marking associated with `state`.
    pub fn marking(&self, state: StateId) -> &Marking {
        &self.markings[state.index()]
    }

    /// Finds the state whose marking equals `marking`, if it is reachable.
    pub fn state_of(&self, marking: &Marking) -> Option<StateId> {
        self.markings.iter().position(|m| m == marking).map(StateId::from)
    }
}

impl PetriNet {
    /// Builds the explicit reachability graph of the net, exploring at most
    /// `max_states` markings.
    ///
    /// # Errors
    ///
    /// * [`PetriError::NotSafe`] if some reachable firing puts two tokens in
    ///   a place,
    /// * [`PetriError::StateLimitExceeded`] if more than `max_states`
    ///   markings are reachable,
    /// * [`PetriError::DeadInitialMarking`] if the initial marking enables no
    ///   transition (specifications of autonomous circuits are cyclic, so a
    ///   dead initial marking always indicates a modelling error).
    pub fn reachability_graph(&self, max_states: usize) -> Result<ReachabilityGraph, PetriError> {
        if self.enabled_transitions(self.initial_marking()).is_empty() {
            return Err(PetriError::DeadInitialMarking);
        }

        let mut builder = TransitionSystemBuilder::new();
        // Intern all event names up front so that event ids equal transition ids.
        for t in 0..self.num_transitions() {
            builder.add_event(self.transition_name(TransId::from(t)));
        }

        let mut markings: Vec<Marking> = Vec::new();
        let mut index: HashMap<Marking, StateId> = HashMap::new();
        let mut queue: VecDeque<StateId> = VecDeque::new();

        let initial = self.initial_marking().clone();
        let initial_state = builder.add_state(format!("m{}", markings.len()));
        index.insert(initial.clone(), initial_state);
        markings.push(initial);
        queue.push_back(initial_state);

        while let Some(state) = queue.pop_front() {
            let marking = markings[state.index()].clone();
            for t in self.enabled_transitions(&marking) {
                let next = self.fire(&marking, t)?;
                let next_state = if let Some(&existing) = index.get(&next) {
                    existing
                } else {
                    if markings.len() >= max_states {
                        return Err(PetriError::StateLimitExceeded { limit: max_states });
                    }
                    let fresh = builder.add_state(format!("m{}", markings.len()));
                    index.insert(next.clone(), fresh);
                    markings.push(next);
                    queue.push_back(fresh);
                    fresh
                };
                builder.add_transition(state, self.transition_name(t), next_state);
            }
        }

        let ts = builder
            .build(StateId(0))
            .expect("reachability construction always produces a valid system");
        Ok(ReachabilityGraph { ts, markings })
    }

    /// Returns `true` if the net is safe (1-bounded), exploring at most
    /// `max_states` markings.
    pub fn is_safe(&self, max_states: usize) -> Result<bool, PetriError> {
        match self.reachability_graph(max_states) {
            Ok(_) => Ok(true),
            Err(PetriError::NotSafe { .. }) => Ok(false),
            Err(other) => Err(other),
        }
    }

    /// Counts the reachable markings (bounded by `max_states`).
    pub fn count_reachable_markings(&self, max_states: usize) -> Result<usize, PetriError> {
        Ok(self.reachability_graph(max_states)?.markings.len())
    }
}

#[cfg(test)]
mod tests {
    use crate::PetriNetBuilder;

    fn two_stage_pipeline() -> crate::PetriNet {
        let mut b = PetriNetBuilder::new();
        let t: Vec<_> = (0..3).map(|i| b.add_transition(format!("t{i}"))).collect();
        b.connect(t[0], t[1], "s0_full", false);
        b.connect(t[1], t[0], "s0_empty", true);
        b.connect(t[1], t[2], "s1_full", false);
        b.connect(t[2], t[1], "s1_empty", true);
        b.build().unwrap()
    }

    #[test]
    fn pipeline_reachability_graph_shape() {
        let net = two_stage_pipeline();
        let rg = net.reachability_graph(100).unwrap();
        // Two independent buffers each full/empty, constrained by ordering:
        // reachable markings are (e,e), (f,e), (e,f), (f,f) = 4.
        assert_eq!(rg.ts.num_states(), 4);
        assert!(rg.ts.is_deterministic());
        assert_eq!(rg.markings.len(), 4);
        assert_eq!(rg.state_of(net.initial_marking()), Some(ts::StateId(0)));
        assert!(net.is_safe(100).unwrap());
        assert_eq!(net.count_reachable_markings(100).unwrap(), 4);
    }

    #[test]
    fn marking_lookup_round_trips() {
        let net = two_stage_pipeline();
        let rg = net.reachability_graph(100).unwrap();
        for i in 0..rg.ts.num_states() {
            let state = ts::StateId::from(i);
            assert_eq!(rg.state_of(rg.marking(state)), Some(state));
        }
    }

    #[test]
    fn state_limit_is_enforced() {
        let net = two_stage_pipeline();
        let err = net.reachability_graph(2).unwrap_err();
        assert!(matches!(err, crate::PetriError::StateLimitExceeded { limit: 2 }));
    }

    #[test]
    fn unsafe_net_is_detected() {
        let mut b = PetriNetBuilder::new();
        let src = b.add_place("src", 1);
        let dst = b.add_place("dst", 1);
        let t = b.add_transition("t");
        let back = b.add_transition("back");
        b.add_arc_place_to_transition(src, t);
        b.add_arc_transition_to_place(t, dst);
        b.add_arc_place_to_transition(dst, back);
        b.add_arc_transition_to_place(back, src);
        let net = b.build().unwrap();
        assert!(!net.is_safe(100).unwrap());
    }

    #[test]
    fn dead_initial_marking_is_an_error() {
        let mut b = PetriNetBuilder::new();
        let p = b.add_place("p", 0);
        let t = b.add_transition("t");
        b.add_arc_place_to_transition(p, t);
        let net = b.build().unwrap();
        assert!(matches!(
            net.reachability_graph(10).unwrap_err(),
            crate::PetriError::DeadInitialMarking
        ));
    }

    #[test]
    fn event_ids_match_transition_ids() {
        let net = two_stage_pipeline();
        let rg = net.reachability_graph(100).unwrap();
        for t in 0..net.num_transitions() {
            let name = net.transition_name(crate::TransId::from(t));
            assert_eq!(rg.ts.event_id(name).unwrap().index(), t);
        }
    }
}
