//! The Petri-net structure and firing rule.

use crate::{Marking, PetriError};
use std::fmt;

/// Identifier of a place.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PlaceId(pub u32);

/// Identifier of a transition.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TransId(pub u32);

impl PlaceId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TransId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for PlaceId {
    fn from(value: usize) -> Self {
        PlaceId(value as u32)
    }
}

impl From<usize> for TransId {
    fn from(value: usize) -> Self {
        TransId(value as u32)
    }
}

/// A place-transition Petri net with an initial marking.
///
/// The net is immutable once built with [`crate::PetriNetBuilder`]; the
/// pre-set and post-set of every node are stored as packed, sorted vectors.
#[derive(Clone)]
pub struct PetriNet {
    place_names: Vec<String>,
    trans_names: Vec<String>,
    /// For each transition, the places it consumes from.
    pre: Vec<Vec<PlaceId>>,
    /// For each transition, the places it produces into.
    post: Vec<Vec<PlaceId>>,
    /// For each place, the transitions that consume from it.
    place_out: Vec<Vec<TransId>>,
    /// For each place, the transitions that produce into it.
    place_in: Vec<Vec<TransId>>,
    initial: Marking,
}

impl PetriNet {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        place_names: Vec<String>,
        trans_names: Vec<String>,
        pre: Vec<Vec<PlaceId>>,
        post: Vec<Vec<PlaceId>>,
        place_out: Vec<Vec<TransId>>,
        place_in: Vec<Vec<TransId>>,
        initial: Marking,
    ) -> Self {
        PetriNet { place_names, trans_names, pre, post, place_out, place_in, initial }
    }

    /// Number of places.
    pub fn num_places(&self) -> usize {
        self.place_names.len()
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.trans_names.len()
    }

    /// Total number of arcs in the flow relation.
    pub fn num_arcs(&self) -> usize {
        self.pre.iter().map(Vec::len).sum::<usize>() + self.post.iter().map(Vec::len).sum::<usize>()
    }

    /// The initial marking.
    pub fn initial_marking(&self) -> &Marking {
        &self.initial
    }

    /// Name of a place.
    pub fn place_name(&self, place: PlaceId) -> &str {
        &self.place_names[place.index()]
    }

    /// Name of a transition.
    pub fn transition_name(&self, trans: TransId) -> &str {
        &self.trans_names[trans.index()]
    }

    /// All transition names indexed by [`TransId`].
    pub fn transition_names(&self) -> &[String] {
        &self.trans_names
    }

    /// Looks up a transition by name.
    pub fn transition_id(&self, name: &str) -> Option<TransId> {
        self.trans_names.iter().position(|n| n == name).map(TransId::from)
    }

    /// Looks up a place by name.
    pub fn place_id(&self, name: &str) -> Option<PlaceId> {
        self.place_names.iter().position(|n| n == name).map(PlaceId::from)
    }

    /// Pre-set of a transition (places it consumes from).
    pub fn preset(&self, trans: TransId) -> &[PlaceId] {
        &self.pre[trans.index()]
    }

    /// Post-set of a transition (places it produces into).
    pub fn postset(&self, trans: TransId) -> &[PlaceId] {
        &self.post[trans.index()]
    }

    /// Transitions consuming from `place`.
    pub fn place_postset(&self, place: PlaceId) -> &[TransId] {
        &self.place_out[place.index()]
    }

    /// Transitions producing into `place`.
    pub fn place_preset(&self, place: PlaceId) -> &[TransId] {
        &self.place_in[place.index()]
    }

    /// Returns `true` if `trans` is enabled in `marking`.
    pub fn is_enabled(&self, marking: &Marking, trans: TransId) -> bool {
        self.pre[trans.index()].iter().all(|&p| marking.is_marked(p))
    }

    /// All transitions enabled in `marking`.
    pub fn enabled_transitions(&self, marking: &Marking) -> Vec<TransId> {
        (0..self.num_transitions())
            .map(TransId::from)
            .filter(|&t| self.is_enabled(marking, t))
            .collect()
    }

    /// Fires `trans` in `marking`, returning the successor marking.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::NotSafe`] if firing would place a second token
    /// in a place (the paper's method requires safe nets).
    ///
    /// # Panics
    ///
    /// Panics if `trans` is not enabled; callers should check with
    /// [`PetriNet::is_enabled`] first.
    pub fn fire(&self, marking: &Marking, trans: TransId) -> Result<Marking, PetriError> {
        assert!(self.is_enabled(marking, trans), "transition {trans:?} is not enabled");
        let mut next = marking.clone();
        for &p in &self.pre[trans.index()] {
            next.set(p, false);
        }
        for &p in &self.post[trans.index()] {
            if next.is_marked(p) {
                return Err(PetriError::NotSafe {
                    place: self.place_name(p).to_owned(),
                    transition: self.transition_name(trans).to_owned(),
                });
            }
            next.set(p, true);
        }
        Ok(next)
    }

    /// Returns `true` if the net structure is *pure* (no self-loop between a
    /// place and a transition).
    pub fn is_pure(&self) -> bool {
        (0..self.num_transitions()).all(|t| {
            let t = TransId::from(t);
            self.pre[t.index()].iter().all(|p| !self.post[t.index()].contains(p))
        })
    }

    /// Returns `true` if every place has at most one consumer and at most one
    /// producer (the net is a *marked graph*: no choice, only concurrency).
    pub fn is_marked_graph(&self) -> bool {
        (0..self.num_places()).all(|p| self.place_out[p].len() <= 1 && self.place_in[p].len() <= 1)
    }

    /// Returns `true` if the net is *free choice*: any two transitions that
    /// share an input place have identical pre-sets.
    pub fn is_free_choice(&self) -> bool {
        for p in 0..self.num_places() {
            let consumers = &self.place_out[p];
            for i in 0..consumers.len() {
                for j in (i + 1)..consumers.len() {
                    if self.pre[consumers[i].index()] != self.pre[consumers[j].index()] {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// A Graphviz dot rendering of the net, useful for debugging and
    /// documentation.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph petri {\n  rankdir=LR;\n");
        for (i, name) in self.place_names.iter().enumerate() {
            let marked =
                if self.initial.is_marked(PlaceId::from(i)) { ", style=filled" } else { "" };
            out.push_str(&format!("  p{i} [label=\"{name}\", shape=circle{marked}];\n"));
        }
        for (i, name) in self.trans_names.iter().enumerate() {
            out.push_str(&format!("  t{i} [label=\"{name}\", shape=box];\n"));
        }
        for (t, places) in self.pre.iter().enumerate() {
            for p in places {
                out.push_str(&format!("  p{} -> t{};\n", p.index(), t));
            }
        }
        for (t, places) in self.post.iter().enumerate() {
            for p in places {
                out.push_str(&format!("  t{} -> p{};\n", t, p.index()));
            }
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Debug for PetriNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PetriNet")
            .field("places", &self.num_places())
            .field("transitions", &self.num_transitions())
            .field("arcs", &self.num_arcs())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::PetriNetBuilder;

    /// Builds the net of Fig. 1(b): a and b concurrent, then c, then a
    /// choice-free continuation.
    pub(crate) fn fig1_net() -> crate::PetriNet {
        let mut b = PetriNetBuilder::new();
        let p1 = b.add_place("p1", 1);
        let p2 = b.add_place("p2", 1);
        let p3 = b.add_place("p3", 0);
        let p4 = b.add_place("p4", 0);
        let p5 = b.add_place("p5", 0);
        let a = b.add_transition("a");
        let tb = b.add_transition("b");
        let c = b.add_transition("c");
        b.add_arc_place_to_transition(p1, a);
        b.add_arc_place_to_transition(p2, tb);
        b.add_arc_transition_to_place(a, p3);
        b.add_arc_transition_to_place(tb, p4);
        b.add_arc_place_to_transition(p3, c);
        b.add_arc_place_to_transition(p4, c);
        b.add_arc_transition_to_place(c, p5);
        b.build().unwrap()
    }

    #[test]
    fn structural_queries() {
        let net = fig1_net();
        assert_eq!(net.num_places(), 5);
        assert_eq!(net.num_transitions(), 3);
        assert_eq!(net.num_arcs(), 7);
        let c = net.transition_id("c").unwrap();
        assert_eq!(net.preset(c).len(), 2);
        assert_eq!(net.postset(c).len(), 1);
        let p3 = net.place_id("p3").unwrap();
        assert_eq!(net.place_preset(p3).len(), 1);
        assert_eq!(net.place_postset(p3).len(), 1);
        assert!(net.is_pure());
        assert!(net.is_marked_graph());
        assert!(net.is_free_choice());
    }

    #[test]
    fn firing_moves_tokens() {
        let net = fig1_net();
        let a = net.transition_id("a").unwrap();
        let c = net.transition_id("c").unwrap();
        let m0 = net.initial_marking().clone();
        assert!(net.is_enabled(&m0, a));
        assert!(!net.is_enabled(&m0, c));
        let m1 = net.fire(&m0, a).unwrap();
        assert!(m1.is_marked(net.place_id("p3").unwrap()));
        assert!(!m1.is_marked(net.place_id("p1").unwrap()));
        assert_eq!(net.enabled_transitions(&m0).len(), 2);
        assert_eq!(net.enabled_transitions(&m1).len(), 1);
    }

    #[test]
    #[should_panic(expected = "not enabled")]
    fn firing_a_disabled_transition_panics() {
        let net = fig1_net();
        let c = net.transition_id("c").unwrap();
        let _ = net.fire(net.initial_marking(), c);
    }

    #[test]
    fn unsafe_firing_is_reported() {
        let mut b = PetriNetBuilder::new();
        let p0 = b.add_place("p0", 1);
        let sink = b.add_place("sink", 1);
        let t = b.add_transition("t");
        b.add_arc_place_to_transition(p0, t);
        b.add_arc_transition_to_place(t, sink);
        let net = b.build().unwrap();
        let err = net.fire(net.initial_marking(), net.transition_id("t").unwrap()).unwrap_err();
        assert!(matches!(err, crate::PetriError::NotSafe { .. }));
    }

    #[test]
    fn dot_output_mentions_every_node() {
        let net = fig1_net();
        let dot = net.to_dot();
        assert!(dot.contains("label=\"a\""));
        assert!(dot.contains("label=\"p5\""));
        assert!(dot.contains("->"));
    }

    #[test]
    fn non_free_choice_detection() {
        let mut b = PetriNetBuilder::new();
        let shared = b.add_place("shared", 1);
        let extra = b.add_place("extra", 1);
        let t1 = b.add_transition("t1");
        let t2 = b.add_transition("t2");
        let out = b.add_place("out", 0);
        b.add_arc_place_to_transition(shared, t1);
        b.add_arc_place_to_transition(shared, t2);
        b.add_arc_place_to_transition(extra, t2);
        b.add_arc_transition_to_place(t1, out);
        let net = b.build().unwrap();
        assert!(!net.is_free_choice());
        assert!(!net.is_marked_graph());
    }
}
