//! Markings of safe Petri nets.

use crate::net::PlaceId;
use std::fmt;

/// A marking of a safe (1-bounded) Petri net: the set of marked places,
/// packed into machine words.
///
/// Markings are used both as graph-search keys during reachability analysis
/// and as the state payload of the generated transition system, so they are
/// compact, hashable and cheap to clone.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Marking {
    words: Vec<u64>,
    num_places: usize,
}

impl Marking {
    /// The empty marking over `num_places` places.
    pub fn empty(num_places: usize) -> Self {
        Marking { words: vec![0; num_places.div_ceil(64)], num_places }
    }

    /// A marking with exactly the given places marked.
    pub fn from_places<I: IntoIterator<Item = PlaceId>>(num_places: usize, marked: I) -> Self {
        let mut m = Marking::empty(num_places);
        for p in marked {
            m.set(p, true);
        }
        m
    }

    /// Number of places in the net this marking belongs to.
    pub fn num_places(&self) -> usize {
        self.num_places
    }

    /// Returns `true` if `place` carries a token.
    #[inline]
    pub fn is_marked(&self, place: PlaceId) -> bool {
        let i = place.index();
        assert!(i < self.num_places, "place index {i} out of range {}", self.num_places);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Sets or clears the token of `place`.
    #[inline]
    pub fn set(&mut self, place: PlaceId, marked: bool) {
        let i = place.index();
        assert!(i < self.num_places, "place index {i} out of range {}", self.num_places);
        if marked {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Number of marked places.
    pub fn token_count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the marked places in increasing index order.
    pub fn marked_places(&self) -> impl Iterator<Item = PlaceId> + '_ {
        (0..self.num_places).map(PlaceId::from).filter(move |&p| self.is_marked(p))
    }

    /// Converts the marking to a boolean vector indexed by place.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.num_places).map(|i| self.is_marked(PlaceId::from(i))).collect()
    }
}

impl fmt::Debug for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.marked_places().map(|p| p.index())).finish()
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.marked_places().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "p{}", p.index())?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_query() {
        let mut m = Marking::empty(70);
        assert_eq!(m.token_count(), 0);
        m.set(PlaceId::from(0), true);
        m.set(PlaceId::from(69), true);
        assert!(m.is_marked(PlaceId::from(0)));
        assert!(m.is_marked(PlaceId::from(69)));
        assert!(!m.is_marked(PlaceId::from(5)));
        assert_eq!(m.token_count(), 2);
        m.set(PlaceId::from(0), false);
        assert_eq!(m.token_count(), 1);
    }

    #[test]
    fn from_places_and_iteration() {
        let m = Marking::from_places(10, [PlaceId::from(3), PlaceId::from(7)]);
        let marked: Vec<usize> = m.marked_places().map(|p| p.index()).collect();
        assert_eq!(marked, vec![3, 7]);
        assert!(m.to_bools()[3]);
        assert!(!m.to_bools()[4]);
        assert_eq!(format!("{m}"), "{p3,p7}");
    }

    #[test]
    fn equality_and_hashing_are_structural() {
        use std::collections::HashSet;
        let a = Marking::from_places(6, [PlaceId::from(1)]);
        let b = Marking::from_places(6, [PlaceId::from(1)]);
        let c = Marking::from_places(6, [PlaceId::from(2)]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_place_panics() {
        let m = Marking::empty(3);
        m.is_marked(PlaceId::from(3));
    }
}
