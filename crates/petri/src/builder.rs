//! Incremental construction of Petri nets.

use crate::net::{PlaceId, TransId};
use crate::{Marking, PetriError, PetriNet};
use std::collections::HashMap;

/// Builder for [`PetriNet`].
///
/// Places and transitions are interned by name.  Arcs may be added in any
/// order; [`PetriNetBuilder::build`] validates the result and freezes the
/// adjacency indices.
///
/// # Example
///
/// ```
/// use petri::PetriNetBuilder;
///
/// let mut b = PetriNetBuilder::new();
/// let p = b.add_place("ready", 1);
/// let t = b.add_transition("go");
/// b.add_arc_place_to_transition(p, t);
/// let net = b.build()?;
/// assert!(net.is_enabled(net.initial_marking(), t));
/// # Ok::<(), petri::PetriError>(())
/// ```
#[derive(Default, Debug, Clone)]
pub struct PetriNetBuilder {
    place_names: Vec<String>,
    place_tokens: Vec<u32>,
    place_index: HashMap<String, PlaceId>,
    trans_names: Vec<String>,
    trans_index: HashMap<String, TransId>,
    pre: Vec<Vec<PlaceId>>,
    post: Vec<Vec<PlaceId>>,
}

impl PetriNetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or looks up) a place; `tokens` is its initial token count
    /// (0 or 1 for safe nets).  If the place already exists its marking is
    /// left unchanged.
    pub fn add_place(&mut self, name: impl Into<String>, tokens: u32) -> PlaceId {
        let name = name.into();
        if let Some(&id) = self.place_index.get(&name) {
            return id;
        }
        let id = PlaceId::from(self.place_names.len());
        self.place_index.insert(name.clone(), id);
        self.place_names.push(name);
        self.place_tokens.push(tokens);
        id
    }

    /// Adds (or looks up) a transition by name.
    pub fn add_transition(&mut self, name: impl Into<String>) -> TransId {
        let name = name.into();
        if let Some(&id) = self.trans_index.get(&name) {
            return id;
        }
        let id = TransId::from(self.trans_names.len());
        self.trans_index.insert(name.clone(), id);
        self.trans_names.push(name);
        self.pre.push(Vec::new());
        self.post.push(Vec::new());
        id
    }

    /// Checks that builder-issued ids actually come from *this* builder.
    /// Ids are opaque newtypes only this type hands out, so an
    /// out-of-range index is caller misuse, not recoverable input — it is
    /// reported as an invariant panic with the offending id rather than
    /// an opaque slice-index message.
    fn check_ids(&self, place: PlaceId, transition: TransId) {
        assert!(
            place.index() < self.place_names.len(),
            "place id {place:?} was not issued by this builder ({} places)",
            self.place_names.len()
        );
        assert!(
            transition.index() < self.trans_names.len(),
            "transition id {transition:?} was not issued by this builder ({} transitions)",
            self.trans_names.len()
        );
    }

    /// Adds an arc from `place` to `transition` (the transition consumes a
    /// token from the place).
    ///
    /// # Panics
    ///
    /// Panics if either id was not issued by this builder.
    pub fn add_arc_place_to_transition(&mut self, place: PlaceId, transition: TransId) {
        self.check_ids(place, transition);
        self.pre[transition.index()].push(place);
    }

    /// Adds an arc from `transition` to `place` (the transition produces a
    /// token into the place).
    ///
    /// # Panics
    ///
    /// Panics if either id was not issued by this builder.
    pub fn add_arc_transition_to_place(&mut self, transition: TransId, place: PlaceId) {
        self.check_ids(place, transition);
        self.post[transition.index()].push(place);
    }

    /// Convenience: adds a fresh place connecting `from` to `to`, optionally
    /// marked.  Returns the new place.
    pub fn connect(
        &mut self,
        from: TransId,
        to: TransId,
        name: impl Into<String>,
        marked: bool,
    ) -> PlaceId {
        let p = self.add_place(name, u32::from(marked));
        self.add_arc_transition_to_place(from, p);
        self.add_arc_place_to_transition(p, to);
        p
    }

    /// Number of places added so far.
    pub fn num_places(&self) -> usize {
        self.place_names.len()
    }

    /// Number of transitions added so far.
    pub fn num_transitions(&self) -> usize {
        self.trans_names.len()
    }

    /// Marks `place` with a token in the initial marking.
    ///
    /// # Panics
    ///
    /// Panics if `place` was not issued by this builder.
    pub fn mark_place(&mut self, place: PlaceId) {
        assert!(
            place.index() < self.place_names.len(),
            "place id {place:?} was not issued by this builder ({} places)",
            self.place_names.len()
        );
        self.place_tokens[place.index()] = 1;
    }

    /// Finalises the net.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::EmptyNet`] if there is no place or no
    /// transition, and [`PetriError::DuplicateArc`] if the same arc was added
    /// twice.
    pub fn build(self) -> Result<PetriNet, PetriError> {
        if self.place_names.is_empty() || self.trans_names.is_empty() {
            return Err(PetriError::EmptyNet);
        }
        let num_places = self.place_names.len();
        let mut pre = self.pre;
        let mut post = self.post;
        for (t, places) in pre.iter_mut().chain(post.iter_mut()).enumerate() {
            places.sort();
            let before = places.len();
            places.dedup();
            if places.len() != before {
                return Err(PetriError::DuplicateArc {
                    description: format!("around transition index {t}"),
                });
            }
        }
        let mut place_out = vec![Vec::new(); num_places];
        let mut place_in = vec![Vec::new(); num_places];
        for (t, places) in pre.iter().enumerate() {
            for p in places {
                place_out[p.index()].push(TransId::from(t));
            }
        }
        for (t, places) in post.iter().enumerate() {
            for p in places {
                place_in[p.index()].push(TransId::from(t));
            }
        }
        let initial = Marking::from_places(
            num_places,
            self.place_tokens
                .iter()
                .enumerate()
                .filter(|(_, &tokens)| tokens > 0)
                .map(|(i, _)| PlaceId::from(i)),
        );
        Ok(PetriNet::from_parts(
            self.place_names,
            self.trans_names,
            pre,
            post,
            place_out,
            place_in,
            initial,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_and_counts() {
        let mut b = PetriNetBuilder::new();
        let p1 = b.add_place("p", 0);
        let p2 = b.add_place("p", 1);
        assert_eq!(p1, p2);
        assert_eq!(b.num_places(), 1);
        let t1 = b.add_transition("t");
        let t2 = b.add_transition("t");
        assert_eq!(t1, t2);
        assert_eq!(b.num_transitions(), 1);
    }

    #[test]
    fn empty_net_is_rejected() {
        assert_eq!(PetriNetBuilder::new().build().unwrap_err(), PetriError::EmptyNet);
        let mut only_place = PetriNetBuilder::new();
        only_place.add_place("p", 0);
        assert_eq!(only_place.build().unwrap_err(), PetriError::EmptyNet);
    }

    #[test]
    fn duplicate_arcs_are_rejected() {
        let mut b = PetriNetBuilder::new();
        let p = b.add_place("p", 1);
        let t = b.add_transition("t");
        b.add_arc_place_to_transition(p, t);
        b.add_arc_place_to_transition(p, t);
        assert!(matches!(b.build().unwrap_err(), PetriError::DuplicateArc { .. }));
    }

    #[test]
    fn connect_creates_marked_or_unmarked_places() {
        let mut b = PetriNetBuilder::new();
        let t1 = b.add_transition("t1");
        let t2 = b.add_transition("t2");
        b.connect(t1, t2, "q", true);
        b.connect(t2, t1, "r", false);
        let net = b.build().unwrap();
        assert_eq!(net.num_places(), 2);
        let q = net.place_id("q").unwrap();
        let r = net.place_id("r").unwrap();
        assert!(net.initial_marking().is_marked(q));
        assert!(!net.initial_marking().is_marked(r));
        assert!(net.is_enabled(net.initial_marking(), t2));
    }

    #[test]
    fn mark_place_after_creation() {
        let mut b = PetriNetBuilder::new();
        let p = b.add_place("p", 0);
        b.add_transition("t");
        b.mark_place(p);
        let net = b.build().unwrap();
        assert_eq!(net.initial_marking().token_count(), 1);
    }
}
