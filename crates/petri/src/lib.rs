//! Petri nets for asynchronous circuit synthesis.
//!
//! A Petri net `N = (P, T, F, m0)` consists of places, transitions, a flow
//! relation and an initial marking.  Signal Transition Graphs — the input
//! formalism of the DAC'96 state-encoding paper — are Petri nets whose
//! transitions are labelled with signal edges; their *reachability graph*
//! is the transition system on which regions, CSC conflicts and event
//! insertion are defined.
//!
//! This crate provides:
//!
//! * [`PetriNet`] and [`PetriNetBuilder`] — the net structure with packed
//!   pre-/post-set indices,
//! * [`Marking`] — a bit-set marking for safe (1-bounded) nets,
//! * explicit reachability-graph construction producing a
//!   [`ts::TransitionSystem`] ([`PetriNet::reachability_graph`]),
//! * safeness / boundedness diagnostics and structural queries used by net
//!   synthesis.
//!
//! # Example
//!
//! ```
//! use petri::PetriNetBuilder;
//!
//! // A two-stage producer/consumer pipeline.
//! let mut b = PetriNetBuilder::new();
//! let idle = b.add_place("idle", 1);
//! let full = b.add_place("full", 0);
//! let produce = b.add_transition("produce");
//! let consume = b.add_transition("consume");
//! b.add_arc_place_to_transition(idle, produce);
//! b.add_arc_transition_to_place(produce, full);
//! b.add_arc_place_to_transition(full, consume);
//! b.add_arc_transition_to_place(consume, idle);
//! let net = b.build()?;
//!
//! let rg = net.reachability_graph(1_000)?;
//! assert_eq!(rg.ts.num_states(), 2);
//! # Ok::<(), petri::PetriError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod marking;
mod net;
mod reach;

pub use builder::PetriNetBuilder;
pub use error::PetriError;
pub use marking::Marking;
pub use net::{PetriNet, PlaceId, TransId};
pub use reach::ReachabilityGraph;
