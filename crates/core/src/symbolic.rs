//! Fully symbolic CSC resolution: state-signal insertion without the
//! explicit state graph.
//!
//! The explicit pipeline ([`crate::SolverContext`]) enumerates every
//! reachable state, packs codes into 64-bit words and manipulates
//! [`ts::StateSet`] bit vectors — which caps it at 64 signals and makes it
//! pay for the full state count.  This module re-expresses each stage of
//! the paper's algorithm over the BDDs of [`stg::SymbolicStateSpace`], so
//! the solver's capacity is bounded by BDD sizes instead of state counts:
//!
//! 1. **Conflict detection** — for every non-input signal `a`, the ON/OFF
//!    *code* sets are projections of the reachable (marking, code) set, and
//!    the *conflict relation* — pairs of reachable states with equal codes
//!    but different enabled behaviour — is built over current/next variable
//!    pairs with [`bdd::BddManager::prime`] and collapsed onto the shared
//!    codes by the fused relational product
//!    ([`bdd::BddManager::and_exists`]).
//! 2. **Core extraction** — [`bdd::BddManager::one_sat`] picks one
//!    conflicting code from the relation; the states carrying it split into
//!    the two *core* sets the next insertion must separate.
//! 3. **Block search** — candidate insertion blocks are unions of symbolic
//!    *bricks*: per-place marked-predicates and per-transition excitation /
//!    switching regions (the I-partition search of [`crate::search`]
//!    re-expressed over reachability BDDs instead of `StateSet`s).  A
//!    frontier search grows blocks by image-adjacent bricks under a cheap
//!    separation cost, then the best few candidates get the full validity
//!    analysis.
//! 4. **I-partition & insertion** — the excitation regions of the new
//!    signal are the minimal well-formed exit borders of the block and its
//!    complement (the construction of [`crate::partition`], computed as BDD
//!    fixpoints), every net transition is classified by its region-crossing
//!    signature, and the new signal is inserted *directly into the Petri
//!    net*: four phase places (`rise requested/acked`, `fall
//!    requested/acked`) carry the baton, entering transitions trigger the
//!    rise, and crossing transitions wait for it — the Petri-level mirror
//!    of the concurrent event insertion of Fig. 2.
//! 5. **Iteration** — the encoded space of the grown STG is recomputed and
//!    the loop repeats until the symbolic CSC check passes.
//!
//! The result is an encoded **STG** (not a state graph), so the designer
//! hands-back property the paper highlights comes for free, and designs
//! with more than 64 signals — impossible for the explicit solver even to
//! represent — are solved end to end.

use crate::solver::{SolveStats, SolverConfig};
use crate::CscError;
use bdd::{Bdd, BddManager, Budget, FxHashMap, FxHashSet, VarId};
use petri::{PetriNetBuilder, TransId};
use std::time::Instant;
use stg::{
    ReachabilityConfig, Signal, SignalId, SignalKind, Stg, StgError, SymbolicStateSpace,
    TransitionLabel,
};

/// Which CSC solver the flow facade drives for a conflicted design.
///
/// Both solvers insert internal state signals until Complete State Coding
/// holds; they differ in representation, capacity and hand-back format.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum SolverStrategy {
    /// The staged explicit pipeline over the enumerated state graph
    /// ([`crate::SolverContext`]).  Exact conflict-pair counts, region
    /// bricks, parallel candidate evaluation — but capped at 64 signals and
    /// paying for every reachable state.
    Explicit,
    /// The BDD pipeline of [`crate::symbolic`] (this module): reachability,
    /// conflict cores, block search and insertion all symbolic, no signal
    /// cap, output is an encoded STG.
    #[default]
    Symbolic,
}

impl std::fmt::Display for SolverStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverStrategy::Explicit => write!(f, "explicit"),
            SolverStrategy::Symbolic => write!(f, "symbolic"),
        }
    }
}

/// One CSC conflict core the solver separated: a witness code shared by two
/// reachable states that disagree on the excitation of `signal`.
#[derive(Clone, Debug)]
pub struct ConflictCore {
    /// Name of the non-input signal whose excitation differs on the core.
    pub signal: String,
    /// The shared code, indexed by signal id at the iteration the core was
    /// extracted (inserted state signals extend the tail).
    pub code: Vec<bool>,
}

/// The result of a successful symbolic CSC resolution.
#[derive(Clone, Debug)]
pub struct SymbolicSolution {
    /// The encoded STG: the input model plus the inserted state signals
    /// (their transitions and phase places).  The symbolic CSC check holds
    /// on it.
    pub stg: Stg,
    /// Names of the inserted state signals, in insertion order.
    pub inserted_signals: Vec<String>,
    /// Run statistics.  `initial_conflicts` counts conflicting *codes*
    /// summed over signals (the symbolic analogue of the explicit solver's
    /// conflict-pair count), and the state counts saturate at `usize::MAX`
    /// — see [`Self::initial_states_f64`]/[`Self::final_states_f64`] for
    /// the unsaturated counts of wide designs.
    pub stats: SolveStats,
    /// Exact reachable (marking, code) state count of the input model.
    pub initial_states_f64: f64,
    /// Exact state count of the encoded result.
    pub final_states_f64: f64,
    /// The conflict core each iteration separated, in insertion order.
    pub cores: Vec<ConflictCore>,
}

/// Solves CSC on an STG fully symbolically, starting every signal at 0.
///
/// See [`solve_stg_symbolic_seeded`] for models whose initial marking
/// carries non-zero signal values.
///
/// ```
/// use csc::{solve_stg_symbolic, SolverConfig};
///
/// // The paper's pulser: one state signal, inserted directly into the
/// // Petri net — the result is an encoded STG, not a state graph.
/// let solution = solve_stg_symbolic(&stg::benchmarks::pulser(), &SolverConfig::default())?;
/// assert_eq!(solution.inserted_signals, ["csc0"]);
/// assert!(!solution.stg.symbolic_csc_violation(0));
/// # Ok::<(), csc::CscError>(())
/// ```
///
/// # Errors
///
/// Same as [`solve_stg_symbolic_seeded`].
pub fn solve_stg_symbolic(
    model: &Stg,
    config: &SolverConfig,
) -> Result<SymbolicSolution, CscError> {
    solve_stg_symbolic_seeded(model, config, 0)
}

/// Solves CSC on an STG fully symbolically: iterative state-signal
/// insertion where reachability, conflict detection, block search and the
/// insertion itself all run on BDDs — no explicit state graph is ever
/// built, and there is no cap on the signal count.
///
/// `initial_code` seeds the signal values of the initial marking (bit `i` =
/// signal `i`), exactly as in [`stg::Stg::symbolic_encoded_state_space`];
/// inserted signals always start at 0.
///
/// # Errors
///
/// * [`CscError::NotConverged`] if a reachability fixpoint hits its
///   iteration cap,
/// * [`CscError::SeedMismatch`] if `initial_code` does not label the
///   reachable markings consistently (the symbolic analogue of
///   `logic`'s `InitialCodeMismatch`),
/// * [`CscError::NoCandidate`] if no valid insertion block separates any
///   remaining conflict core,
/// * [`CscError::SignalLimitReached`] if [`SolverConfig::max_signals`] is
///   exhausted,
/// * [`CscError::InconsistentInsertion`] if an insertion breaks the
///   one-code-per-marking invariant (an internal error, reported rather
///   than silently accepted).
pub fn solve_stg_symbolic_seeded(
    model: &Stg,
    config: &SolverConfig,
    initial_code: u64,
) -> Result<SymbolicSolution, CscError> {
    solve_symbolic_inner(model, config, initial_code, &ReachabilityConfig::default())
}

/// [`solve_stg_symbolic_seeded`] under a shared resource [`Budget`]: every
/// reachability fixpoint and candidate evaluation charges the budget, and a
/// tripped ceiling surfaces as [`CscError::Budget`] within one check
/// interval instead of running away.
pub fn solve_stg_symbolic_budgeted(
    model: &Stg,
    config: &SolverConfig,
    initial_code: u64,
    budget: &Budget,
) -> Result<SymbolicSolution, CscError> {
    solve_symbolic_inner(
        model,
        config,
        initial_code,
        &ReachabilityConfig::with_budget(budget.clone()),
    )
}

/// [`solve_stg_symbolic_seeded`] under a caller-supplied
/// [`ReachabilityConfig`]: the degradation ladder uses this to retry the
/// solve with a restricted fixpoint (monolithic BFS) on the same budget.
pub fn solve_stg_symbolic_with(
    model: &Stg,
    config: &SolverConfig,
    initial_code: u64,
    reach: &ReachabilityConfig,
) -> Result<SymbolicSolution, CscError> {
    solve_symbolic_inner(model, config, initial_code, reach)
}

fn solve_symbolic_inner(
    model: &Stg,
    config: &SolverConfig,
    initial_code: u64,
    reach: &ReachabilityConfig,
) -> Result<SymbolicSolution, CscError> {
    let budget = reach.budget.as_ref();
    let start = Instant::now();
    let mut current = model.clone();
    let mut inserted: Vec<String> = Vec::new();
    let mut cores: Vec<ConflictCore> = Vec::new();
    let mut stats = SolveStats { jobs: 1, ..SolveStats::default() };
    let mut initial_states_f64 = 0.0;
    // The verified iteration of the accepted plan is carried into the next
    // round, so each insertion pays for exactly one encoded-reachability
    // analysis of the grown net.
    let mut carried: Option<Iteration> = None;

    loop {
        let t0 = Instant::now();
        let mut it = match carried.take() {
            Some(it) => it,
            None => Iteration::build(
                &current,
                initial_code,
                inserted.last().map(String::as_str),
                reach,
            )?,
        };
        let conflicted = it.detect_conflicts();
        it.check_budget()?;
        stats.stage.conflict_ms += ms_since(t0);
        let states = saturating_usize(it.state_count);
        if inserted.is_empty() {
            stats.initial_states = states;
            initial_states_f64 = it.state_count;
            stats.initial_conflicts = saturating_usize(it.conflict_code_count);
        }
        if conflicted.is_empty() {
            stats.final_states = states;
            stats.elapsed = start.elapsed();
            return Ok(SymbolicSolution {
                stg: current,
                inserted_signals: inserted,
                stats,
                cores,
                initial_states_f64,
                final_states_f64: it.state_count,
            });
        }
        if inserted.len() >= config.max_signals {
            return Err(CscError::SignalLimitReached {
                limit: config.max_signals,
                remaining_conflicts: conflicted.len(),
            });
        }

        // Try the conflicted signals in id order until one core admits a
        // verified insertion: candidate plans are ranked by predicted cost,
        // then each is applied to a scratch copy and *verified on the
        // rebuilt net* — encoded reachability must converge, stay
        // consistent (one code per marking) and strictly reduce the
        // conflict-pair count (totals first; a plan that only shrinks the
        // targeted signal's pairs is the fallback tier, mirroring the
        // explicit search's secondary-conflict fallback).
        let current_total = it.total_conflict_pairs();
        let current_markings = it.marking_count;
        let name = fresh_signal_name(&current, &config.signal_prefix);
        if let Some(budget) = budget {
            budget.set_stage("candidate-search");
        }
        let mut chosen: Option<(ConflictCore, Stg, Iteration)> = None;
        'signals: for &signal in &conflicted {
            it.check_budget()?;
            let core = it.extract_core(signal);
            let t1 = Instant::now();
            let candidates = it.search_blocks(&core, config, &mut stats);
            stats.stage.search_ms += ms_since(t1);
            let t2 = Instant::now();
            let plans = it.select_plans(&core, &candidates, config, &mut stats);
            it.check_budget()?;
            stats.stage.partition_ms += ms_since(t2);
            let core_pairs = it.signal_conflict_pairs(signal);
            let t3 = Instant::now();
            let debug = std::env::var_os("CSC_SYM_DEBUG").is_some();
            // Build each plan's net once; take the first that strictly
            // reduces the total pair count, falling back to the first that
            // at least shrinks the targeted signal's pairs (the
            // secondary-conflict tier of the explicit search).
            let mut fallback: Option<(Stg, Iteration)> = None;
            for plan in &plans {
                it.check_budget()?;
                let mut plan = plan.clone();
                let tp = Instant::now();
                it.finalize_premarks(&mut plan);
                if debug {
                    eprintln!("  premarks: {:.2?}", tp.elapsed());
                }
                let Ok(inserted_stg) = insert_signal(&current, &name, &plan) else {
                    continue;
                };
                let InsertedStg { stg: candidate_stg, new_places } = inserted_stg;
                let tb = Instant::now();
                // The rebuilt net's reachability is a sub-step of candidate
                // verification: label its budget trips accordingly.
                let verify_reach =
                    ReachabilityConfig { stage: Some("candidate-search"), ..reach.clone() };
                let built =
                    Iteration::build(&candidate_stg, initial_code, Some(&name), &verify_reach);
                if debug {
                    eprintln!("  verify build: {:.2?} (ok={})", tb.elapsed(), built.is_ok());
                }
                let mut next = match built {
                    Ok(next) => next,
                    // A budget trip must stop the whole solve, not just this
                    // plan — otherwise a deadline would be retried away.
                    Err(CscError::Budget(trip)) => return Err(CscError::Budget(trip)),
                    Err(_) => continue,
                };
                // Behaviour preservation: the encoded net projected onto
                // the original places must reach exactly the original
                // markings — a lost marking means the added waiting arcs
                // blocked (or deadlocked) real behaviour.
                let projected = next.old_marking_count(&new_places);
                if (projected - current_markings).abs() > 0.25 {
                    if debug {
                        eprintln!(
                            "  verify: markings {projected} != {current_markings} \
                             (join_rise={}, join_fall={})",
                            plan.join_rise, plan.join_fall
                        );
                    }
                    continue;
                }
                let next_total = next.total_conflict_pairs();
                if debug {
                    eprintln!("  verify: total {current_total} -> {next_total}");
                }
                // Strict decrease with both an absolute and a relative
                // margin: pair totals above 2^53 (wide designs, where every
                // independent-component configuration multiplies the count)
                // carry f64 rounding error, so "one pair fewer" is not
                // resolvable there — but genuine progress removes a constant
                // *fraction* of the aliased mass, far above the margin.
                if next_total < (current_total - 0.5).min(current_total * (1.0 - 1e-9)) {
                    chosen = Some((it.describe_core(&core), candidate_stg, next));
                    stats.stage.insert_ms += ms_since(t3);
                    break 'signals;
                }
                if fallback.is_none()
                    && next.signal_conflict_pairs(signal)
                        < (core_pairs - 0.5).min(core_pairs * (1.0 - 1e-9))
                {
                    fallback = Some((candidate_stg, next));
                }
            }
            if let Some((candidate_stg, next)) = fallback {
                chosen = Some((it.describe_core(&core), candidate_stg, next));
                stats.stage.insert_ms += ms_since(t3);
                break 'signals;
            }
            stats.stage.insert_ms += ms_since(t3);
        }
        let Some((core, next_stg, next_it)) = chosen else {
            return Err(CscError::NoCandidate { remaining_conflicts: conflicted.len() });
        };
        if std::env::var_os("CSC_SYM_DEBUG").is_some() {
            eprintln!(
                "iter {}: {} conflicted signals, core {} code {:?}",
                stats.iterations,
                conflicted.len(),
                core.signal,
                core.code.iter().map(|&b| u8::from(b)).collect::<Vec<_>>()
            );
        }
        current = next_stg;
        carried = Some(next_it);
        inserted.push(name);
        cores.push(core);
        stats.iterations += 1;
    }
}

fn ms_since(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn saturating_usize(count: f64) -> usize {
    if count >= usize::MAX as f64 {
        usize::MAX
    } else {
        count.round() as usize
    }
}

/// The first `{prefix}{i}` not already in the signal table.
fn fresh_signal_name(stg: &Stg, prefix: &str) -> String {
    let mut i = stg.internal_signals().len();
    loop {
        let name = format!("{prefix}{i}");
        if stg.signal_id(&name).is_none() {
            return name;
        }
        i += 1;
    }
}

/// One conflict core: a witness code (as a cube over the signal variables)
/// and the two reachable state sets carrying it whose enabled behaviour
/// differs on `signal`.
struct Core {
    signal: SignalId,
    /// Full assignment of the signal variables (the shared code).
    code_lits: Vec<(VarId, bool)>,
    /// Every reachable state carrying the core code (the code bucket).
    bucket: Bdd,
    /// Bucket states that enable `signal`.
    with: Bdd,
    /// Bucket states that do not.
    without: Bdd,
}

/// Per-transition arcs of one insertion, derived from the block-crossing
/// and excitation-region analysis (see [`Iteration::detail_eval`]).
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
struct TransArcs {
    /// The transition triggers the rise (some firing enters `ER(x+)`): it
    /// gets its own rise-request *leg* place, and `x+` joins all legs.
    produce_r1: bool,
    /// The transition crosses into the block: it additionally consumes the
    /// rise-acknowledge place (i.e. it waits for `x+`).
    consume_a1: bool,
    /// The transition triggers the fall (some firing enters `ER(x-)`): it
    /// gets its own fall-request leg place.
    produce_r0: bool,
    /// The transition leaves the block: it consumes the fall-acknowledge
    /// place (waits for `x-`).
    consume_a0: bool,
    /// The rise leg starts marked: the first `ER(x+)` visit is reachable
    /// without firing this trigger (its firing position lies "behind" the
    /// initial marking in the cycle).
    premark_r1: bool,
    /// The fall leg starts marked, by the same criterion for `ER(x-)`.
    premark_r0: bool,
}

/// Everything needed to rewrite the net for one new state signal.
#[derive(Clone)]
struct InsertionPlan {
    /// Arc additions per existing transition, indexed by transition id.
    arcs: Vec<TransArcs>,
    /// The derived `ER(x+)` (kept for the deferred premark computation).
    er_rise: Bdd,
    /// The derived `ER(x-)`.
    er_fall: Bdd,
    /// `true`: one `x+` transition joins every rise leg (the triggers are
    /// conjunctive — all fire before each rise).  `false`: one `x+`
    /// *instance* per leg (the triggers are alternatives — each excursion
    /// into `ER(x+)` is announced by exactly one of them, as with a
    /// multi-segment block).  The wrong mode deadlocks or double-fires, so
    /// the post-insertion verification keeps the variant that works.
    join_rise: bool,
    /// Same choice for the fall legs.
    join_fall: bool,
    /// The initial marking lies inside `ER(x+)` (split mode only): an extra
    /// pre-marked leg lets the first rise fire without any trigger.
    initial_rise_instance: bool,
}

/// The lexicographic cost of the cheap (pre-validity) candidate scoring:
/// how many sides of the core stay mixed, how many transitions violate
/// crossing-uniformity (the frontier search's gradient towards insertable
/// blocks), how far from a clean separation the block is, and how
/// unbalanced the core-bucket split is.
#[derive(Copy, Clone, Debug)]
struct CheapCost {
    remaining: u8,
    mixed_transitions: usize,
    mixed: f64,
    imbalance: f64,
    global_balance: f64,
}

impl CheapCost {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.remaining
            .cmp(&other.remaining)
            .then_with(|| self.mixed_transitions.cmp(&other.mixed_transitions))
            .then_with(|| self.mixed.total_cmp(&other.mixed))
            .then_with(|| self.imbalance.total_cmp(&other.imbalance))
            .then_with(|| self.global_balance.total_cmp(&other.global_balance))
    }
}

/// The full cost of a validity-checked candidate, mirroring the priority
/// order of the explicit search (`crate::search::Cost`): remaining conflict
/// mass first, then border risk, short circuits, triggers, balance.
#[derive(Copy, Clone, Debug)]
struct DetailCost {
    unresolved: f64,
    border: f64,
    short_circuits: usize,
    triggers: usize,
    imbalance: f64,
}

impl DetailCost {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.unresolved
            .total_cmp(&other.unresolved)
            .then_with(|| self.border.total_cmp(&other.border))
            .then_with(|| self.short_circuits.cmp(&other.short_circuits))
            .then_with(|| self.triggers.cmp(&other.triggers))
            .then_with(|| self.imbalance.total_cmp(&other.imbalance))
    }
}

/// A branch in solver form: enabled cube, changed-variable quantifier cube
/// and pinned-value cube interned once per iteration.
struct BranchOps {
    trans: TransId,
    enabled: Bdd,
    quant: Bdd,
    pinned_cube: Bdd,
    pinned: Vec<(VarId, bool)>,
    /// The (sorted) variables the branch changes — `pinned`'s variables.
    /// A branch whose changed set is disjoint from a predicate's support
    /// can never change membership in it: firings neither enter nor leave,
    /// and its image of a subset of the predicate stays inside.  Every
    /// region analysis below uses this to skip the (many) branches of a
    /// wide net that are independent of a local candidate block.
    changed: Vec<VarId>,
    /// All (sorted) variables the branch mentions (enabling ∪ changed) —
    /// what a zone's support hint absorbs when the branch contributes.
    vars: Vec<VarId>,
}

/// A candidate region: a set of reachable states (`set ⊆ Reach`) together
/// with a *support hint* — a sorted variable list naming the variables
/// membership depends on within the reachable states.  The hint is what
/// keeps the solver local on wide nets: every region analysis skips the
/// branches whose changed variables don't intersect it (such branches can
/// neither enter nor leave the region), while the set itself stays exact
/// (reach-conjoined), so no analysis ever sees an unreachable state.  For
/// derived zones the hint can under-approximate a dependency the reachable
/// set smuggles in through cross-component coupling; the analyses built on
/// it are heuristics whose outcome the post-insertion verification checks
/// semantically, so a too-small hint can cost quality but never
/// correctness.
#[derive(Clone)]
struct Zone {
    set: Bdd,
    sup: Vec<VarId>,
}

/// Maps a reachability failure onto the solver's error space: budget trips
/// and truncated fixpoints keep their typed identity instead of being
/// wrapped as generic STG errors.
fn reachability_error(e: StgError) -> CscError {
    match e {
        StgError::Budget(trip) => CscError::Budget(trip),
        StgError::NotConverged { iterations } => CscError::NotConverged { iterations },
        other => CscError::Stg(other),
    }
}

/// Sorted-merge of two support hints.
fn merge_sup(a: &[VarId], b: &[VarId]) -> Vec<VarId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    out.extend_from_slice(a);
    out.extend_from_slice(b);
    out.sort_unstable();
    out.dedup();
    out
}

/// `true` when the sorted variable lists share an element (two-pointer
/// sweep; both lists are ascending).
fn overlaps(a: &[VarId], b: &[VarId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// The per-iteration working state: the encoded reachability BDDs plus the
/// interned branch predicates every analysis below shares.
struct Iteration {
    space: SymbolicStateSpace,
    branches: Vec<BranchOps>,
    /// Per-branch reachable source states (`Reach ∧ enabled`), interned
    /// once — every candidate analysis starts from these.
    srcs: Vec<Bdd>,
    place_vars: Vec<VarId>,
    signal_vars: Vec<VarId>,
    /// Non-input signals, with their excitation predicate.
    non_inputs: Vec<(SignalId, Bdd)>,
    num_transitions: usize,
    labels: Vec<TransitionLabel>,
    input_signal: Vec<bool>,
    signal_names: Vec<String>,
    reach: Bdd,
    initial: Bdd,
    state_count: f64,
    marking_count: f64,
    conflict_code_count: f64,
    /// Conflict code sets per signal index (`None` = no conflict).
    conflict_codes: Vec<Option<Bdd>>,
    /// `⋀_s (cur_s ↔ next_s)` over the signal variables — the code-equality
    /// relation the conflict relation is built on.
    code_eq: Bdd,
    /// Memoised [`Self::reachable_without`] results, keyed by the avoided
    /// transition's index (plans share triggers, and the restricted
    /// reachability is the premark computation's dominant cost).
    without_cache: FxHashMap<usize, Bdd>,
}

impl Iteration {
    /// Flushes the manager's batched budget charges (sampling the deadline)
    /// and surfaces a pending trip as [`CscError::Budget`].  A no-op without
    /// an attached budget.
    fn check_budget(&mut self) -> Result<(), CscError> {
        self.space.manager_mut().check_budget().map_err(CscError::Budget)
    }

    /// Runs encoded reachability, guards the seed, and interns the branch
    /// predicates.  `last_inserted` labels a consistency failure; the
    /// config's budget (if any) is attached to the space's manager, so every
    /// analysis this iteration performs afterwards is charged against it.
    fn build(
        stg: &Stg,
        initial_code: u64,
        last_inserted: Option<&str>,
        reach_config: &ReachabilityConfig,
    ) -> Result<Self, CscError> {
        let mut space = stg
            .try_symbolic_encoded_state_space(initial_code, reach_config)
            .map_err(reachability_error)?;
        // Seed guard: every reachable marking must carry exactly one code.
        // The places-only fixpoint is the ground truth; a mismatch on the
        // first iteration means a wrong `initial_code`, later on it would
        // mean the previous insertion broke consistency.
        let marking_space =
            stg.try_symbolic_state_space(reach_config).map_err(reachability_error)?;
        let markings = marking_space.state_count_f64();
        let coded_states = space.state_count_f64();
        let num_places = space.num_places();
        let num_signals = space.num_signals();
        let place_vars: Vec<VarId> =
            (0..num_places).map(|p| space.current_var_of_place(p)).collect();
        let signal_vars: Vec<VarId> =
            (0..num_signals).map(|s| space.current_var_of_signal(s)).collect();
        let reach = space.reachable();
        let initial = space.initial_state();
        let coded_markings = {
            let num_manager_vars = space.manager().num_vars();
            let m = space.manager_mut();
            let marked_only = m.exists_many(reach, &signal_vars);
            let free_vars = (num_manager_vars - num_places) as i32;
            m.sat_count_f64(marked_only) / 2f64.powi(free_vars)
        };
        let close = |a: f64, b: f64| (a - b).abs() <= (a.abs().max(b.abs())) * 1e-9 + 0.25;
        if !close(markings, coded_markings) || !close(coded_states, coded_markings) {
            return Err(match last_inserted {
                Some(signal) => CscError::InconsistentInsertion { signal: signal.to_owned() },
                None => CscError::SeedMismatch {
                    markings: saturating_usize(markings),
                    coded_states: saturating_usize(coded_states),
                },
            });
        }

        let raw_branches = space.transition_branches(stg);
        let m = space.manager_mut();
        let branches: Vec<BranchOps> = raw_branches
            .iter()
            .map(|b| {
                let enabled = m.cube_of(&b.enabled);
                let mut changed: Vec<VarId> = b.pinned.iter().map(|&(v, _)| v).collect();
                changed.sort_unstable();
                let mut vars: Vec<VarId> = b.enabled.iter().map(|&(v, _)| v).collect();
                vars.extend_from_slice(&changed);
                vars.sort_unstable();
                vars.dedup();
                BranchOps {
                    trans: b.trans,
                    enabled,
                    quant: m.quant_cube(&changed),
                    pinned_cube: m.cube_of(&b.pinned),
                    pinned: b.pinned.clone(),
                    changed,
                    vars,
                }
            })
            .collect();

        // Excitation predicate per non-input signal: some branch of one of
        // its transitions is enabled.
        let mut non_inputs = Vec::new();
        for signal in stg.non_input_signals() {
            let mut en = m.bottom();
            for t in stg.transitions_of_signal(signal) {
                for b in branches.iter().filter(|b| b.trans == t) {
                    en = m.or(en, b.enabled);
                }
            }
            non_inputs.push((signal, en));
        }
        let srcs: Vec<Bdd> = branches.iter().map(|b| m.and(reach, b.enabled)).collect();
        let input_signal: Vec<bool> =
            stg.signals().iter().map(|s| s.kind == SignalKind::Input).collect();
        let signal_names: Vec<String> = stg.signals().iter().map(|s| s.name.clone()).collect();
        // Code equality between the current and next variable copies,
        // interned once per iteration.
        let mut code_eq = m.top();
        for &v in signal_vars.iter().rev() {
            let cur = m.var(v);
            let nxt = m.var(v + 1);
            let pair = m.iff(cur, nxt);
            code_eq = m.and(code_eq, pair);
        }

        Ok(Iteration {
            branches,
            srcs,
            place_vars,
            signal_vars,
            non_inputs,
            num_transitions: stg.net().num_transitions(),
            labels: stg.labels().to_vec(),
            input_signal,
            signal_names,
            reach,
            initial,
            state_count: coded_states,
            marking_count: markings,
            conflict_code_count: 0.0,
            conflict_codes: vec![None; num_signals],
            code_eq,
            without_cache: FxHashMap::default(),
            space,
        })
    }

    /// The number of CSC conflict pairs of `signal` *within* the state set
    /// `a`, counted on the conflict relation itself: pairs `(s, s′) ∈ a × a`
    /// with equal codes where `s` enables the signal and `s′` does not.
    /// The pair relation constrains every manager variable, so the count
    /// is an exact integer up to `f64` precision (beyond 2^53 pairs —
    /// wide designs — callers must compare with a relative margin).
    fn conflict_pair_count(&mut self, a: Bdd, en: Bdd) -> f64 {
        let m = self.space.manager_mut();
        let with = m.and(a, en);
        if with.is_false() {
            return 0.0;
        }
        let without = m.and_not(a, en);
        if without.is_false() {
            return 0.0;
        }
        let primed = m.prime(without);
        let pairs = m.and(with, primed);
        let related = m.and(pairs, self.code_eq);
        m.sat_count_f64(related)
    }

    /// Total CSC conflict pairs over all non-input signals (exact up to
    /// `f64` precision; see [`Self::conflict_pair_count`]).
    fn total_conflict_pairs(&mut self) -> f64 {
        let mut total = 0.0;
        for i in 0..self.non_inputs.len() {
            let (_, en) = self.non_inputs[i];
            total += self.conflict_pair_count(self.reach, en);
        }
        total
    }

    /// CSC conflict pairs of one signal over the whole reachable set.
    fn signal_conflict_pairs(&mut self, signal: SignalId) -> f64 {
        let en = self
            .non_inputs
            .iter()
            .find(|(s, _)| *s == signal)
            .map(|&(_, en)| en)
            .expect("non-input signal");
        self.conflict_pair_count(self.reach, en)
    }

    /// The number of equal-code pairs across two (disjoint) state sets —
    /// the conflict relation between `a` and `b` when every `a` state
    /// enables some event no `b` state enables (used to predict the
    /// inserted signal's own conflicts between its excitation regions and
    /// the stable regions).
    fn cross_pair_count(&mut self, a: Bdd, b: Bdd) -> f64 {
        if a.is_false() || b.is_false() {
            return 0.0;
        }
        let m = self.space.manager_mut();
        let primed = m.prime(b);
        let pairs = m.and(a, primed);
        let related = m.and(pairs, self.code_eq);
        m.sat_count_f64(related)
    }

    /// Detects CSC conflicts per non-input signal and returns the
    /// conflicted signal ids in id order.
    ///
    /// The conflict relation of signal `a` is built literally as the paper
    /// states it: pairs of reachable states with equal codes, one enabling
    /// `a` and one not.  Projected onto the code variables this is
    /// `codes(Reach ∧ En_a) ∧ prime(codes(Reach ∧ ¬En_a))` conjoined with
    /// the code-equality relation; the fused product `and_exists` quantifies
    /// the next-state copies away while conjoining the equality, leaving
    /// exactly the conflicting codes.
    fn detect_conflicts(&mut self) -> Vec<SignalId> {
        let eq = self.code_eq;
        let m = self.space.manager_mut();
        let next_signal_vars: Vec<VarId> = self.signal_vars.iter().map(|&v| v + 1).collect();
        let norm = 2f64.powi(m.num_vars() as i32 - self.signal_vars.len() as i32);

        let mut conflicted = Vec::new();
        let mut total = 0.0;
        for &(signal, en) in &self.non_inputs {
            let with = m.and(self.reach, en);
            let without = m.and_not(self.reach, en);
            let codes_with = m.exists_many(with, &self.place_vars);
            let codes_without = m.exists_many(without, &self.place_vars);
            // The pair relation over (current, next) code variables…
            let primed = m.prime(codes_without);
            let pairs = m.and(codes_with, primed);
            // …collapsed onto its diagonal (equal codes) by one fused pass.
            let clash = m.and_exists(pairs, eq, &next_signal_vars);
            debug_assert_eq!(
                clash,
                m.and(codes_with, codes_without),
                "the conflict relation's diagonal must equal the code-set intersection"
            );
            if !clash.is_false() {
                total += m.sat_count_f64(clash) / norm;
                conflicted.push(signal);
                self.conflict_codes[signal.index()] = Some(clash);
            } else {
                self.conflict_codes[signal.index()] = None;
            }
        }
        self.conflict_code_count = total;
        conflicted
    }

    /// Extracts the conflict core of `signal`: one witness code (a full
    /// signal-variable assignment from `one_sat`, free variables completed
    /// with 0 — every completion of a satisfying path is a conflicting
    /// code) and the two state sets carrying it.
    fn extract_core(&mut self, signal: SignalId) -> Core {
        let clash = self.conflict_codes[signal.index()].expect("core of a conflict-free signal");
        let m = self.space.manager_mut();
        let sat = m.one_sat(clash).expect("non-empty clash set");
        let picked: FxHashMap<VarId, bool> = sat.into_iter().collect();
        let code_lits: Vec<(VarId, bool)> = self
            .signal_vars
            .iter()
            .map(|&v| (v, picked.get(&v).copied().unwrap_or(false)))
            .collect();
        let code_cube = m.cube_of(&code_lits);
        let en = self
            .non_inputs
            .iter()
            .find(|(s, _)| *s == signal)
            .map(|&(_, en)| en)
            .expect("conflicted signal is non-input");
        let coded = m.and(self.reach, code_cube);
        let with = m.and(coded, en);
        let without = m.and_not(coded, en);
        debug_assert!(!with.is_false() && !without.is_false(), "core sides must be non-empty");
        Core { signal, code_lits, bucket: coded, with, without }
    }

    /// Renders a [`Core`] for the solution's diagnostics.
    fn describe_core(&self, core: &Core) -> ConflictCore {
        let code = core.code_lits.iter().map(|&(_, value)| value).collect();
        ConflictCore { signal: self.signal_names[core.signal.index()].clone(), code }
    }

    /// Image of `set` under one branch: `(∃ changed. set ∧ enabled) ∧
    /// pinned`.  All current-variable; the next copies are never touched.
    fn branch_image(m: &mut BddManager, b: &BranchOps, set: Bdd) -> Bdd {
        let enabled = m.and(set, b.enabled);
        if enabled.is_false() {
            return enabled;
        }
        let moved = m.exists_cube(enabled, b.quant);
        m.and(moved, b.pinned_cube)
    }

    /// Image of a zone under every branch *that can move it*.
    ///
    /// A zone's set is semantically a predicate over `sup` restricted to
    /// the reachable states; a branch whose changed variables are disjoint
    /// from `sup` maps the set into itself, so for the union-accumulating
    /// fixpoints of this module (forward closures, growth chains) it is
    /// skipped.  The result's hint absorbs the variables of every branch
    /// that contributed, keeping the invariant.
    fn image_zone(&mut self, z: &Zone) -> Zone {
        let m = self.space.manager_mut();
        let mut img = m.bottom();
        let mut sup = z.sup.clone();
        for b in &self.branches {
            if !overlaps(&b.changed, &z.sup) {
                continue;
            }
            let step = Self::branch_image(m, b, z.set);
            if !step.is_false() {
                img = m.or(img, step);
                sup.extend_from_slice(&b.vars);
            }
        }
        sup.sort_unstable();
        sup.dedup();
        Zone { set: img, sup }
    }

    /// `predicate` evaluated at the *target* of a branch, as a function of
    /// the source state: the cofactor at the pinned literals.
    fn at_target(m: &mut BddManager, b: &BranchOps, predicate: Bdd) -> Bdd {
        let mut g = predicate;
        for &(v, value) in &b.pinned {
            g = m.cofactor(g, v, value);
        }
        g
    }

    /// The minimal well-formed exit border of a zone: states of it with a
    /// firing that leaves it, closed under successors inside it — the
    /// symbolic mirror of
    /// [`crate::partition::minimal_well_formed_exit_border`].
    fn exit_border(&mut self, z: &Zone) -> Zone {
        let complement = {
            let m = self.space.manager_mut();
            m.and_not(self.reach, z.set)
        };
        let mut border = {
            let m = self.space.manager_mut();
            m.bottom()
        };
        let mut sup = z.sup.clone();
        for i in self.branches_touching(&z.sup) {
            let m = self.space.manager_mut();
            let b = &self.branches[i];
            let src = m.and(z.set, b.enabled);
            if src.is_false() {
                continue;
            }
            let leaves = Self::at_target(m, &self.branches[i], complement);
            let exits = m.and(src, leaves);
            if !exits.is_false() {
                border = m.or(border, exits);
                sup = merge_sup(&sup, &self.branches[i].vars);
            }
        }
        self.close_forward(Zone { set: border, sup }, z)
    }

    /// Cheap candidate scoring against the core (no validity analysis):
    /// how many sides of the core's with/without split stay mixed, the
    /// state mass sitting on the wrong side of the best orientation, and
    /// how unevenly the code *bucket* is split (balanced bucket splits
    /// resolve more of the bucket's pairwise conflicts per signal).
    fn cheap_eval(&mut self, core: &Core, block: &Zone) -> CheapCost {
        let m = self.space.manager_mut();
        let w_in = m.and(core.with, block.set);
        let w_out = m.and_not(core.with, block.set);
        let wo_in = m.and(core.without, block.set);
        let wo_out = m.and_not(core.without, block.set);
        let remaining = u8::from(!w_in.is_false() && !wo_in.is_false())
            + u8::from(!w_out.is_false() && !wo_out.is_false());
        let cnt = |m: &mut BddManager, f: Bdd| m.sat_count_f64(f);
        let straight = cnt(m, w_out) + cnt(m, wo_in);
        let flipped = cnt(m, w_in) + cnt(m, wo_out);
        let mixed = straight.min(flipped);
        let bucket_in = {
            let x = m.and(core.bucket, block.set);
            cnt(m, x)
        };
        let bucket_total = cnt(m, core.bucket);
        let block_mass = cnt(m, block.set);
        let total_mass = cnt(m, self.reach);
        CheapCost {
            remaining,
            mixed_transitions: self.count_mixed_transitions(block),
            mixed,
            imbalance: (2.0 * bucket_in - bucket_total).abs(),
            // Whole-space balance breaks the remaining ties: a block that
            // also splits the *other* code buckets evenly resolves more
            // secondary conflicts per inserted signal (the staircase
            // effect), and such blocks are strictly more balanced.
            global_balance: (2.0 * block_mass - total_mass).abs(),
        }
    }

    /// Number of branches whose reachable firings are *not*
    /// crossing-uniform with respect to `block` — the distance-to-validity
    /// gradient of the frontier search (0 means the block needs no
    /// uniformity repair).
    fn count_mixed_transitions(&mut self, block: &Zone) -> usize {
        let mut count = 0;
        for bi in self.branches_touching(&block.sup) {
            let m = self.space.manager_mut();
            let srcs = self.srcs[bi];
            if srcs.is_false() {
                continue;
            }
            let tgt_in = Self::at_target(m, &self.branches[bi], block.set);
            let not_in = m.not(tgt_in);
            let src_in = m.and(srcs, block.set);
            let src_out = m.and_not(srcs, block.set);
            let stays_in = !m.and(src_in, tgt_in).is_false();
            let leaves = !m.and(src_in, not_in).is_false();
            let enters = !m.and(src_out, tgt_in).is_false();
            let stays_out = !m.and(src_out, not_in).is_false();
            let crossing = leaves || enters;
            if (crossing && (stays_in || stays_out)) || (leaves && enters) {
                count += 1;
            }
        }
        count
    }

    /// The candidate bricks: per-place marked predicates, per-branch
    /// excitation regions (preset-marked cubes on the reachable set) and
    /// switching regions (their images), each carried as a [`Zone`] whose
    /// support hint is the defining predicate's support — one place, a
    /// preset cube, a branch's variables — not the (global) support of the
    /// reach-conjoined set.  Degenerate sets are dropped; duplicates are
    /// deduplicated by set identity.
    fn bricks(&mut self) -> Vec<Zone> {
        let mut out: Vec<Zone> = Vec::new();
        let mut seen: FxHashSet<bdd::NodeId> = FxHashSet::default();
        let reach = self.reach;
        let mut push = |out: &mut Vec<Zone>, set: Bdd, sup: Vec<VarId>| {
            if !set.is_false() && set != reach && seen.insert(set.node_id()) {
                out.push(Zone { set, sup });
            }
        };
        for i in 0..self.place_vars.len() {
            let v = self.place_vars[i];
            let m = self.space.manager_mut();
            let marked = m.var(v);
            let set = m.and(reach, marked);
            push(&mut out, set, vec![v]);
        }
        for i in 0..self.branches.len() {
            let er = self.srcs[i];
            push(&mut out, er, self.branches[i].vars.clone());
            let m = self.space.manager_mut();
            let sr = Self::branch_image(m, &self.branches[i], reach);
            push(&mut out, sr, self.branches[i].vars.clone());
        }
        out
    }

    /// The frontier search over brick unions (Fig. 4 re-expressed on BDDs):
    /// grow the best `FW` blocks by image-adjacent bricks while the cheap
    /// separation cost improves, and return the candidate pool sorted by
    /// that cost.
    fn search_blocks(
        &mut self,
        core: &Core,
        config: &SolverConfig,
        stats: &mut SolveStats,
    ) -> Vec<(Zone, CheapCost)> {
        let cone = self.conflict_cone(core);
        let bricks: Vec<Zone> =
            self.bricks().into_iter().filter(|b| overlaps(&b.sup, &cone)).collect();
        let mut seen: FxHashSet<bdd::NodeId> = FxHashSet::default();
        let mut pool: Vec<(Zone, CheapCost)> = Vec::new();
        for brick in &bricks {
            if !seen.insert(brick.set.node_id()) {
                stats.stage.candidates_pruned += 1;
                continue;
            }
            let cost = self.cheap_eval(core, brick);
            stats.stage.candidates_evaluated += 1;
            pool.push((brick.clone(), cost));
        }
        // The symbolic search needs a somewhat wider frontier than the
        // explicit one (its seeds double as chain/merge candidates), so
        // `frontier_width` acts on top of a floor of 8 — the value the
        // Table 2 quality parity was tuned at.
        let width = config.frontier_width.max(8);
        // Image-growth chains: iterated one-step forward extensions of the
        // best seeds and of the two core sides.  Each prefix of the chain is
        // a candidate, so "everything within k steps of X" windows — the
        // natural shape of an insertion block whose core states sit in the
        // stable interior — are reachable even when no brick union forms
        // them.
        {
            let mut sorted = pool.clone();
            sorted.sort_by(|a, b| a.1.cmp(&b.1));
            let mut chain_seeds: Vec<Zone> =
                sorted.iter().take(width).map(|c| c.0.clone()).collect();
            // The core sides are projected onto the cone before chaining,
            // so the chains (and everything grown from them) stay local:
            // "the pulser-side window, at any configuration of the other
            // components" instead of one full-product marking.
            for side in [core.with, core.without] {
                let projected = {
                    let m = self.space.manager_mut();
                    let away: Vec<VarId> = self
                        .place_vars
                        .iter()
                        .chain(self.signal_vars.iter())
                        .copied()
                        .filter(|v| cone.binary_search(v).is_err())
                        .collect();
                    let p = m.exists_many(side, &away);
                    m.and(self.reach, p)
                };
                chain_seeds.push(Zone { set: projected, sup: cone.clone() });
            }
            for seed in chain_seeds {
                let mut cur = seed;
                for _ in 0..self.place_vars.len().clamp(8, 32) {
                    let img = self.image_zone(&cur);
                    let next = {
                        let m = self.space.manager_mut();
                        m.or(cur.set, img.set)
                    };
                    if next == cur.set || next == self.reach {
                        break;
                    }
                    cur = Zone { set: next, sup: img.sup };
                    if !seen.insert(cur.set.node_id()) {
                        stats.stage.candidates_pruned += 1;
                        continue;
                    }
                    let cost = self.cheap_eval(core, &cur);
                    stats.stage.candidates_evaluated += 1;
                    pool.push((cur.clone(), cost));
                }
            }
        }
        let mut frontier: Vec<(Zone, CheapCost)> = {
            let mut seeds = pool.clone();
            seeds.sort_by(|a, b| a.1.cmp(&b.1));
            seeds.truncate(width);
            seeds
        };
        // Lazily computed per-brick images for backward adjacency.
        let mut brick_images: FxHashMap<bdd::NodeId, Bdd> = FxHashMap::default();
        let rounds = self.place_vars.len().clamp(8, 24);
        for _ in 0..rounds {
            let mut grown_any: Vec<(Zone, CheapCost)> = Vec::new();
            for (block, cost) in frontier.clone() {
                let zone = {
                    let img = self.image_zone(&block);
                    let m = self.space.manager_mut();
                    m.or(block.set, img.set)
                };
                for brick in &bricks {
                    // Adjacent: overlapping/forward-reachable from the
                    // block, or leading into it.
                    let forward = {
                        let m = self.space.manager_mut();
                        !m.and(zone, brick.set).is_false()
                    };
                    let adjacent = forward || {
                        let img = match brick_images.get(&brick.set.node_id()) {
                            Some(&img) => img,
                            None => {
                                let img = self.image_zone(brick).set;
                                brick_images.insert(brick.set.node_id(), img);
                                img
                            }
                        };
                        let m = self.space.manager_mut();
                        !m.and(img, block.set).is_false()
                    };
                    if !adjacent {
                        continue;
                    }
                    let grown_set = {
                        let m = self.space.manager_mut();
                        m.or(block.set, brick.set)
                    };
                    if grown_set == self.reach || !seen.insert(grown_set.node_id()) {
                        stats.stage.candidates_pruned += 1;
                        continue;
                    }
                    let grown = Zone { set: grown_set, sup: merge_sup(&block.sup, &brick.sup) };
                    let grown_cost = self.cheap_eval(core, &grown);
                    stats.stage.candidates_evaluated += 1;
                    if grown_cost.cmp(&cost).is_lt() {
                        pool.push((grown.clone(), grown_cost));
                        grown_any.push((grown, grown_cost));
                    }
                }
            }
            if grown_any.is_empty() {
                break;
            }
            grown_any.sort_by(|a, b| a.1.cmp(&b.1));
            grown_any.truncate(width);
            frontier = grown_any;
        }
        // Greedy merging of good, possibly disconnected blocks — the
        // explicit search's final phase.  Multi-segment blocks (one
        // segment per code-bucket cluster) come from here: adjacency-driven
        // growth alone can never unite disconnected pieces.
        {
            let mut sorted = pool.clone();
            sorted.sort_by(|a, b| a.1.cmp(&b.1));
            let top: Vec<Zone> = sorted.iter().take(12).map(|c| c.0.clone()).collect();
            for i in 0..top.len() {
                for j in (i + 1)..top.len() {
                    let merged_set = {
                        let m = self.space.manager_mut();
                        m.or(top[i].set, top[j].set)
                    };
                    if merged_set == self.reach || !seen.insert(merged_set.node_id()) {
                        stats.stage.candidates_pruned += 1;
                        continue;
                    }
                    let merged = Zone { set: merged_set, sup: merge_sup(&top[i].sup, &top[j].sup) };
                    let cost = self.cheap_eval(core, &merged);
                    stats.stage.candidates_evaluated += 1;
                    pool.push((merged, cost));
                }
            }
        }
        pool.sort_by(|a, b| a.1.cmp(&b.1));
        pool
    }

    /// Runs the full validity analysis on the candidates (best-first) and
    /// returns the valid insertion plans ranked by detailed cost, capped at
    /// `MAX_PLANS` — the outer loop verifies them post-insertion in this
    /// order and keeps the first that provably reduces the conflict count.
    fn select_plans(
        &mut self,
        core: &Core,
        candidates: &[(Zone, CheapCost)],
        config: &SolverConfig,
        stats: &mut SolveStats,
    ) -> Vec<InsertionPlan> {
        const MAX_PLANS: usize = 6;
        let cap = (4 * config.frontier_width).max(24);
        if std::env::var_os("CSC_SYM_DEBUG").is_some() {
            let zeros = candidates.iter().filter(|(_, c)| c.remaining == 0).count();
            eprintln!(
                "  select: {} candidates, {} with remaining=0, top: {:?}",
                candidates.len(),
                zeros,
                candidates.iter().take(4).map(|(_, c)| *c).collect::<Vec<_>>()
            );
        }
        let mut plans: Vec<(DetailCost, InsertionPlan)> = Vec::new();
        for (rank, (block, cheap)) in candidates.iter().enumerate() {
            // The insertion must make progress on the chosen core; past the
            // cap, keep scanning only while no plan has been found at all.
            if cheap.remaining >= 2 || (rank >= cap && !plans.is_empty()) {
                continue;
            }
            if rank >= cap {
                stats.stage.candidates_evaluated += 1;
            }
            if let Some((cost, plan)) = self.detail_eval(core, block) {
                plans.push((cost, plan));
            }
        }
        plans.sort_by(|a, b| a.0.cmp(&b.0));
        plans.truncate(MAX_PLANS);
        if std::env::var_os("CSC_SYM_DEBUG").is_some() {
            for (cost, _) in &plans {
                eprintln!("  plan: {cost:?}");
            }
        }
        // Expand the trigger-mode variants: joined legs first (single-visit
        // blocks, the common case), then per-leg instances where several
        // triggers exist (multi-segment blocks).  Verification keeps the
        // first variant whose rebuilt net behaves.
        let mut expanded = Vec::new();
        for (_, plan) in plans {
            let rise_triggers = plan.arcs.iter().filter(|a| a.produce_r1).count();
            let fall_triggers = plan.arcs.iter().filter(|a| a.produce_r0).count();
            expanded.push(plan.clone());
            if rise_triggers > 1 {
                expanded.push(InsertionPlan { join_rise: false, ..plan.clone() });
            }
            if fall_triggers > 1 {
                expanded.push(InsertionPlan { join_fall: false, ..plan.clone() });
            }
            if rise_triggers > 1 && fall_triggers > 1 {
                expanded.push(InsertionPlan { join_rise: false, join_fall: false, ..plan });
            }
        }
        expanded
    }

    /// Repairs `block` until every transition's reachable firings are
    /// *crossing-uniform* with respect to it: all entering, all leaving, or
    /// none crossing.  A transition whose firings mix crossing with staying
    /// is folded *inside* the block (sources and targets), which makes it
    /// internal — the symbolic mirror of the explicit solver's "an event
    /// may be delayed by the new signal only if it is delayed uniformly"
    /// repair.  Returns `None` when the repair escapes (reaches the full
    /// space or swallows the initial state, which must keep the new signal
    /// at 0).
    fn repair_block_uniformity(&mut self, mut block: Zone) -> Option<Zone> {
        for _ in 0..64 {
            let mut grow = {
                let m = self.space.manager_mut();
                m.bottom()
            };
            let mut grow_sup = block.sup.clone();
            for bi in self.branches_touching(&block.sup) {
                let (srcs, src_in, src_out, tgt_in_pred) = {
                    let m = self.space.manager_mut();
                    let srcs = self.srcs[bi];
                    if srcs.is_false() {
                        continue;
                    }
                    let tgt_in_pred = Self::at_target(m, &self.branches[bi], block.set);
                    (srcs, m.and(srcs, block.set), m.and_not(srcs, block.set), tgt_in_pred)
                };
                let m = self.space.manager_mut();
                let not_block = m.not(tgt_in_pred);
                let stays_in = !m.and(src_in, tgt_in_pred).is_false();
                let leaves = !m.and(src_in, not_block).is_false();
                let enters = !m.and(src_out, tgt_in_pred).is_false();
                let stays_out = !m.and(src_out, not_block).is_false();
                let crossing = leaves || enters;
                let mixed = (crossing && (stays_in || stays_out)) || (leaves && enters);
                if mixed {
                    let img = Self::branch_image(m, &self.branches[bi], srcs);
                    let touched = m.or(srcs, img);
                    grow = m.or(grow, touched);
                    grow_sup = merge_sup(&grow_sup, &self.branches[bi].vars);
                }
            }
            let m = self.space.manager_mut();
            if m.implies(grow, block.set) {
                return Some(block); // already uniform
            }
            block.set = m.or(block.set, grow);
            block.sup = grow_sup;
            let initial_inside = !m.and(self.initial, block.set).is_false();
            if initial_inside || block.set == self.reach {
                return None;
            }
        }
        None
    }

    /// The states reachable from the initial state *without ever firing*
    /// transition `avoid` — used to decide whether a trigger leg must start
    /// marked (the target region is reachable before the trigger's first
    /// firing, so its "delivery" logically happened before the initial
    /// marking).
    fn reachable_without(&mut self, avoid: TransId) -> Bdd {
        let mut reach = self.initial;
        let mut frontier = self.initial;
        loop {
            let mut img = {
                let m = self.space.manager_mut();
                m.bottom()
            };
            for bi in 0..self.branches.len() {
                if self.branches[bi].trans == avoid {
                    continue;
                }
                let m = self.space.manager_mut();
                let step = Self::branch_image(m, &self.branches[bi], frontier);
                img = m.or(img, step);
            }
            let m = self.space.manager_mut();
            let fresh = m.and_not(img, reach);
            if fresh.is_false() {
                return reach;
            }
            reach = m.or(reach, fresh);
            frontier = fresh;
        }
    }

    /// The *cone of influence* of a conflict core: the variables on which
    /// its two witness states disagree, closed under branch connectivity
    /// (any branch touching a cone variable contributes all its variables).
    /// On a net of independent components this is exactly the component(s)
    /// the conflict lives in — the only region where an insertion block can
    /// separate the core — so the search never pays for the rest of a wide
    /// net.  Falls back to every variable when no disagreement is found.
    fn conflict_cone(&mut self, core: &Core) -> Vec<VarId> {
        let m = self.space.manager_mut();
        let w = m.one_sat(core.with).unwrap_or_default();
        let wo: FxHashMap<VarId, bool> =
            m.one_sat(core.without).unwrap_or_default().into_iter().collect();
        let mut cone: Vec<VarId> = w
            .iter()
            .filter(|&&(v, value)| wo.get(&v).is_some_and(|&other| other != value))
            .map(|&(v, _)| v)
            .collect();
        cone.sort_unstable();
        if cone.is_empty() {
            let mut all: Vec<VarId> =
                self.place_vars.iter().chain(self.signal_vars.iter()).copied().collect();
            all.sort_unstable();
            return all;
        }
        loop {
            let mut grew = false;
            for b in &self.branches {
                if overlaps(&b.vars, &cone) && !b.vars.iter().all(|v| cone.binary_search(v).is_ok())
                {
                    cone = merge_sup(&cone, &b.vars);
                    grew = true;
                }
            }
            if !grew {
                return cone;
            }
        }
    }

    /// The branch indices whose changed variables intersect `support` —
    /// the only branches whose firings can enter or leave a predicate with
    /// that support.
    fn branches_touching(&self, support: &[VarId]) -> Vec<usize> {
        (0..self.branches.len())
            .filter(|&bi| overlaps(&self.branches[bi].changed, support))
            .collect()
    }

    /// The number of distinct markings the reachable set projects onto
    /// once the places in `new_places` (the freshly inserted signal's phase
    /// and leg places) are quantified away — used by the verification gate
    /// to reject insertions that restrict the original net's behaviour (a
    /// behaviour-preserving insertion extends markings, it never shrinks
    /// the projection).
    fn old_marking_count(&mut self, new_places: &std::ops::Range<usize>) -> f64 {
        let quantify: Vec<VarId> = self
            .place_vars
            .iter()
            .enumerate()
            .filter(|(p, _)| new_places.contains(p))
            .map(|(_, &v)| v)
            .chain(self.signal_vars.iter().copied())
            .collect();
        let old_places = self.place_vars.len() - new_places.len();
        let m = self.space.manager_mut();
        let projected = m.exists_many(self.reach, &quantify);
        let free = (m.num_vars() - old_places) as i32;
        m.sat_count_f64(projected) / 2f64.powi(free)
    }

    /// Forward closure of a zone inside `within`: successors that stay in
    /// `within` are absorbed until a fixpoint.
    fn close_forward(&mut self, mut z: Zone, within: &Zone) -> Zone {
        loop {
            let img = self.image_zone(&z);
            let m = self.space.manager_mut();
            let inside = m.and(img.set, within.set);
            let fresh = m.and_not(inside, z.set);
            if fresh.is_false() {
                return z;
            }
            z.set = m.or(z.set, fresh);
            z.sup = merge_sup(&img.sup, &within.sup);
        }
    }

    /// The full validity analysis of one candidate block: canonicalize the
    /// orientation, repair the block to crossing-uniformity, derive the
    /// excitation regions (exit-border fixpoints), repair *them* until every
    /// transition's region signature is uniform, and reject candidates that
    /// stay mixed or would delay an input.  Returns the detailed cost and
    /// the ready-to-apply insertion plan.
    fn detail_eval(&mut self, core: &Core, block: &Zone) -> Option<(DetailCost, InsertionPlan)> {
        let debug = std::env::var_os("CSC_SYM_DEBUG").is_some();
        // Orientation: the new signal starts at 0, so the initial state must
        // lie outside the block.
        let block = {
            let m = self.space.manager_mut();
            let initial_inside = !m.and(self.initial, block.set).is_false();
            if initial_inside {
                Zone { set: m.and_not(self.reach, block.set), sup: block.sup.clone() }
            } else {
                block.clone()
            }
        };
        if block.set.is_false() || block.set == self.reach {
            return None;
        }
        let Some(block) = self.repair_block_uniformity(block) else {
            if debug {
                eprintln!("  reject: block-uniformity repair escaped");
            }
            return None;
        };
        let side0 = {
            let m = self.space.manager_mut();
            Zone { set: m.and_not(self.reach, block.set), sup: block.sup.clone() }
        };
        let er_rise = self.exit_border(&side0);
        let er_fall = self.exit_border(&block);
        if er_rise.set.is_false() || er_fall.set.is_false() {
            if debug {
                eprintln!("  reject: empty ER");
            }
            return None; // the new signal would never rise or never fall
        }

        let (s0, s1) = {
            let m = self.space.manager_mut();
            (m.and_not(side0.set, er_rise.set), m.and_not(block.set, er_fall.set))
        };
        // Progress gate: a pair is *cleanly* resolved only when its two
        // states land in opposite stable regions — excitation-region states
        // occur with both values of the new signal (pre- and post-edge), so
        // their codes keep aliasing the other side.  At least one core pair
        // must be cleanly separated or the insertion cannot make progress
        // on the chosen conflict.
        {
            let m = self.space.manager_mut();
            let w_s0 = !m.and(core.with, s0).is_false();
            let w_s1 = !m.and(core.with, s1).is_false();
            let wo_s0 = !m.and(core.without, s0).is_false();
            let wo_s1 = !m.and(core.without, s1).is_false();
            if !((w_s0 && wo_s1) || (w_s1 && wo_s0)) {
                if debug {
                    eprintln!("  reject: no core pair lands in opposite stable regions");
                }
                return None;
            }
        }
        // Arc derivation.  Block crossings are uniform after the repair, so
        // the waiting arcs (`consume_a1`/`consume_a0`) are unambiguous; the
        // trigger arcs are per-transition *legs* of the new edges, and a
        // transition whose firings enter an excitation region gets one —
        // several triggers form a join on the new edge (each leg delivers
        // exactly one token per excursion, which the post-insertion
        // verification confirms on the rebuilt net).
        let mut arcs = vec![TransArcs::default(); self.num_transitions];
        let mut short_circuits = 0usize;
        let relevant = merge_sup(&merge_sup(&block.sup, &er_rise.sup), &er_fall.sup);
        for bi in self.branches_touching(&relevant) {
            let t = self.branches[bi].trans.index();
            let m = self.space.manager_mut();
            let srcs = self.srcs[bi];
            if srcs.is_false() {
                continue;
            }
            let tgt_in_block = Self::at_target(m, &self.branches[bi], block.set);
            let src_in = m.and(srcs, block.set);
            let src_out = m.and_not(srcs, block.set);
            if !{
                let x = m.and(src_out, tgt_in_block);
                x.is_false()
            } {
                arcs[t].consume_a1 = true;
            }
            if !{
                let not_in = m.not(tgt_in_block);
                let x = m.and(src_in, not_in);
                x.is_false()
            } {
                arcs[t].consume_a0 = true;
            }
            let tgt_er_rise = Self::at_target(m, &self.branches[bi], er_rise.set);
            let src_not_erp = m.and_not(srcs, er_rise.set);
            if !{
                let x = m.and(src_not_erp, tgt_er_rise);
                x.is_false()
            } {
                arcs[t].produce_r1 = true;
            }
            let tgt_er_fall = Self::at_target(m, &self.branches[bi], er_fall.set);
            let src_not_erm = m.and_not(srcs, er_fall.set);
            if !{
                let x = m.and(src_not_erm, tgt_er_fall);
                x.is_false()
            } {
                arcs[t].produce_r0 = true;
            }
            // Direct jumps between the two excitation regions: the new
            // signal would have to fall right after rising (or vice versa).
            let src_erp = m.and(srcs, er_rise.set);
            let src_erm = m.and(srcs, er_fall.set);
            let jump = {
                let a = m.and(src_erp, tgt_er_fall);
                let b = m.and(src_erm, tgt_er_rise);
                !a.is_false() || !b.is_false()
            };
            if jump {
                short_circuits += 1;
            }
        }
        // The new edges need at least one trigger each, or they could fire
        // unboundedly (empty preset) — reject such degenerate plans.
        if !arcs.iter().any(|a| a.produce_r1) || !arcs.iter().any(|a| a.produce_r0) {
            if debug {
                eprintln!("  reject: an inserted edge would have no trigger");
            }
            return None;
        }
        // Input edges may trigger the new signal but never wait for it.
        for (t, arc) in arcs.iter().enumerate() {
            if !(arc.consume_a1 || arc.consume_a0) {
                continue;
            }
            if let TransitionLabel::Edge { signal, .. } = self.labels[t] {
                if self.input_signal[signal.index()] {
                    if debug {
                        eprintln!("  reject: delays input transition {t}");
                    }
                    return None;
                }
            }
        }
        let triggers = arcs.iter().filter(|a| a.produce_r1).count()
            + arcs.iter().filter(|a| a.produce_r0).count();

        // Remaining conflict pairs if this block is inserted.  The new
        // signal is 0 in every occurrence of `S0`, the pre-rise phase of
        // `ER(x+)` and the post-fall phase of `ER(x-)`, and 1 in the
        // post-rise phase of `ER(x+)`, `S1` and the pre-fall phase of
        // `ER(x-)` — so existing-signal conflicts survive exactly within
        // those two occurrence sets, and the new signal itself conflicts
        // where its excitation-region codes alias stable-region codes
        // (the Fig. 3 secondary conflicts, predicted instead of discovered).
        let (z0, z1, s0_erm, s1_erp) = {
            let m = self.space.manager_mut();
            let s0_erp = m.or(s0, er_rise.set);
            let z0 = m.or(s0_erp, er_fall.set);
            let erp_s1 = m.or(er_rise.set, s1);
            let z1 = m.or(erp_s1, er_fall.set);
            (z0, z1, m.or(s0, er_fall.set), m.or(s1, er_rise.set))
        };
        let mut unresolved = 0.0;
        for i in 0..self.non_inputs.len() {
            let (_, en) = self.non_inputs[i];
            unresolved += self.conflict_pair_count(z0, en);
            unresolved += self.conflict_pair_count(z1, en);
        }
        unresolved += self.cross_pair_count(er_rise.set, s0_erm);
        unresolved += self.cross_pair_count(er_fall.set, s1_erp);
        let border = {
            let m = self.space.manager_mut();
            let cores = m.or(core.with, core.without);
            let ers = m.or(er_rise.set, er_fall.set);
            let touched = m.and(cores, ers);
            m.sat_count_f64(touched)
        };
        let imbalance = {
            let m = self.space.manager_mut();
            let bucket_in = {
                let x = m.and(core.bucket, block.set);
                m.sat_count_f64(x)
            };
            let bucket_total = m.sat_count_f64(core.bucket);
            (2.0 * bucket_in - bucket_total).abs()
        };
        let initial_rise_instance = {
            let m = self.space.manager_mut();
            !m.and(self.initial, er_rise.set).is_false()
        };
        Some((
            DetailCost { unresolved, border, short_circuits, triggers, imbalance },
            InsertionPlan {
                arcs,
                join_rise: true,
                join_fall: true,
                initial_rise_instance,
                er_rise: er_rise.set,
                er_fall: er_fall.set,
            },
        ))
    }

    /// Computes the join-mode leg premarks of `plan`: a trigger whose
    /// region is reachable from the initial state without firing it has
    /// conceptually already fired ("behind" the initial marking in the
    /// cycle), so its leg must start with a token or the first excursion
    /// would deadlock.  Runs one restricted reachability per trigger
    /// (memoised across plans), which is why it is deferred until a plan is
    /// actually about to be verified.
    fn finalize_premarks(&mut self, plan: &mut InsertionPlan) {
        for t in 0..self.num_transitions {
            if !(plan.arcs[t].produce_r1 || plan.arcs[t].produce_r0) {
                continue;
            }
            let without = match self.without_cache.get(&t) {
                Some(&w) => w,
                None => {
                    let w = self.reachable_without(TransId::from(t));
                    self.without_cache.insert(t, w);
                    w
                }
            };
            let m = self.space.manager_mut();
            if plan.arcs[t].produce_r1 {
                plan.arcs[t].premark_r1 = !m.and(without, plan.er_rise).is_false();
            }
            if plan.arcs[t].produce_r0 {
                plan.arcs[t].premark_r0 = !m.and(without, plan.er_fall).is_false();
            }
        }
    }
}

/// The result of [`insert_signal`]: the grown STG and the place indices
/// the insertion added (the phase and leg places of the new signal).
struct InsertedStg {
    stg: Stg,
    new_places: std::ops::Range<usize>,
}

/// Rewrites the net for one new internal signal according to `plan`: every
/// trigger transition gets a private *leg* place feeding `name+` (rise
/// triggers) or `name-` (fall triggers) — several triggers form a join on
/// the new edge — the edges acknowledge into two shared places, and the
/// block-crossing transitions consume the acknowledgements, i.e. wait for
/// the edge before crossing.
///
/// The new places are spliced into the place order right before the
/// touched component's lowest preset place rather than appended: the
/// symbolic engine anchors its interleaved variable order on place
/// indices, and the phase places correlate tightly with the local
/// component's state — parking them at the end of the order makes the next
/// reachability analysis blow up on wide nets.
fn insert_signal(stg: &Stg, name: &str, plan: &InsertionPlan) -> Result<InsertedStg, CscError> {
    let net = stg.net();
    let mut b = PetriNetBuilder::new();
    let anchor = plan
        .arcs
        .iter()
        .enumerate()
        .filter(|(_, a)| a.produce_r1 || a.produce_r0 || a.consume_a1 || a.consume_a0)
        .flat_map(|(t, _)| net.preset(TransId::from(t)).iter().map(|p| p.index()))
        .min()
        .unwrap_or(net.num_places());
    // Old places below the anchor keep their indices; the new places go
    // next; the remaining old places follow, shifted up.
    let mut old_place = Vec::with_capacity(net.num_places());
    for p in 0..anchor {
        let place = petri::PlaceId::from(p);
        let tokens = u32::from(net.initial_marking().is_marked(place));
        old_place.push(b.add_place(net.place_name(place), tokens));
    }
    let new_start = anchor;
    let a1 = b.add_place(format!("{name}_a1"), 0);
    let a0 = b.add_place(format!("{name}_a0"), 0);
    // One request leg per trigger transition.  In join mode a leg whose
    // trigger fires "behind" the initial marking starts with its token
    // already delivered; in split mode each leg feeds its own edge
    // instance, and an initial marking inside `ER(x+)` gets a dedicated
    // pre-marked startup leg instead.
    let mut rise_legs = Vec::new();
    let mut fall_legs = Vec::new();
    for (t, arcs) in plan.arcs.iter().enumerate() {
        if arcs.produce_r1 {
            let leg = b.add_place(
                format!("{name}_r1_{}", net.transition_name(TransId::from(t))),
                u32::from(plan.join_rise && arcs.premark_r1),
            );
            rise_legs.push((t, leg));
        }
        if arcs.produce_r0 {
            let leg = b.add_place(
                format!("{name}_r0_{}", net.transition_name(TransId::from(t))),
                u32::from(plan.join_fall && arcs.premark_r0),
            );
            fall_legs.push((t, leg));
        }
    }
    let startup_leg = (!plan.join_rise && plan.initial_rise_instance)
        .then(|| b.add_place(format!("{name}_r1_init"), 1));
    let new_end = b.num_places();
    for p in anchor..net.num_places() {
        let place = petri::PlaceId::from(p);
        let tokens = u32::from(net.initial_marking().is_marked(place));
        old_place.push(b.add_place(net.place_name(place), tokens));
    }

    let mut labels = Vec::with_capacity(net.num_transitions() + 2);
    for t in 0..net.num_transitions() {
        let t_id = TransId::from(t);
        let new_t = b.add_transition(net.transition_name(t_id));
        for &p in net.preset(t_id) {
            b.add_arc_place_to_transition(old_place[p.index()], new_t);
        }
        for &p in net.postset(t_id) {
            b.add_arc_transition_to_place(new_t, old_place[p.index()]);
        }
        let arcs = plan.arcs[t];
        if arcs.consume_a1 {
            b.add_arc_place_to_transition(a1, new_t);
        }
        if arcs.consume_a0 {
            b.add_arc_place_to_transition(a0, new_t);
        }
        if let Some(&(_, leg)) = rise_legs.iter().find(|&&(lt, _)| lt == t) {
            b.add_arc_transition_to_place(new_t, leg);
        }
        if let Some(&(_, leg)) = fall_legs.iter().find(|&&(lt, _)| lt == t) {
            b.add_arc_transition_to_place(new_t, leg);
        }
        labels.push(stg.label(t_id));
    }
    let new_signal = SignalId::from(stg.num_signals());
    let add_edge_instances = |b: &mut PetriNetBuilder,
                              labels: &mut Vec<TransitionLabel>,
                              legs: &[petri::PlaceId],
                              join: bool,
                              suffix: char,
                              ack: petri::PlaceId| {
        let polarity = if suffix == '+' { stg::Polarity::Rise } else { stg::Polarity::Fall };
        if join {
            let edge = b.add_transition(format!("{name}{suffix}"));
            for &leg in legs {
                b.add_arc_place_to_transition(leg, edge);
            }
            b.add_arc_transition_to_place(edge, ack);
            labels.push(TransitionLabel::Edge { signal: new_signal, polarity });
        } else {
            for (i, &leg) in legs.iter().enumerate() {
                let trans_name = if i == 0 {
                    format!("{name}{suffix}")
                } else {
                    format!("{name}{suffix}/{}", i + 1)
                };
                let edge = b.add_transition(trans_name);
                b.add_arc_place_to_transition(leg, edge);
                b.add_arc_transition_to_place(edge, ack);
                labels.push(TransitionLabel::Edge { signal: new_signal, polarity });
            }
        }
    };
    let mut all_rise_legs: Vec<petri::PlaceId> = rise_legs.iter().map(|&(_, leg)| leg).collect();
    if let Some(leg) = startup_leg {
        all_rise_legs.push(leg);
    }
    add_edge_instances(&mut b, &mut labels, &all_rise_legs, plan.join_rise, '+', a1);
    let all_fall_legs: Vec<petri::PlaceId> = fall_legs.iter().map(|&(_, leg)| leg).collect();
    add_edge_instances(&mut b, &mut labels, &all_fall_legs, plan.join_fall, '-', a0);

    let mut signals = stg.signals().to_vec();
    signals.push(Signal { name: name.to_owned(), kind: SignalKind::Internal });
    let net = b.build().map_err(|e| CscError::Stg(stg::StgError::Net(e)))?;
    let stg = Stg::from_labelled_net(net, signals, labels, stg.name().to_owned())
        .map_err(CscError::Stg)?;
    Ok(InsertedStg { stg, new_places: new_start..new_end })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stg::benchmarks;

    #[test]
    fn conflict_free_models_need_no_insertion() {
        let solution =
            solve_stg_symbolic(&benchmarks::handshake(), &SolverConfig::default()).unwrap();
        assert!(solution.inserted_signals.is_empty());
        assert_eq!(solution.stats.iterations, 0);
        assert_eq!(solution.stats.initial_states, solution.stats.final_states);
        assert!(!benchmarks::handshake().symbolic_csc_violation(0));
    }

    #[test]
    fn pulser_is_solved_with_one_signal() {
        let solution = solve_stg_symbolic(&benchmarks::pulser(), &SolverConfig::default()).unwrap();
        assert_eq!(solution.inserted_signals, ["csc0"], "{:?}", solution.cores);
        assert!(!solution.stg.symbolic_csc_violation(0), "CSC must hold on the encoded STG");
        assert_eq!(solution.cores.len(), 1);
        assert_eq!(solution.cores[0].signal, "y");
        // The encoded STG is small enough for the explicit engine: the
        // ground-truth graph-level CSC check must agree.
        let sg = solution.stg.state_graph(100_000).unwrap();
        assert!(sg.complete_state_coding_holds());
        assert!(sg.is_consistent());
    }

    #[test]
    fn vme_read_is_solved_within_the_explicit_budget() {
        let solution =
            solve_stg_symbolic(&benchmarks::vme_read(), &SolverConfig::default()).unwrap();
        assert!(
            (1..=1).contains(&solution.inserted_signals.len()),
            "explicit solves vme_read with 1 signal, symbolic got {:?}",
            solution.inserted_signals
        );
        let sg = solution.stg.state_graph(100_000).unwrap();
        assert!(sg.complete_state_coding_holds());
    }

    #[test]
    fn signal_budget_is_respected() {
        let config = SolverConfig { max_signals: 0, ..SolverConfig::default() };
        let err = solve_stg_symbolic(&benchmarks::pulser(), &config).unwrap_err();
        assert!(matches!(err, CscError::SignalLimitReached { limit: 0, .. }), "{err}");
    }

    #[test]
    fn wrong_seed_is_rejected() {
        // The re-synthesized pulser starts with non-zero signal values; an
        // all-zero seed truncates the space and must surface as a typed
        // error, not as a bogus solution.
        let explicit = crate::solve_stg(&benchmarks::pulser(), &SolverConfig::default()).unwrap();
        let encoded = explicit.stg.expect("pulser re-synthesizes");
        let err = solve_stg_symbolic(&encoded, &SolverConfig::default()).unwrap_err();
        assert!(matches!(err, CscError::SeedMismatch { .. }), "{err}");
    }

    #[test]
    fn observable_traces_are_preserved() {
        for model in [benchmarks::pulser(), benchmarks::vme_read()] {
            let solution = solve_stg_symbolic(&model, &SolverConfig::default()).unwrap();
            let original = model.state_graph(100_000).unwrap();
            let encoded = solution.stg.state_graph(100_000).unwrap();
            let hidden: Vec<String> = solution
                .inserted_signals
                .iter()
                .flat_map(|n| [format!("{n}+"), format!("{n}-")])
                .collect();
            let hidden_refs: Vec<&str> = hidden.iter().map(String::as_str).collect();
            assert!(
                ts::traces::projected_trace_equivalent(&original.ts, &encoded.ts, &hidden_refs),
                "{}: hiding {hidden:?} must restore the original behaviour",
                model.name()
            );
        }
    }

    #[test]
    fn inserted_signals_are_internal_and_consistent() {
        let solution =
            solve_stg_symbolic(&benchmarks::sequencer(3), &SolverConfig::default()).unwrap();
        for name in &solution.inserted_signals {
            let id = solution.stg.signal_id(name).expect("inserted signal in table");
            assert_eq!(solution.stg.signal(id).kind, SignalKind::Internal);
        }
        let sg = solution.stg.state_graph(100_000).unwrap();
        assert!(sg.is_consistent());
        assert!(sg.complete_state_coding_holds());
    }
}
