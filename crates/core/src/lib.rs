//! Region-based Complete State Coding (CSC) resolution.
//!
//! This crate implements the primary contribution of
//! *"Methodology and Tools for State Encoding in Asynchronous Circuit
//! Synthesis"* (Cortadella, Kishinevsky, Kondratyev, Lavagno, Yakovlev —
//! DAC 1996): an algorithm that inserts internal *state signals* into the
//! state graph of a Signal Transition Graph until every pair of states with
//! the same binary code enables the same non-input signals, while
//! preserving the observable behaviour and the speed-independence of the
//! specification.
//!
//! The flow follows the paper:
//!
//! 1. detect CSC conflict pairs on the binary-coded state graph
//!    ([`conflicts`]),
//! 2. build candidate insertion *blocks* as unions of *bricks* (minimal
//!    regions and same-event pre-/post-region intersections) using the
//!    frontier heuristic search of Fig. 4 ([`search`]),
//! 3. derive an *I-partition* from the chosen block: the minimal well-formed
//!    exit borders of the block and of its complement become the excitation
//!    regions of the new signal's rising and falling transitions
//!    ([`partition`]),
//! 4. validate that the insertion preserves speed independence and does not
//!    delay input signals, then insert the new signal ([`insert`]),
//! 5. iterate until CSC holds ([`solver`]), optionally increasing the
//!    concurrency of the inserted signal and re-synthesizing a Petri net so
//!    the designer gets an STG back rather than a flat state graph.
//!
//! The iteration is organised as a staged pipeline owned by a
//! [`SolverContext`] ([`context`]) that lives across insertion iterations:
//! it holds the [`ConflictScratch`] (code buckets + mask buffer, doubling
//! as the code → states index), maintains the conflict list *incrementally*
//! after each insertion — only states descending from shared or split codes
//! are re-bucketed, never the whole graph; see
//! [`conflicts::refresh_conflicts_after_insertion`] for the invariant — and
//! evaluates candidate blocks on [`SolverConfig::jobs`] threads with a
//! deterministic reduction, so the solution is byte-identical for every
//! thread count.  Per-stage wall-clock times and candidate counters are
//! reported in [`SolveStats::stage`].
//!
//! An excitation-region-only baseline in the style of ASSASSIN
//! ([`SolverConfig::candidate_source`]) is provided for the Table 2
//! comparison.
//!
//! # Example
//!
//! ```
//! use csc::{solve_stg, SolverConfig};
//! use stg::benchmarks;
//!
//! let vme = benchmarks::vme_read();
//! let solution = solve_stg(&vme, &SolverConfig::default())?;
//! assert!(solution.graph.complete_state_coding_holds());
//! assert!(!solution.inserted_signals.is_empty());
//! # Ok::<(), csc::CscError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conflicts;
pub mod context;
mod error;
mod graph;
pub mod insert;
pub mod partition;
pub mod search;
pub mod solver;
pub mod symbolic;

pub use conflicts::{
    conflict_pairs, conflict_pairs_with, refresh_conflicts_after_insertion, ConflictScratch,
    CscConflict,
};
pub use context::SolverContext;
pub use error::CscError;
pub use graph::EncodedGraph;
pub use insert::{insert_state_signal, insert_state_signal_traced, InsertedSignal};
pub use partition::IPartition;
pub use search::{find_best_block, find_best_block_with, CandidateSource, Cost, SearchStats};
pub use solver::{
    solve_state_graph, solve_stg, verify_solution, CscSolution, SolveStats, SolverConfig,
    StageStats, VerifyDiagnostic,
};
pub use symbolic::{
    solve_stg_symbolic, solve_stg_symbolic_budgeted, solve_stg_symbolic_seeded,
    solve_stg_symbolic_with, ConflictCore, SolverStrategy, SymbolicSolution,
};
