//! The encoded graph the solver iterates on.
//!
//! After a state signal has been inserted the state graph no longer
//! corresponds to any existing Petri net, so the solver works on a
//! self-contained structure: a transition system whose events are labelled
//! with signal edges, plus a binary code per state.  Codes are recomputed
//! from the labels by the same constraint-propagation pass that the `stg`
//! crate uses, which doubles as a consistency check of every insertion.

use crate::CscError;
use stg::{Polarity, Signal, SignalId, SignalKind, StateGraph, TransitionLabel};
use ts::{EventId, StateId, TransitionSystem};

/// A binary-encoded transition system: the object the CSC solver transforms.
#[derive(Clone, Debug)]
pub struct EncodedGraph {
    /// The transition system.
    pub ts: TransitionSystem,
    /// The binary code of every state (bit `i` = value of signal `i`).
    pub codes: Vec<u64>,
    /// All signals, indexed by bit position.
    pub signals: Vec<Signal>,
    /// The signal edge carried by every event (`None` for dummies).
    pub event_edges: Vec<Option<(SignalId, Polarity)>>,
}

impl EncodedGraph {
    /// Builds an encoded graph from an STG state graph.
    pub fn from_state_graph(sg: &StateGraph) -> Self {
        let event_edges = (0..sg.ts.num_events())
            .map(|e| match sg.event_label(EventId::from(e)) {
                TransitionLabel::Edge { signal, polarity } => Some((signal, polarity)),
                TransitionLabel::Dummy => None,
            })
            .collect();
        EncodedGraph {
            ts: sg.ts.clone(),
            codes: (0..sg.num_states()).map(|s| sg.code(StateId::from(s))).collect(),
            signals: sg.signals().to_vec(),
            event_edges,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.ts.num_states()
    }

    /// Number of signals.
    pub fn num_signals(&self) -> usize {
        self.signals.len()
    }

    /// The code of `state`.
    pub fn code(&self, state: StateId) -> u64 {
        self.codes[state.index()]
    }

    /// Bit mask of the non-input signals with an enabled edge in `state`.
    pub fn enabled_non_input_mask(&self, state: StateId) -> u64 {
        let mut mask = 0u64;
        for &(event, _) in self.ts.successors(state) {
            if let Some((signal, _)) = self.event_edges[event.index()] {
                if self.signals[signal.index()].kind.is_non_input() {
                    mask |= 1 << signal.index();
                }
            }
        }
        mask
    }

    /// Returns `true` if `event` is labelled with an edge of an input signal.
    pub fn is_input_event(&self, event: EventId) -> bool {
        match self.event_edges[event.index()] {
            Some((signal, _)) => self.signals[signal.index()].kind == SignalKind::Input,
            None => false,
        }
    }

    /// Returns `true` if Complete State Coding holds.
    ///
    /// Allocates a fresh scratch; the solver pipeline never calls this in
    /// its loop (it maintains the conflict list incrementally), so the
    /// convenience form is fine for assertions and reports.
    pub fn complete_state_coding_holds(&self) -> bool {
        !crate::conflicts::has_conflict(self, &mut crate::conflicts::ConflictScratch::new())
    }

    /// Returns `true` if Unique State Coding holds (no two states share a
    /// code at all).
    pub fn unique_state_coding_holds(&self) -> bool {
        // FxHash, not SipHash: codes are program-generated integers.
        let mut seen = bdd::FxHashSet::default();
        self.codes.iter().all(|c| seen.insert(*c))
    }

    /// Recomputes every state code from the event labels by constraint
    /// propagation, validating consistency.
    ///
    /// # Errors
    ///
    /// Returns [`CscError::InconsistentInsertion`] naming `context` if the
    /// labelling admits no consistent code assignment.
    pub fn recompute_codes(&mut self, context: &str) -> Result<(), CscError> {
        let num_states = self.ts.num_states();
        let num_signals = self.signals.len();
        let mut known = vec![0u64; num_states];
        let mut value = vec![0u64; num_states];

        let set_bit = |state: StateId,
                       signal: usize,
                       bit: bool,
                       known: &mut Vec<u64>,
                       value: &mut Vec<u64>|
         -> Result<bool, CscError> {
            let mask = 1u64 << signal;
            let s = state.index();
            if known[s] & mask != 0 {
                if (value[s] & mask != 0) != bit {
                    return Err(CscError::InconsistentInsertion { signal: context.to_owned() });
                }
                return Ok(false);
            }
            known[s] |= mask;
            if bit {
                value[s] |= mask;
            }
            Ok(true)
        };

        loop {
            loop {
                let mut changed = false;
                for t in self.ts.transitions() {
                    let edge = self.event_edges[t.event.index()];
                    for sig in 0..num_signals {
                        let mask = 1u64 << sig;
                        match edge {
                            Some((signal, polarity)) if signal.index() == sig => match polarity {
                                Polarity::Rise => {
                                    changed |=
                                        set_bit(t.source, sig, false, &mut known, &mut value)?;
                                    changed |=
                                        set_bit(t.target, sig, true, &mut known, &mut value)?;
                                }
                                Polarity::Fall => {
                                    changed |=
                                        set_bit(t.source, sig, true, &mut known, &mut value)?;
                                    changed |=
                                        set_bit(t.target, sig, false, &mut known, &mut value)?;
                                }
                                Polarity::Toggle => {
                                    if known[t.source.index()] & mask != 0 {
                                        let v = value[t.source.index()] & mask != 0;
                                        changed |=
                                            set_bit(t.target, sig, !v, &mut known, &mut value)?;
                                    }
                                    if known[t.target.index()] & mask != 0 {
                                        let v = value[t.target.index()] & mask != 0;
                                        changed |=
                                            set_bit(t.source, sig, !v, &mut known, &mut value)?;
                                    }
                                }
                            },
                            _ => {
                                if known[t.source.index()] & mask != 0 {
                                    let v = value[t.source.index()] & mask != 0;
                                    changed |= set_bit(t.target, sig, v, &mut known, &mut value)?;
                                }
                                if known[t.target.index()] & mask != 0 {
                                    let v = value[t.target.index()] & mask != 0;
                                    changed |= set_bit(t.source, sig, v, &mut known, &mut value)?;
                                }
                            }
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            let initial = self.ts.initial();
            let mut anchored = false;
            for sig in 0..num_signals {
                if known[initial.index()] & (1u64 << sig) == 0 {
                    set_bit(initial, sig, false, &mut known, &mut value)?;
                    anchored = true;
                }
            }
            if !anchored {
                break;
            }
        }

        self.codes = value;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stg::benchmarks;

    #[test]
    fn from_state_graph_preserves_codes_and_properties() {
        let sg = benchmarks::pulser().state_graph(1_000).unwrap();
        let graph = EncodedGraph::from_state_graph(&sg);
        assert_eq!(graph.num_states(), sg.num_states());
        assert_eq!(graph.num_signals(), 2);
        for s in 0..graph.num_states() {
            let s = StateId::from(s);
            assert_eq!(graph.code(s), sg.code(s));
            assert_eq!(graph.enabled_non_input_mask(s), sg.enabled_non_input_mask(s));
        }
        assert!(!graph.complete_state_coding_holds());
        assert!(!graph.unique_state_coding_holds());
    }

    #[test]
    fn recompute_codes_is_stable() {
        let sg = benchmarks::vme_read().state_graph(10_000).unwrap();
        let mut graph = EncodedGraph::from_state_graph(&sg);
        let before = graph.codes.clone();
        graph.recompute_codes("vme").unwrap();
        assert_eq!(before, graph.codes, "recomputation must reproduce the original codes");
    }

    #[test]
    fn input_event_classification() {
        let sg = benchmarks::handshake().state_graph(100).unwrap();
        let graph = EncodedGraph::from_state_graph(&sg);
        let req_plus = graph.ts.event_id("req+").unwrap();
        let ack_plus = graph.ts.event_id("ack+").unwrap();
        assert!(graph.is_input_event(req_plus));
        assert!(!graph.is_input_event(ack_plus));
    }
}
