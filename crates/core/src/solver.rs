//! The iterative CSC solver (§5 of the paper).
//!
//! One state signal is inserted per iteration: detect the remaining CSC
//! conflicts, search for the best insertion block over the brick set,
//! derive the I-partition, optionally enlarge the concurrency of the new
//! signal, insert it, and repeat until Complete State Coding holds.  At the
//! end the solver optionally re-synthesizes a Petri net from the encoded
//! state graph so the result can be handed back to the designer as an STG —
//! the feature the paper singles out as distinguishing `petrify` from
//! earlier tools.

use crate::conflicts::{conflict_pairs_with, ConflictScratch, CscConflict};
use crate::graph::EncodedGraph;
use crate::insert::insert_state_signal;
use crate::search::{
    enlarge_concurrency, excitation_region_bricks, find_best_block, CandidateSource,
};
use crate::CscError;
use regions::{bricks, synthesize_net, RegionConfig};
use std::time::{Duration, Instant};
use stg::{Polarity, SignalKind, StateGraph, Stg, TransitionLabel};
use ts::InsertionStyle;

/// Configuration of the CSC solver.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Frontier width `FW` of the heuristic search (quality/time trade-off).
    pub frontier_width: usize,
    /// Maximum number of state signals to insert before giving up.
    pub max_signals: usize,
    /// Maximum number of explicit states to explore when the input is an
    /// STG.
    pub max_states: usize,
    /// Which candidate bricks the search may use (region bricks for the
    /// paper's method, excitation regions only for the ASSASSIN-style
    /// baseline).
    pub candidate_source: CandidateSource,
    /// The event-insertion scheme.
    pub insertion_style: InsertionStyle,
    /// Whether to greedily enlarge the concurrency of every inserted signal
    /// (step 4 of the algorithm).
    pub enlarge_concurrency: bool,
    /// Region-generation limits.
    pub region_config: RegionConfig,
    /// Whether to attempt Petri-net re-synthesis of the final state graph.
    pub resynthesize: bool,
    /// Name prefix of inserted signals (`csc` gives `csc0`, `csc1`, …).
    pub signal_prefix: String,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            frontier_width: 4,
            max_signals: 24,
            max_states: 1_000_000,
            candidate_source: CandidateSource::RegionBricks,
            insertion_style: InsertionStyle::Concurrent,
            enlarge_concurrency: false,
            region_config: RegionConfig::default(),
            resynthesize: true,
            signal_prefix: "csc".to_owned(),
        }
    }
}

impl SolverConfig {
    /// The ASSASSIN-style baseline configuration: the same machinery but
    /// restricted to excitation-/switching-region candidates.
    pub fn excitation_region_baseline() -> Self {
        SolverConfig { candidate_source: CandidateSource::ExcitationRegions, ..Self::default() }
    }
}

/// Statistics of a solver run.
#[derive(Clone, Debug, Default)]
pub struct SolveStats {
    /// States of the initial state graph.
    pub initial_states: usize,
    /// States of the final (encoded) state graph.
    pub final_states: usize,
    /// CSC conflict pairs before any insertion.
    pub initial_conflicts: usize,
    /// Number of solver iterations (= inserted signals).
    pub iterations: usize,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

/// The result of a successful CSC resolution.
#[derive(Clone, Debug)]
pub struct CscSolution {
    /// The final encoded state graph (CSC holds on it).
    pub graph: EncodedGraph,
    /// Names of the inserted state signals, in insertion order.
    pub inserted_signals: Vec<String>,
    /// Run statistics.
    pub stats: SolveStats,
    /// The re-synthesized STG, when requested and when the final state graph
    /// is excitation closed (otherwise `None`; the encoded state graph is
    /// always available).
    pub stg: Option<Stg>,
}

/// Solves CSC for an STG: builds its state graph and runs
/// [`solve_state_graph`].
///
/// # Errors
///
/// Propagates state-graph construction failures and every error of
/// [`solve_state_graph`].
pub fn solve_stg(model: &Stg, config: &SolverConfig) -> Result<CscSolution, CscError> {
    let sg = model.state_graph(config.max_states)?;
    solve_state_graph(&sg, config)
}

/// Solves CSC on a binary-coded state graph by iterative state-signal
/// insertion.
///
/// # Errors
///
/// * [`CscError::NoCandidate`] if no valid insertion block can be found for
///   the remaining conflicts,
/// * [`CscError::SignalLimitReached`] if the configured signal budget is
///   exhausted,
/// * [`CscError::InconsistentInsertion`] if a selected insertion produces an
///   inconsistent encoding (indicates an internal invariant violation).
pub fn solve_state_graph(sg: &StateGraph, config: &SolverConfig) -> Result<CscSolution, CscError> {
    let start = Instant::now();
    let mut graph = EncodedGraph::from_state_graph(sg);
    // One scratch table and one conflict vector serve every iteration: the
    // code-bucketing pass clears them but keeps their allocations.
    let mut scratch = ConflictScratch::new();
    let mut conflicts: Vec<CscConflict> = Vec::new();
    conflict_pairs_with(&graph, &mut scratch, &mut conflicts);
    let mut stats = SolveStats {
        initial_states: graph.num_states(),
        initial_conflicts: conflicts.len(),
        ..SolveStats::default()
    };
    let mut inserted: Vec<String> = Vec::new();

    while !conflicts.is_empty() {
        if inserted.len() >= config.max_signals {
            return Err(CscError::SignalLimitReached {
                limit: config.max_signals,
                remaining_conflicts: conflicts.len(),
            });
        }

        let brick_set = match config.candidate_source {
            CandidateSource::RegionBricks => {
                // Region bricks (minimal regions and pre-/post-region
                // intersections, Property 3.1 P1/P3) plus the excitation- and
                // switching-region bricks (P2).
                let mut set = bricks(&graph.ts, &config.region_config);
                set.extend(excitation_region_bricks(&graph));
                set
            }
            CandidateSource::ExcitationRegions => excitation_region_bricks(&graph),
        };
        let best = find_best_block(&graph, &conflicts, &brick_set, config.frontier_width)
            .ok_or(CscError::NoCandidate { remaining_conflicts: conflicts.len() })?;
        let mut partition = best.partition.expect("winning candidates carry a partition");
        if config.enlarge_concurrency {
            partition = enlarge_concurrency(&graph, &conflicts, &partition, &brick_set);
        }

        let name = format!("{}{}", config.signal_prefix, inserted.len());
        graph = insert_state_signal(&graph, &name, &partition, config.insertion_style)?;
        inserted.push(name);
        stats.iterations += 1;
        conflict_pairs_with(&graph, &mut scratch, &mut conflicts);
    }

    stats.final_states = graph.num_states();
    stats.elapsed = start.elapsed();

    let stg =
        if config.resynthesize { resynthesize(&graph, sg, &config.region_config) } else { None };

    Ok(CscSolution { graph, inserted_signals: inserted, stats, stg })
}

/// Attempts to re-synthesize an STG (Petri net plus signal labels) from the
/// final encoded state graph.  Returns `None` when the state graph is not
/// excitation closed (label splitting would be required).
fn resynthesize(
    graph: &EncodedGraph,
    original: &StateGraph,
    region_config: &RegionConfig,
) -> Option<Stg> {
    let synthesized = synthesize_net(&graph.ts, region_config).ok()?;
    // Rebuild the label table: net transitions are named after the events of
    // the encoded graph ("lds+", "csc0-", …).
    let mut labels = Vec::with_capacity(synthesized.net.num_transitions());
    for t in 0..synthesized.net.num_transitions() {
        let name = synthesized.net.transition_name(petri::TransId::from(t)).to_owned();
        let event = graph.ts.event_id(&name)?;
        let label = match graph.event_edges[event.index()] {
            Some((signal, polarity)) => TransitionLabel::Edge { signal, polarity },
            None => TransitionLabel::Dummy,
        };
        labels.push(label);
    }
    let mut name = String::from("csc_");
    name.push_str(original.signals().first().map(|s| s.name.as_str()).unwrap_or("model"));
    Stg::from_labelled_net(synthesized.net, graph.signals.clone(), labels, name).ok()
}

/// Verifies a solution against its source state graph: CSC must hold, the
/// observable traces must be unchanged (hiding the inserted signals), and
/// the inserted signals must all be internal.
///
/// Returns a list of human-readable problems (empty = verified).
pub fn verify_solution(original: &StateGraph, solution: &CscSolution) -> Vec<String> {
    let mut problems = Vec::new();
    if !solution.graph.complete_state_coding_holds() {
        problems.push("final state graph still has CSC conflicts".to_owned());
    }
    for name in &solution.inserted_signals {
        match solution.graph.signals.iter().find(|s| &s.name == name) {
            Some(sig) if sig.kind == SignalKind::Internal => {}
            Some(_) => problems.push(format!("inserted signal {name} is not internal")),
            None => problems.push(format!("inserted signal {name} missing from the signal table")),
        }
    }
    let hidden: Vec<String> = solution
        .inserted_signals
        .iter()
        .flat_map(|n| {
            [format!("{n}{}", Polarity::Rise.suffix()), format!("{n}{}", Polarity::Fall.suffix())]
        })
        .collect();
    let hidden_refs: Vec<&str> = hidden.iter().map(String::as_str).collect();
    if !ts::traces::projected_trace_equivalent(&original.ts, &solution.graph.ts, &hidden_refs) {
        problems.push("observable traces changed".to_owned());
    }
    if !solution.graph.ts.is_deterministic() {
        problems.push("final state graph is non-deterministic".to_owned());
    }
    if !solution.graph.ts.is_commutative() {
        problems.push("final state graph is non-commutative".to_owned());
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use stg::benchmarks;

    #[test]
    fn solved_benchmarks_satisfy_csc_and_preserve_traces() {
        let config = SolverConfig::default();
        for model in [benchmarks::pulser(), benchmarks::vme_read(), benchmarks::sequencer(3)] {
            let sg = model.state_graph(100_000).unwrap();
            let solution = solve_state_graph(&sg, &config)
                .unwrap_or_else(|e| panic!("{} failed: {e}", model.name()));
            assert!(solution.graph.complete_state_coding_holds(), "{}", model.name());
            assert!(!solution.inserted_signals.is_empty(), "{}", model.name());
            let problems = verify_solution(&sg, &solution);
            assert!(problems.is_empty(), "{}: {problems:?}", model.name());
        }
    }

    #[test]
    fn conflict_free_models_need_no_insertion() {
        let config = SolverConfig::default();
        let solution = solve_stg(&benchmarks::handshake(), &config).unwrap();
        assert!(solution.inserted_signals.is_empty());
        assert_eq!(solution.stats.iterations, 0);
        assert_eq!(solution.stats.initial_states, solution.stats.final_states);
    }

    #[test]
    fn vme_read_needs_a_small_number_of_signals() {
        let solution = solve_stg(&benchmarks::vme_read(), &SolverConfig::default()).unwrap();
        assert!(
            (1..=2).contains(&solution.inserted_signals.len()),
            "petrify solves the VME controller with one signal, got {:?}",
            solution.inserted_signals
        );
    }

    #[test]
    fn baseline_also_solves_easy_cases() {
        let config = SolverConfig::excitation_region_baseline();
        let solution = solve_stg(&benchmarks::pulser(), &config);
        // The baseline may need more signals or fail on some models; on the
        // pulser it must either solve CSC or report a structured error.
        match solution {
            Ok(s) => assert!(s.graph.complete_state_coding_holds()),
            Err(CscError::NoCandidate { .. }) | Err(CscError::SignalLimitReached { .. }) => {}
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn signal_budget_is_respected() {
        let config = SolverConfig { max_signals: 0, ..SolverConfig::default() };
        let err = solve_stg(&benchmarks::pulser(), &config).unwrap_err();
        assert!(matches!(err, CscError::SignalLimitReached { limit: 0, .. }));
    }

    #[test]
    fn resynthesis_produces_an_stg_when_possible() {
        let config = SolverConfig::default();
        let solution = solve_stg(&benchmarks::pulser(), &config).unwrap();
        if let Some(stg) = &solution.stg {
            // The re-synthesized STG must regenerate a state graph that also
            // satisfies CSC and has the same number of signals.
            assert_eq!(stg.num_signals(), solution.graph.signals.len());
            let sg = stg.state_graph(100_000).unwrap();
            assert!(sg.complete_state_coding_holds());
        }
    }

    #[test]
    fn enlargement_option_still_reaches_csc() {
        let config = SolverConfig { enlarge_concurrency: true, ..SolverConfig::default() };
        let solution = solve_stg(&benchmarks::sequencer(3), &config).unwrap();
        assert!(solution.graph.complete_state_coding_holds());
    }
}
