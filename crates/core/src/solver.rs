//! The iterative CSC solver (§5 of the paper): configuration, statistics,
//! result types and verification.
//!
//! One state signal is inserted per iteration: detect the remaining CSC
//! conflicts, search for the best insertion block over the brick set,
//! derive the I-partition, optionally enlarge the concurrency of the new
//! signal, insert it, and repeat until Complete State Coding holds.  At the
//! end the solver optionally re-synthesizes a Petri net from the encoded
//! state graph so the result can be handed back to the designer as an STG —
//! the feature the paper singles out as distinguishing `petrify` from
//! earlier tools.
//!
//! The iteration itself lives in [`crate::SolverContext`] (see
//! [`crate::context`]): a staged pipeline that owns the conflict scratch
//! and candidate arenas across iterations, maintains the conflict list
//! incrementally after each insertion, and evaluates candidate blocks on
//! [`SolverConfig::jobs`] threads.  [`solve_state_graph`] is a thin loop
//! over that context.

use crate::context::SolverContext;
use crate::graph::EncodedGraph;
use crate::search::CandidateSource;
use crate::CscError;
use regions::RegionConfig;
use std::fmt;
use std::time::Duration;
use stg::{Polarity, SignalKind, StateGraph, Stg};
use ts::InsertionStyle;

/// Configuration of the CSC solver.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Frontier width `FW` of the heuristic search (quality/time trade-off).
    pub frontier_width: usize,
    /// Maximum number of state signals to insert before giving up.
    pub max_signals: usize,
    /// Maximum number of explicit states to explore when the input is an
    /// STG.
    pub max_states: usize,
    /// Which candidate bricks the search may use (region bricks for the
    /// paper's method, excitation regions only for the ASSASSIN-style
    /// baseline).
    pub candidate_source: CandidateSource,
    /// The event-insertion scheme.
    pub insertion_style: InsertionStyle,
    /// Whether to greedily enlarge the concurrency of every inserted signal
    /// (step 4 of the algorithm).
    pub enlarge_concurrency: bool,
    /// Region-generation limits.
    pub region_config: RegionConfig,
    /// Whether to attempt Petri-net re-synthesis of the final state graph.
    pub resynthesize: bool,
    /// Name prefix of inserted signals (`csc` gives `csc0`, `csc1`, …).
    pub signal_prefix: String,
    /// Worker threads for candidate-block evaluation: `1` is fully
    /// sequential, `0` uses the machine's available parallelism.  The
    /// selected block — and therefore the whole solution — is identical for
    /// every value (deterministic reduction).
    pub jobs: usize,
    /// Optional resource governor.  The explicit pipeline allocates no BDD
    /// nodes, so only the wall-clock deadline and cooperative cancellation
    /// are honoured (checked between solver stages); node and step
    /// ceilings govern the symbolic engines.
    pub budget: Option<bdd::Budget>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            frontier_width: 4,
            max_signals: 24,
            max_states: 1_000_000,
            candidate_source: CandidateSource::RegionBricks,
            insertion_style: InsertionStyle::Concurrent,
            enlarge_concurrency: false,
            region_config: RegionConfig::default(),
            resynthesize: true,
            signal_prefix: "csc".to_owned(),
            jobs: 1,
            budget: None,
        }
    }
}

impl SolverConfig {
    /// The ASSASSIN-style baseline configuration: the same machinery but
    /// restricted to excitation-/switching-region candidates.
    pub fn excitation_region_baseline() -> Self {
        SolverConfig { candidate_source: CandidateSource::ExcitationRegions, ..Self::default() }
    }

    /// The number of evaluation threads this configuration resolves to
    /// (`jobs == 0` means the machine's available parallelism).
    pub fn effective_jobs(&self) -> usize {
        match self.jobs {
            0 => std::thread::available_parallelism().map(usize::from).unwrap_or(1),
            n => n,
        }
    }
}

/// Per-stage breakdown of a solver run, accumulated across iterations.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct StageStats {
    /// Milliseconds spent detecting/maintaining CSC conflicts (the initial
    /// full pass plus one incremental refresh per insertion).
    pub conflict_ms: f64,
    /// Milliseconds spent building bricks and running the frontier search.
    pub search_ms: f64,
    /// Milliseconds spent deriving/enlarging the I-partition.
    pub partition_ms: f64,
    /// Milliseconds spent inserting state signals (incl. code recomputation).
    pub insert_ms: f64,
    /// Candidate blocks scored by the search across all iterations.
    pub candidates_evaluated: usize,
    /// Candidate blocks skipped before scoring (duplicates, degenerate
    /// full-space unions).
    pub candidates_pruned: usize,
}

impl fmt::Display for StageStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conflict {:.2} ms | search {:.2} ms | partition {:.2} ms | insert {:.2} ms | \
             {} candidates evaluated, {} pruned",
            self.conflict_ms,
            self.search_ms,
            self.partition_ms,
            self.insert_ms,
            self.candidates_evaluated,
            self.candidates_pruned
        )
    }
}

/// Statistics of a solver run.
#[derive(Clone, Debug, Default)]
pub struct SolveStats {
    /// States of the initial state graph.
    pub initial_states: usize,
    /// States of the final (encoded) state graph.
    pub final_states: usize,
    /// CSC conflict pairs before any insertion.
    pub initial_conflicts: usize,
    /// Number of solver iterations (= inserted signals).
    pub iterations: usize,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Per-stage timing and candidate counters.
    pub stage: StageStats,
    /// Evaluation threads the run actually used.
    pub jobs: usize,
}

/// The result of a successful CSC resolution.
#[derive(Clone, Debug)]
pub struct CscSolution {
    /// The final encoded state graph (CSC holds on it).
    pub graph: EncodedGraph,
    /// Names of the inserted state signals, in insertion order.
    pub inserted_signals: Vec<String>,
    /// Run statistics.
    pub stats: SolveStats,
    /// The re-synthesized STG, when requested and when the final state graph
    /// is excitation closed (otherwise `None`; the encoded state graph is
    /// always available).
    pub stg: Option<Stg>,
}

/// Solves CSC for an STG: builds its state graph and runs
/// [`solve_state_graph`].
///
/// ```
/// use csc::{solve_stg, SolverConfig};
///
/// // The paper's pulser needs exactly one state signal.
/// let solution = solve_stg(&stg::benchmarks::pulser(), &SolverConfig::default())?;
/// assert_eq!(solution.inserted_signals, ["csc0"]);
/// assert!(solution.graph.complete_state_coding_holds());
/// # Ok::<(), csc::CscError>(())
/// ```
///
/// # Errors
///
/// Propagates state-graph construction failures and every error of
/// [`solve_state_graph`].
pub fn solve_stg(model: &Stg, config: &SolverConfig) -> Result<CscSolution, CscError> {
    let sg = model.state_graph(config.max_states)?;
    solve_state_graph(&sg, config)
}

/// Solves CSC on a binary-coded state graph by iterative state-signal
/// insertion.
///
/// This is a thin loop over [`SolverContext`]: construct the context, step
/// it until no conflict remains, and take the solution.  Callers that want
/// per-iteration control (inspecting conflicts between insertions, custom
/// stopping rules) can drive the context directly.
///
/// # Errors
///
/// * [`CscError::NoCandidate`] if no valid insertion block can be found for
///   the remaining conflicts,
/// * [`CscError::SignalLimitReached`] if the configured signal budget is
///   exhausted,
/// * [`CscError::InconsistentInsertion`] if a selected insertion produces an
///   inconsistent encoding (indicates an internal invariant violation).
pub fn solve_state_graph(sg: &StateGraph, config: &SolverConfig) -> Result<CscSolution, CscError> {
    let mut context = SolverContext::new(sg, config);
    context.run()?;
    Ok(context.finish())
}

/// One verification problem found by [`verify_solution`].
///
/// The variants are the categories the test-suite asserts on; the
/// [`fmt::Display`] implementation renders the same human-readable
/// messages callers previously received as plain strings.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyDiagnostic {
    /// The final state graph still has CSC conflicts.
    CscConflictsRemain,
    /// An inserted signal is declared with a non-internal kind.
    SignalNotInternal {
        /// Name of the offending signal.
        signal: String,
    },
    /// An inserted signal is missing from the signal table.
    SignalMissing {
        /// Name of the missing signal.
        signal: String,
    },
    /// Hiding the inserted signals does not restore the original traces.
    ObservableTracesChanged,
    /// The final state graph is non-deterministic.
    NonDeterministic,
    /// The final state graph is non-commutative.
    NonCommutative,
}

impl fmt::Display for VerifyDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyDiagnostic::CscConflictsRemain => {
                write!(f, "final state graph still has CSC conflicts")
            }
            VerifyDiagnostic::SignalNotInternal { signal } => {
                write!(f, "inserted signal {signal} is not internal")
            }
            VerifyDiagnostic::SignalMissing { signal } => {
                write!(f, "inserted signal {signal} missing from the signal table")
            }
            VerifyDiagnostic::ObservableTracesChanged => write!(f, "observable traces changed"),
            VerifyDiagnostic::NonDeterministic => {
                write!(f, "final state graph is non-deterministic")
            }
            VerifyDiagnostic::NonCommutative => write!(f, "final state graph is non-commutative"),
        }
    }
}

/// Verifies a solution against its source state graph: CSC must hold, the
/// observable traces must be unchanged (hiding the inserted signals), and
/// the inserted signals must all be internal.
///
/// Returns the list of problems found (empty = verified), as typed
/// [`VerifyDiagnostic`] values so tests can assert on categories instead of
/// string-matching; render with [`fmt::Display`] for a human.
pub fn verify_solution(original: &StateGraph, solution: &CscSolution) -> Vec<VerifyDiagnostic> {
    let mut problems = Vec::new();
    if !solution.graph.complete_state_coding_holds() {
        problems.push(VerifyDiagnostic::CscConflictsRemain);
    }
    for name in &solution.inserted_signals {
        match solution.graph.signals.iter().find(|s| &s.name == name) {
            Some(sig) if sig.kind == SignalKind::Internal => {}
            Some(_) => problems.push(VerifyDiagnostic::SignalNotInternal { signal: name.clone() }),
            None => problems.push(VerifyDiagnostic::SignalMissing { signal: name.clone() }),
        }
    }
    let hidden: Vec<String> = solution
        .inserted_signals
        .iter()
        .flat_map(|n| {
            [format!("{n}{}", Polarity::Rise.suffix()), format!("{n}{}", Polarity::Fall.suffix())]
        })
        .collect();
    let hidden_refs: Vec<&str> = hidden.iter().map(String::as_str).collect();
    if !ts::traces::projected_trace_equivalent(&original.ts, &solution.graph.ts, &hidden_refs) {
        problems.push(VerifyDiagnostic::ObservableTracesChanged);
    }
    if !solution.graph.ts.is_deterministic() {
        problems.push(VerifyDiagnostic::NonDeterministic);
    }
    if !solution.graph.ts.is_commutative() {
        problems.push(VerifyDiagnostic::NonCommutative);
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use stg::benchmarks;

    #[test]
    fn solved_benchmarks_satisfy_csc_and_preserve_traces() {
        let config = SolverConfig::default();
        for model in [benchmarks::pulser(), benchmarks::vme_read(), benchmarks::sequencer(3)] {
            let sg = model.state_graph(100_000).unwrap();
            let solution = solve_state_graph(&sg, &config)
                .unwrap_or_else(|e| panic!("{} failed: {e}", model.name()));
            assert!(solution.graph.complete_state_coding_holds(), "{}", model.name());
            assert!(!solution.inserted_signals.is_empty(), "{}", model.name());
            let problems = verify_solution(&sg, &solution);
            assert!(problems.is_empty(), "{}: {problems:?}", model.name());
        }
    }

    #[test]
    fn conflict_free_models_need_no_insertion() {
        let config = SolverConfig::default();
        let solution = solve_stg(&benchmarks::handshake(), &config).unwrap();
        assert!(solution.inserted_signals.is_empty());
        assert_eq!(solution.stats.iterations, 0);
        assert_eq!(solution.stats.initial_states, solution.stats.final_states);
    }

    #[test]
    fn vme_read_needs_a_small_number_of_signals() {
        let solution = solve_stg(&benchmarks::vme_read(), &SolverConfig::default()).unwrap();
        assert!(
            (1..=2).contains(&solution.inserted_signals.len()),
            "petrify solves the VME controller with one signal, got {:?}",
            solution.inserted_signals
        );
    }

    #[test]
    fn baseline_also_solves_easy_cases() {
        let config = SolverConfig::excitation_region_baseline();
        let solution = solve_stg(&benchmarks::pulser(), &config);
        // The baseline may need more signals or fail on some models; on the
        // pulser it must either solve CSC or report a structured error.
        match solution {
            Ok(s) => assert!(s.graph.complete_state_coding_holds()),
            Err(CscError::NoCandidate { .. }) | Err(CscError::SignalLimitReached { .. }) => {}
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn signal_budget_is_respected() {
        let config = SolverConfig { max_signals: 0, ..SolverConfig::default() };
        let err = solve_stg(&benchmarks::pulser(), &config).unwrap_err();
        assert!(matches!(err, CscError::SignalLimitReached { limit: 0, .. }));
    }

    #[test]
    fn resynthesis_produces_an_stg_when_possible() {
        let config = SolverConfig::default();
        let solution = solve_stg(&benchmarks::pulser(), &config).unwrap();
        if let Some(stg) = &solution.stg {
            // The re-synthesized STG must regenerate a state graph that also
            // satisfies CSC and has the same number of signals.
            assert_eq!(stg.num_signals(), solution.graph.signals.len());
            let sg = stg.state_graph(100_000).unwrap();
            assert!(sg.complete_state_coding_holds());
        }
    }

    #[test]
    fn enlargement_option_still_reaches_csc() {
        let config = SolverConfig { enlarge_concurrency: true, ..SolverConfig::default() };
        let solution = solve_stg(&benchmarks::sequencer(3), &config).unwrap();
        assert!(solution.graph.complete_state_coding_holds());
    }

    #[test]
    fn stage_stats_are_populated() {
        let solution = solve_stg(&benchmarks::vme_read(), &SolverConfig::default()).unwrap();
        let stage = &solution.stats.stage;
        assert!(stage.candidates_evaluated > 0, "the search must score candidates");
        assert!(stage.search_ms >= 0.0 && stage.conflict_ms >= 0.0);
        assert!(stage.insert_ms > 0.0, "at least one signal was inserted");
        assert_eq!(solution.stats.jobs, 1);
        let rendered = stage.to_string();
        assert!(rendered.contains("search") && rendered.contains("candidates evaluated"));
    }

    #[test]
    fn effective_jobs_resolves_auto() {
        let auto = SolverConfig { jobs: 0, ..SolverConfig::default() };
        assert!(auto.effective_jobs() >= 1);
        let four = SolverConfig { jobs: 4, ..SolverConfig::default() };
        assert_eq!(four.effective_jobs(), 4);
    }

    #[test]
    fn verify_diagnostics_render_and_categorise() {
        let sg = benchmarks::pulser().state_graph(10_000).unwrap();
        let mut solution = solve_state_graph(&sg, &SolverConfig::default()).unwrap();
        assert!(verify_solution(&sg, &solution).is_empty());
        // Sabotage the signal table: the verifier must report the wrong kind
        // as a typed diagnostic, not a formatted string.
        let inserted = solution.inserted_signals[0].clone();
        for signal in &mut solution.graph.signals {
            if signal.name == inserted {
                signal.kind = SignalKind::Output;
            }
        }
        let problems = verify_solution(&sg, &solution);
        assert!(problems.iter().any(
            |p| matches!(p, VerifyDiagnostic::SignalNotInternal { signal } if *signal == inserted)
        ));
        let rendered = problems.iter().map(|p| p.to_string()).collect::<Vec<_>>().join("; ");
        assert!(rendered.contains("is not internal"));
    }
}
