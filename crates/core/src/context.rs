//! The staged [`SolverContext`] pipeline.
//!
//! Earlier revisions of the solver were a free function that recomputed
//! conflict pairs, bricks and candidate costs from scratch on every
//! iteration.  The context restructures one solver run into four explicit
//! stages that share state across iterations:
//!
//! ```text
//!             ┌────────────────────────────────────────────────────┐
//!             │                  SolverContext                     │
//!  StateGraph │ conflicts ─► search ─► partition ─► insert ──┐     │ CscSolution
//!  ─────────► │     ▲        (jobs‖)                         │     │ ──────────►
//!             │     └──────────── incremental refresh ◄──────┘     │
//!             └────────────────────────────────────────────────────┘
//! ```
//!
//! * **conflicts** — the full code-bucketing pass runs exactly once, when
//!   the context is built.  After every insertion the list is refreshed
//!   *incrementally*: only states descending from codes that were shared
//!   (or that the insertion split) are re-bucketed — see
//!   [`crate::conflicts::refresh_conflicts_after_insertion`] for the
//!   invariant that makes this exact.
//! * **search** — brick generation plus the Fig. 4 frontier search;
//!   candidate blocks are scored on [`SolverConfig::jobs`] scoped threads
//!   with a deterministic gather/evaluate/reduce split, so the chosen block
//!   is identical for every thread count.
//! * **partition** — I-partition extraction and optional concurrency
//!   enlargement.
//! * **insert** — state-signal insertion with ancestry tracing
//!   ([`crate::insert::insert_state_signal_traced`]), feeding the next
//!   incremental conflict refresh.
//!
//! The context owns the [`ConflictScratch`] (hash table, code buckets, mask
//! buffer), the conflict vector and the dirty-code sets across iterations,
//! so the hot loop performs no repeated cold allocations, and it accumulates
//! per-stage wall-clock times and candidate counters into
//! [`SolveStats::stage`].

use crate::conflicts::{
    conflict_pairs_with, refresh_conflicts_after_insertion, ConflictScratch, CscConflict,
};
use crate::graph::EncodedGraph;
use crate::insert::insert_state_signal_traced;
use crate::search::{
    enlarge_concurrency, excitation_region_bricks, find_best_block_with, SearchStats,
};
use crate::solver::{CscSolution, SolveStats, SolverConfig};
use crate::CscError;
use bdd::FxHashSet;
use regions::{bricks, synthesize_net, RegionConfig};
use std::time::Instant;
use stg::{StateGraph, Stg, TransitionLabel};

/// Milliseconds elapsed since `start`, as a fraction.
fn ms_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// A CSC solver run in progress: the staged pipeline plus every piece of
/// working memory that survives across insertion iterations.
///
/// Construct with [`SolverContext::new`], advance with
/// [`SolverContext::step`] (or [`SolverContext::run`] to completion), and
/// take the result with [`SolverContext::finish`].  The plain
/// [`crate::solve_state_graph`] entry point does exactly that; driving the
/// context manually additionally allows inspecting
/// [`SolverContext::conflicts`] and [`SolverContext::graph`] between
/// iterations.
pub struct SolverContext {
    config: SolverConfig,
    graph: EncodedGraph,
    /// Reusable bucketing memory; doubles as the code → states index of the
    /// most recent conflict pass.
    scratch: ConflictScratch,
    /// Current CSC conflict pairs, sorted by `(code, a, b)`.
    conflicts: Vec<CscConflict>,
    /// Codes shared by ≥ 2 states of the current graph: the seed of the
    /// next insertion's dirty set.
    clash_codes: FxHashSet<u64>,
    /// Reused dirty-set allocation for the incremental refresh.
    dirty: FxHashSet<u64>,
    inserted: Vec<String>,
    stats: SolveStats,
    started: Instant,
    /// Name of the first signal of the source graph (used to name a
    /// re-synthesized STG).
    source_signal: Option<String>,
}

impl SolverContext {
    /// Builds a context for `sg`: copies the graph into its encoded form and
    /// runs the one and only full conflict-detection pass.
    pub fn new(sg: &StateGraph, config: &SolverConfig) -> Self {
        let started = Instant::now();
        let graph = EncodedGraph::from_state_graph(sg);
        let mut scratch = ConflictScratch::new();
        let mut conflicts = Vec::new();
        let conflict_start = Instant::now();
        conflict_pairs_with(&graph, &mut scratch, &mut conflicts);
        let mut clash_codes = FxHashSet::default();
        scratch.shared_codes_into(&mut clash_codes);
        let mut stats = SolveStats {
            initial_states: graph.num_states(),
            initial_conflicts: conflicts.len(),
            jobs: config.effective_jobs(),
            ..SolveStats::default()
        };
        stats.stage.conflict_ms += ms_since(conflict_start);
        SolverContext {
            config: config.clone(),
            graph,
            scratch,
            conflicts,
            clash_codes,
            dirty: FxHashSet::default(),
            inserted: Vec::new(),
            stats,
            started,
            source_signal: sg.signals().first().map(|s| s.name.clone()),
        }
    }

    /// The current encoded graph.
    pub fn graph(&self) -> &EncodedGraph {
        &self.graph
    }

    /// The current CSC conflict pairs (sorted by `(code, a, b)`).
    pub fn conflicts(&self) -> &[CscConflict] {
        &self.conflicts
    }

    /// Names of the signals inserted so far, in insertion order.
    pub fn inserted_signals(&self) -> &[String] {
        &self.inserted
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// Returns `true` when Complete State Coding holds on the current graph.
    pub fn is_solved(&self) -> bool {
        self.conflicts.is_empty()
    }

    /// Runs one pipeline iteration: search for the best insertion block,
    /// derive its I-partition, insert the next state signal and refresh the
    /// conflict list incrementally.
    ///
    /// Returns `Ok(false)` (and does nothing) when CSC already holds, and
    /// `Ok(true)` after a successful insertion.
    ///
    /// # Errors
    ///
    /// * [`CscError::SignalLimitReached`] when the signal budget is
    ///   exhausted while conflicts remain,
    /// * [`CscError::NoCandidate`] when no valid insertion block exists,
    /// * [`CscError::InconsistentInsertion`] when the selected insertion
    ///   produces an inconsistent encoding.
    pub fn step(&mut self) -> Result<bool, CscError> {
        if self.conflicts.is_empty() {
            return Ok(false);
        }
        // Cooperative governance: the explicit pipeline allocates no BDD
        // nodes, so only the deadline and the cancel flag apply here.
        if let Some(budget) = &self.config.budget {
            budget.set_stage("explicit-solver");
            budget.check_deadline()?;
        }
        if self.inserted.len() >= self.config.max_signals {
            return Err(CscError::SignalLimitReached {
                limit: self.config.max_signals,
                remaining_conflicts: self.conflicts.len(),
            });
        }
        let jobs = self.stats.jobs;

        // Stage: search (brick generation + Fig. 4 frontier search).
        let stage_start = Instant::now();
        let brick_set = match self.config.candidate_source {
            crate::CandidateSource::RegionBricks => {
                // Region bricks (minimal regions and pre-/post-region
                // intersections, Property 3.1 P1/P3) plus the excitation- and
                // switching-region bricks (P2).
                let mut set = bricks(&self.graph.ts, &self.config.region_config);
                set.extend(excitation_region_bricks(&self.graph));
                set
            }
            crate::CandidateSource::ExcitationRegions => excitation_region_bricks(&self.graph),
        };
        let mut search_stats = SearchStats::default();
        let best = find_best_block_with(
            &self.graph,
            &self.conflicts,
            &brick_set,
            self.config.frontier_width,
            jobs,
            &mut search_stats,
        )
        .ok_or(CscError::NoCandidate { remaining_conflicts: self.conflicts.len() })?;
        self.stats.stage.search_ms += ms_since(stage_start);
        self.stats.stage.candidates_evaluated += search_stats.evaluated;
        self.stats.stage.candidates_pruned += search_stats.pruned;
        // The search is the long pole of an iteration; re-check the
        // deadline before committing to the insertion work.
        if let Some(budget) = &self.config.budget {
            budget.check_deadline()?;
        }

        // Stage: partition (extraction + optional concurrency enlargement).
        let stage_start = Instant::now();
        let mut partition = best.partition.expect("winning candidates carry a partition");
        if self.config.enlarge_concurrency {
            partition = enlarge_concurrency(&self.graph, &self.conflicts, &partition, &brick_set);
        }
        self.stats.stage.partition_ms += ms_since(stage_start);

        // Stage: insert.  The dirty codes for the incremental refresh must
        // be computed against the *pre*-insertion graph: every code shared
        // by two or more states plus the codes of the states the insertion
        // splits (the two excitation regions of the new signal).
        let stage_start = Instant::now();
        self.dirty.clear();
        self.dirty.extend(self.clash_codes.iter().copied());
        for s in partition.er_rise.iter().chain(partition.er_fall.iter()) {
            self.dirty.insert(self.graph.code(s));
        }
        let name = format!("{}{}", self.config.signal_prefix, self.inserted.len());
        let traced = insert_state_signal_traced(
            &self.graph,
            &name,
            &partition,
            self.config.insertion_style,
        )?;
        let old = std::mem::replace(&mut self.graph, traced.graph);
        self.stats.stage.insert_ms += ms_since(stage_start);

        // Stage: incremental conflict maintenance.
        let stage_start = Instant::now();
        refresh_conflicts_after_insertion(
            &self.graph,
            &traced.origin,
            &old.codes,
            &self.dirty,
            &mut self.scratch,
            &mut self.conflicts,
            &mut self.clash_codes,
        );
        self.stats.stage.conflict_ms += ms_since(stage_start);

        self.inserted.push(name);
        self.stats.iterations += 1;
        Ok(true)
    }

    /// Steps the pipeline until CSC holds.
    ///
    /// # Errors
    ///
    /// Propagates the first error of [`SolverContext::step`].
    pub fn run(&mut self) -> Result<(), CscError> {
        while self.step()? {}
        Ok(())
    }

    /// Consumes the context and produces the solution: final statistics plus
    /// the optional Petri-net re-synthesis.
    ///
    /// Normally called after [`SolverContext::run`] succeeded; calling it
    /// earlier yields the partial encoding reached so far (CSC may not hold
    /// on it).
    pub fn finish(mut self) -> CscSolution {
        self.stats.final_states = self.graph.num_states();
        self.stats.elapsed = self.started.elapsed();
        let stg = if self.config.resynthesize {
            resynthesize(&self.graph, self.source_signal.as_deref(), &self.config.region_config)
        } else {
            None
        };
        CscSolution { graph: self.graph, inserted_signals: self.inserted, stats: self.stats, stg }
    }
}

/// Attempts to re-synthesize an STG (Petri net plus signal labels) from the
/// final encoded state graph.  Returns `None` when the state graph is not
/// excitation closed (label splitting would be required).
fn resynthesize(
    graph: &EncodedGraph,
    source_signal: Option<&str>,
    region_config: &RegionConfig,
) -> Option<Stg> {
    let synthesized = synthesize_net(&graph.ts, region_config).ok()?;
    // Rebuild the label table: net transitions are named after the events of
    // the encoded graph ("lds+", "csc0-", …).
    let mut labels = Vec::with_capacity(synthesized.net.num_transitions());
    for t in 0..synthesized.net.num_transitions() {
        let name = synthesized.net.transition_name(petri::TransId::from(t)).to_owned();
        let event = graph.ts.event_id(&name)?;
        let label = match graph.event_edges[event.index()] {
            Some((signal, polarity)) => TransitionLabel::Edge { signal, polarity },
            None => TransitionLabel::Dummy,
        };
        labels.push(label);
    }
    let mut name = String::from("csc_");
    name.push_str(source_signal.unwrap_or("model"));
    Stg::from_labelled_net(synthesized.net, graph.signals.clone(), labels, name).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflicts::conflict_pairs;
    use crate::solver::SolverConfig;
    use stg::benchmarks;

    #[test]
    fn incremental_conflicts_match_a_full_pass_after_every_insertion() {
        // The incremental-maintenance invariant: after every step the
        // context's conflict list equals a from-scratch enumeration.
        let config = SolverConfig::default();
        for model in [
            benchmarks::pulser(),
            benchmarks::vme_read(),
            benchmarks::sequencer(4),
            benchmarks::counter(2),
            benchmarks::master_read_like(),
            benchmarks::pulser_bank(2),
        ] {
            let sg = model.state_graph(200_000).unwrap();
            let mut context = SolverContext::new(&sg, &config);
            assert_eq!(
                context.conflicts(),
                conflict_pairs(context.graph()).as_slice(),
                "{}: initial pass",
                model.name()
            );
            let mut steps = 0;
            while context.step().unwrap_or_else(|e| panic!("{}: {e}", model.name())) {
                steps += 1;
                assert_eq!(
                    context.conflicts(),
                    conflict_pairs(context.graph()).as_slice(),
                    "{}: after insertion {steps}",
                    model.name()
                );
            }
            assert!(context.is_solved(), "{}", model.name());
        }
    }

    #[test]
    fn context_and_free_function_agree() {
        let config = SolverConfig::default();
        let sg = benchmarks::vme_read().state_graph(100_000).unwrap();
        let mut context = SolverContext::new(&sg, &config);
        context.run().unwrap();
        let from_context = context.finish();
        let from_function = crate::solve_state_graph(&sg, &config).unwrap();
        assert_eq!(from_context.inserted_signals, from_function.inserted_signals);
        assert_eq!(from_context.graph.codes, from_function.graph.codes);
        assert_eq!(from_context.graph.num_states(), from_function.graph.num_states());
    }

    #[test]
    fn stepping_a_solved_context_is_a_no_op() {
        let config = SolverConfig::default();
        let sg = benchmarks::handshake().state_graph(10_000).unwrap();
        let mut context = SolverContext::new(&sg, &config);
        assert!(context.is_solved());
        assert!(!context.step().unwrap());
        assert_eq!(context.stats().iterations, 0);
        let solution = context.finish();
        assert!(solution.inserted_signals.is_empty());
    }

    #[test]
    fn parallel_steps_produce_identical_graphs() {
        for model in [benchmarks::pulser(), benchmarks::sequencer(4), benchmarks::counter(2)] {
            let sg = model.state_graph(200_000).unwrap();
            let sequential =
                crate::solve_state_graph(&sg, &SolverConfig { jobs: 1, ..SolverConfig::default() })
                    .unwrap();
            let parallel =
                crate::solve_state_graph(&sg, &SolverConfig { jobs: 4, ..SolverConfig::default() })
                    .unwrap();
            assert_eq!(sequential.inserted_signals, parallel.inserted_signals, "{}", model.name());
            assert_eq!(sequential.graph.codes, parallel.graph.codes, "{}", model.name());
            assert_eq!(
                sequential.graph.ts.transitions(),
                parallel.graph.ts.transitions(),
                "{}",
                model.name()
            );
            assert_eq!(parallel.stats.jobs, 4, "{}", model.name());
        }
    }
}
