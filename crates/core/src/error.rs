//! Error type for the CSC solver.

use bdd::BudgetExceeded;
use std::error::Error;
use std::fmt;

/// Errors raised by the CSC resolution flow.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CscError {
    /// The STG or state graph could not be built.
    Stg(stg::StgError),
    /// No valid insertion candidate could be found for the remaining
    /// conflicts (e.g. every candidate would delay an input signal).
    NoCandidate {
        /// Number of conflict pairs still unresolved.
        remaining_conflicts: usize,
    },
    /// The solver hit its limit on inserted signals before reaching CSC.
    SignalLimitReached {
        /// The configured limit.
        limit: usize,
        /// Conflicts still unresolved at that point.
        remaining_conflicts: usize,
    },
    /// A selected insertion turned out to produce an inconsistent encoding
    /// (this indicates an invalid I-partition and is reported rather than
    /// silently accepted).
    InconsistentInsertion {
        /// Name of the signal being inserted.
        signal: String,
    },
    /// The event insertion itself failed.
    Insertion(ts::TsError),
    /// A symbolic reachability fixpoint hit its iteration cap before
    /// converging (symbolic solver only).
    NotConverged {
        /// Image rounds performed before giving up.
        iterations: usize,
    },
    /// The symbolic solver's seed (`initial_code`) does not label the
    /// reachable markings consistently: some edge is blocked by a wrong
    /// signal value, so markings are lost or doubly coded.
    SeedMismatch {
        /// Reachable markings of the places-only fixpoint (ground truth).
        markings: usize,
        /// States of the encoded (marking, code) fixpoint.
        coded_states: usize,
    },
    /// A resource budget (node ceiling, step ceiling, deadline or
    /// cancellation) tripped during the symbolic solve.
    Budget(BudgetExceeded),
}

impl fmt::Display for CscError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CscError::Stg(e) => write!(f, "state graph construction failed: {e}"),
            CscError::NoCandidate { remaining_conflicts } => write!(
                f,
                "no speed-independence-preserving insertion candidate found ({remaining_conflicts} conflict pairs remain)"
            ),
            CscError::SignalLimitReached { limit, remaining_conflicts } => write!(
                f,
                "inserted {limit} state signals without reaching CSC ({remaining_conflicts} conflict pairs remain)"
            ),
            CscError::InconsistentInsertion { signal } => {
                write!(f, "inserting signal '{signal}' produced an inconsistent encoding")
            }
            CscError::Insertion(e) => write!(f, "event insertion failed: {e}"),
            CscError::NotConverged { iterations } => {
                write!(f, "symbolic reachability did not converge within {iterations} iterations")
            }
            CscError::SeedMismatch { markings, coded_states } => write!(
                f,
                "initial code mismatch: {markings} reachable markings vs {coded_states} coded states \
                 (wrong initial_code seed)"
            ),
            CscError::Budget(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CscError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CscError::Stg(e) => Some(e),
            CscError::Insertion(e) => Some(e),
            CscError::Budget(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BudgetExceeded> for CscError {
    fn from(value: BudgetExceeded) -> Self {
        CscError::Budget(value)
    }
}

impl From<stg::StgError> for CscError {
    fn from(value: stg::StgError) -> Self {
        CscError::Stg(value)
    }
}

impl From<ts::TsError> for CscError {
    fn from(value: ts::TsError) -> Self {
        CscError::Insertion(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_explain_the_failure() {
        let e = CscError::SignalLimitReached { limit: 3, remaining_conflicts: 2 };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('2'));
        let n = CscError::NoCandidate { remaining_conflicts: 5 };
        assert!(n.to_string().contains('5'));
        let wrapped: CscError = ts::TsError::EmptyEventName.into();
        assert!(wrapped.source().is_some());
    }
}
