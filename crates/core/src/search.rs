//! The heuristic frontier search for the best insertion block (Fig. 4).
//!
//! Candidate blocks are unions of bricks.  The search keeps a frontier of
//! the `FW` best blocks, grows every frontier block by every adjacent brick,
//! keeps the grown blocks that improve on their ancestor, and repeats until
//! no block improves.  The cost function implements the priority order of
//! §5 of the paper:
//!
//! 1. the derived excitation regions must be speed-independence-preserving
//!    sets and must not delay input signals (hard validity),
//! 2. the number of solved CSC conflicts is maximised,
//! 3. the estimated logic complexity (trigger-event count of the new
//!    signal's excitation regions) is minimised,
//! 4. ties are broken towards balanced partitions.
//!
//! Candidate evaluation is embarrassingly parallel: each round first
//! *gathers* the deduplicated candidate sets (sequentially, so the dedup
//! order is fixed), then scores them on `jobs` scoped threads in input
//! order, then *reduces* sequentially.  Because the scored vector preserves
//! input order and every sort is stable, the chosen block is byte-identical
//! to the one the sequential path picks — the property-test suite asserts
//! this across the benchmark suite and randomized STGs.

use crate::conflicts::CscConflict;
use crate::partition::IPartition;
use crate::EncodedGraph;
use regions::{adjacent_bricks, is_sip_set, Brick, BrickKind};
use ts::{EventId, SetDedup, StateId, StateSet};

/// Which candidate bricks the search may use.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum CandidateSource {
    /// Minimal regions and same-event pre-/post-region intersections — the
    /// paper's method.
    #[default]
    RegionBricks,
    /// Excitation and switching regions of existing events only — the
    /// coarser space explored by ASSASSIN-style tools (used as the Table 2
    /// baseline).
    ExcitationRegions,
}

/// The lexicographic cost of an insertion candidate (smaller is better).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Cost {
    /// Hard validity: SIP excitation regions that delay no input signal.
    pub valid: bool,
    /// CSC conflict pairs whose two states end up on the same side of the
    /// bipartition (not solved at all).
    pub unseparated_conflicts: usize,
    /// CSC conflict pairs that are separated but have an endpoint inside one
    /// of the new signal's excitation regions; these may reappear as
    /// secondary conflicts between the split copies (paper Fig. 3).
    pub border_conflicts: usize,
    /// Direct transitions between the two excitation regions (risk of a
    /// non-persistent state signal).
    pub short_circuits: usize,
    /// Trigger events of the two excitation regions (logic estimate).
    pub triggers: usize,
    /// Size imbalance of the bipartition (tie-breaker).
    pub imbalance: usize,
}

impl Cost {
    fn key(&self) -> (u8, usize, usize, usize, usize, usize) {
        (
            u8::from(!self.valid),
            // Conflicts the candidate is guaranteed to resolve come first
            // (the paper's "number of solved CSC conflicts is maximised"),
            // then the number of pairs left to secondary resolution.
            self.unresolved(),
            self.border_conflicts,
            self.short_circuits,
            self.triggers,
            self.imbalance,
        )
    }

    /// Conflict pairs the candidate is *guaranteed* to resolve: separated and
    /// away from the new signal's excitation regions.
    pub fn unresolved(&self) -> usize {
        self.unseparated_conflicts.saturating_add(self.border_conflicts)
    }

    /// The worst possible cost (used for degenerate candidates).
    pub fn worst(conflicts: usize) -> Cost {
        Cost {
            valid: false,
            unseparated_conflicts: conflicts,
            border_conflicts: 0,
            short_circuits: usize::MAX,
            triggers: usize::MAX,
            imbalance: usize::MAX,
        }
    }
}

impl PartialOrd for Cost {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cost {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// A scored candidate block.
#[derive(Clone, Debug)]
pub struct BlockCandidate {
    /// The block of states (`b` of the bipartition).
    pub states: StateSet,
    /// The derived I-partition, when it is not degenerate.
    pub partition: Option<IPartition>,
    /// The candidate's cost.
    pub cost: Cost,
}

/// Returns `true` if an input-labelled transition leaves `set` (such a
/// transition would have to wait for the new signal, delaying the
/// environment).
fn delays_inputs(graph: &EncodedGraph, set: &StateSet) -> bool {
    graph
        .ts
        .transitions()
        .iter()
        .any(|t| set.contains(t.source) && !set.contains(t.target) && graph.is_input_event(t.event))
}

/// Repairs an excitation-region candidate so that the insertion preserves
/// speed independence: whenever an event's transition exits the set while
/// the event's (connected) excitation region is only partially covered, the
/// whole excitation region is pulled in — an event may be delayed by the new
/// signal only if it is delayed uniformly.  The set is also kept closed
/// under successors within `side` (well-formedness) and must stay inside
/// `side`; input events may never be delayed.
///
/// The closure runs over a worklist of newly added states instead of
/// cloning the set on every sweep — this is the hottest allocation site of
/// `evaluate_block`, which runs once per candidate.  Running the forward
/// closure to its fixpoint *before* the uniform-delay check (instead of
/// interleaving partial sweeps with it) also makes the check precise: a
/// transition "exits" only when it truly leaves `side`, never because its
/// in-`side` target had not been absorbed yet, so fewer candidates are
/// spuriously rejected or over-grown than in earlier revisions.
///
/// Returns `None` when no such repair exists within `side`.
fn repair_excitation_region(
    graph: &EncodedGraph,
    side: &StateSet,
    seed: &StateSet,
) -> Option<StateSet> {
    let ts = &graph.ts;
    let mut er = seed.clone();
    if !er.is_subset(side) {
        return None;
    }
    let mut worklist: Vec<StateId> = Vec::new();
    loop {
        // Well-formedness: successors inside `side` of ER states must be in
        // the ER (no transition from the border back into the interior).
        // The full forward closure runs before the uniform-delay check so
        // that "exits the ER" below can only mean "leaves `side`", never an
        // interior state the closure was still about to absorb.
        worklist.clear();
        worklist.extend(er.iter());
        while let Some(s) = worklist.pop() {
            for &(_, target) in ts.successors(s) {
                if side.contains(target) && er.insert(target) {
                    worklist.push(target);
                }
            }
        }
        // Uniform delay: an event with a transition exiting the ER must have
        // every excitation region it shares states with fully inside the ER.
        let mut changed = false;
        for e in 0..ts.num_events() {
            let e = EventId::from(e);
            let exits = ts
                .transitions_of(e)
                .iter()
                .any(|&(source, target)| er.contains(source) && !er.contains(target));
            if !exits {
                continue;
            }
            if graph.is_input_event(e) {
                return None;
            }
            for component in ts.excitation_regions(e) {
                if !component.intersects(&er) || component.is_subset(&er) {
                    continue;
                }
                if !component.is_subset(side) {
                    return None;
                }
                er.union_with(&component);
                changed = true;
            }
        }
        if !changed {
            return Some(er);
        }
    }
}

/// Scores a candidate block against the current conflict list.
pub fn evaluate_block(
    graph: &EncodedGraph,
    conflicts: &[CscConflict],
    block: &StateSet,
) -> BlockCandidate {
    let Some(raw) = IPartition::from_block(&graph.ts, block) else {
        return BlockCandidate {
            states: block.clone(),
            partition: None,
            cost: Cost::worst(conflicts.len()),
        };
    };
    // Repair both excitation regions so that the insertion is speed-
    // independence preserving; candidates whose repair escapes its side of
    // the bipartition (or would delay an input) are invalid.
    let complement = block.complement();
    let repaired = match (
        repair_excitation_region(graph, &complement, &raw.er_rise),
        repair_excitation_region(graph, block, &raw.er_fall),
    ) {
        (Some(er_rise), Some(er_fall)) => {
            let s1 = block.difference(&er_fall);
            let s0 = complement.difference(&er_rise);
            IPartition { block: block.clone(), er_rise, er_fall, s1, s0 }
        }
        _ => {
            let unseparated = conflicts.iter().filter(|c| !raw.separates(c.a, c.b)).count();
            let border = conflicts
                .iter()
                .filter(|c| raw.separates(c.a, c.b) && !raw.cleanly_separates(c.a, c.b))
                .count();
            return BlockCandidate {
                states: block.clone(),
                partition: Some(raw),
                cost: Cost {
                    valid: false,
                    unseparated_conflicts: unseparated,
                    border_conflicts: border,
                    short_circuits: usize::MAX,
                    triggers: usize::MAX,
                    imbalance: usize::MAX,
                },
            };
        }
    };
    let partition = repaired;
    let unseparated = conflicts.iter().filter(|c| !partition.separates(c.a, c.b)).count();
    let border = conflicts
        .iter()
        .filter(|c| partition.separates(c.a, c.b) && !partition.cleanly_separates(c.a, c.b))
        .count();
    let short_circuits = partition.short_circuit_transitions(&graph.ts);
    let triggers = partition.trigger_event_count(&graph.ts);
    let imbalance = partition.imbalance();
    let valid = !delays_inputs(graph, &partition.er_rise)
        && !delays_inputs(graph, &partition.er_fall)
        && is_sip_set(&graph.ts, &partition.er_rise)
        && is_sip_set(&graph.ts, &partition.er_fall);
    BlockCandidate {
        states: block.clone(),
        partition: Some(partition),
        cost: Cost {
            valid,
            unseparated_conflicts: unseparated,
            border_conflicts: border,
            short_circuits,
            triggers,
            imbalance,
        },
    }
}

/// Builds the brick set for the excitation-region-only baseline.
pub fn excitation_region_bricks(graph: &EncodedGraph) -> Vec<Brick> {
    let mut bricks = Vec::new();
    let mut seen = SetDedup::new();
    for e in 0..graph.ts.num_events() {
        let e = EventId::from(e);
        for set in graph.ts.excitation_regions(e).into_iter().chain(graph.ts.switching_regions(e)) {
            if set.is_empty() || set.len() == graph.ts.num_states() {
                continue;
            }
            if seen.insert(&set) {
                bricks.push(Brick { states: set, kind: BrickKind::ExcitationRegion(e) });
            }
        }
    }
    bricks
}

/// Counters describing one frontier-search run, threaded into
/// [`crate::SolveStats`] by the solver pipeline.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Candidate blocks actually scored with [`evaluate_block`].
    pub evaluated: usize,
    /// Candidate blocks skipped before scoring (duplicate state sets or
    /// degenerate full-space unions).
    pub pruned: usize,
}

/// Scores `blocks` in input order, fanning the work out over `jobs` scoped
/// threads when it is worth it.
///
/// The output vector is index-aligned with the input regardless of `jobs`,
/// so every downstream (stable) sort and reduction sees the exact sequence
/// the sequential path produces — parallelism never changes the selected
/// block.
fn evaluate_blocks(
    graph: &EncodedGraph,
    conflicts: &[CscConflict],
    blocks: &[&StateSet],
    jobs: usize,
) -> Vec<BlockCandidate> {
    // Below this many candidates the spawn overhead dominates any win.
    const MIN_PARALLEL: usize = 16;
    if jobs <= 1 || blocks.len() < MIN_PARALLEL.max(2 * jobs) {
        return blocks.iter().map(|b| evaluate_block(graph, conflicts, b)).collect();
    }
    let mut results: Vec<Option<BlockCandidate>> = (0..blocks.len()).map(|_| None).collect();
    let chunk = blocks.len().div_ceil(jobs);
    std::thread::scope(|scope| {
        for (block_chunk, result_chunk) in blocks.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (block, slot) in block_chunk.iter().zip(result_chunk.iter_mut()) {
                    *slot = Some(evaluate_block(graph, conflicts, block));
                }
            });
        }
    });
    results.into_iter().map(|c| c.expect("every chunk was evaluated")).collect()
}

/// Runs the frontier search of Fig. 4 and returns the best block found, or
/// `None` if no candidate solves at least one conflict with a valid,
/// speed-independence-preserving insertion.
///
/// Sequential convenience wrapper over [`find_best_block_with`].
pub fn find_best_block(
    graph: &EncodedGraph,
    conflicts: &[CscConflict],
    bricks: &[Brick],
    frontier_width: usize,
) -> Option<BlockCandidate> {
    find_best_block_with(graph, conflicts, bricks, frontier_width, 1, &mut SearchStats::default())
}

/// Runs the frontier search of Fig. 4 with `jobs` evaluation threads,
/// accumulating candidate counters into `stats`.
///
/// Every round gathers its deduplicated candidate sets sequentially,
/// evaluates them in input order (fanning out over `jobs` scoped threads),
/// and reduces sequentially, so the returned block is identical for every
/// `jobs` value.
pub fn find_best_block_with(
    graph: &EncodedGraph,
    conflicts: &[CscConflict],
    bricks: &[Brick],
    frontier_width: usize,
    jobs: usize,
    stats: &mut SearchStats,
) -> Option<BlockCandidate> {
    if conflicts.is_empty() || bricks.is_empty() {
        return None;
    }
    let mut seen = SetDedup::new();
    let seeds: Vec<&StateSet> = bricks
        .iter()
        .filter(|b| {
            let fresh = seen.insert(&b.states);
            if !fresh {
                stats.pruned += 1;
            }
            fresh
        })
        .map(|b| &b.states)
        .collect();
    stats.evaluated += seeds.len();
    let mut scored = evaluate_blocks(graph, conflicts, &seeds, jobs);
    scored.sort_by_key(|a| a.cost);

    let mut good_blocks: Vec<BlockCandidate> = scored.clone();
    // The first growth round starts from *every* brick so that seeds in all
    // parts of the state graph are explored; later rounds keep only the best
    // `FW` blocks as in Fig. 4.
    let mut frontier: Vec<BlockCandidate> = scored;

    // Bounded number of growth rounds; each round can only produce strictly
    // larger blocks, so termination is guaranteed anyway.
    for _ in 0..graph.num_states() {
        let mut new_frontier: Vec<BlockCandidate> = Vec::new();
        if jobs <= 1 {
            // Sequential path: evaluate each grown block as it is gathered,
            // never materialising the round's candidate sets.
            for bl in &frontier {
                for br in adjacent_bricks(&graph.ts, &bl.states, bricks) {
                    let grown = bl.states.union(&br.states);
                    if grown.len() == graph.num_states() || !seen.insert(&grown) {
                        stats.pruned += 1;
                        continue;
                    }
                    stats.evaluated += 1;
                    let candidate = evaluate_block(graph, conflicts, &grown);
                    if candidate.cost < bl.cost {
                        good_blocks.push(candidate.clone());
                        new_frontier.push(candidate);
                    }
                }
            }
        } else {
            // Gather phase: deduplicate the grown blocks of this round in
            // the same frontier × adjacent-brick order the sequential path
            // visits, so the dedup decisions are identical.
            let mut grown_blocks: Vec<(usize, StateSet)> = Vec::new();
            for (parent, bl) in frontier.iter().enumerate() {
                for br in adjacent_bricks(&graph.ts, &bl.states, bricks) {
                    let grown = bl.states.union(&br.states);
                    if grown.len() == graph.num_states() || !seen.insert(&grown) {
                        stats.pruned += 1;
                        continue;
                    }
                    grown_blocks.push((parent, grown));
                }
            }
            // Evaluate phase: parallel, order-preserving.
            let (parents, sets): (Vec<usize>, Vec<StateSet>) = grown_blocks.into_iter().unzip();
            let set_refs: Vec<&StateSet> = sets.iter().collect();
            stats.evaluated += set_refs.len();
            let evaluated = evaluate_blocks(graph, conflicts, &set_refs, jobs);
            // Reduce phase: sequential, same accept test as the scalar loop.
            for (parent, candidate) in parents.into_iter().zip(evaluated) {
                if candidate.cost < frontier[parent].cost {
                    good_blocks.push(candidate.clone());
                    new_frontier.push(candidate);
                }
            }
        }
        if new_frontier.is_empty() {
            break;
        }
        new_frontier.sort_by_key(|a| a.cost);
        new_frontier.truncate(frontier_width.max(1));
        frontier = new_frontier;
    }

    // Greedy merging of good (possibly disconnected) blocks, guided by the
    // cost function.  This is a short dependent chain (each merge feeds the
    // next), so it stays sequential for every `jobs` value.
    good_blocks.sort_by_key(|a| a.cost);
    let mut best = good_blocks.first()?.clone();
    for other in good_blocks.iter().skip(1).take(32) {
        if other.states.is_subset(&best.states) {
            continue;
        }
        let merged = best.states.union(&other.states);
        if merged.len() == graph.num_states() {
            stats.pruned += 1;
            continue;
        }
        stats.evaluated += 1;
        let candidate = evaluate_block(graph, conflicts, &merged);
        if candidate.cost < best.cost {
            best = candidate;
        }
    }

    let solves_cleanly =
        best.cost.valid && best.cost.unresolved() < conflicts.len() && best.partition.is_some();
    if solves_cleanly {
        return Some(best);
    }
    // Fall back to the best candidate that at least separates one conflict
    // pair (its borders may introduce secondary conflicts, which the outer
    // solver loop resolves on later iterations — paper Fig. 3).
    good_blocks.into_iter().find(|c| {
        c.cost.valid && c.cost.unseparated_conflicts < conflicts.len() && c.partition.is_some()
    })
}

/// Greedily enlarges the excitation regions of `partition` by adjacent
/// bricks, increasing the concurrency of the inserted signal, as long as the
/// logic estimate (trigger count) does not get worse and the insertion stays
/// valid (paper §5, step 4).
pub fn enlarge_concurrency(
    graph: &EncodedGraph,
    conflicts: &[CscConflict],
    partition: &IPartition,
    bricks: &[Brick],
) -> IPartition {
    let mut current = evaluate_block(graph, conflicts, &partition.block);
    let Some(mut best_part) = current.partition.clone() else {
        return partition.clone();
    };
    // Enlarging ER(x+) means shrinking the stable-0 region: move brick
    // states from S0 into ER(x+) by moving them out of the block's
    // complement interior — equivalently, grow the block's complement
    // border.  We approximate the paper's greedy step by trying to grow the
    // *block* itself with adjacent bricks and keeping the result whenever
    // the trigger estimate improves while validity and solved conflicts are
    // preserved.
    for _ in 0..8 {
        let mut improved = false;
        for br in adjacent_bricks(&graph.ts, &current.states, bricks) {
            let grown = current.states.union(&br.states);
            if grown.len() == graph.num_states() {
                continue;
            }
            let candidate = evaluate_block(graph, conflicts, &grown);
            if candidate.cost.valid
                && candidate.cost.unresolved() <= current.cost.unresolved()
                && candidate.cost.triggers < current.cost.triggers
            {
                if let Some(p) = candidate.partition.clone() {
                    best_part = p;
                    current = candidate;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            break;
        }
    }
    best_part
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflicts::conflict_pairs;
    use crate::EncodedGraph;
    use regions::{bricks, RegionConfig};
    use stg::benchmarks;

    fn graph_of(model: &stg::Stg) -> EncodedGraph {
        EncodedGraph::from_state_graph(&model.state_graph(100_000).unwrap())
    }

    #[test]
    fn cost_ordering_follows_the_paper_priorities() {
        let valid = Cost {
            valid: true,
            unseparated_conflicts: 3,
            border_conflicts: 0,
            short_circuits: 0,
            triggers: 9,
            imbalance: 4,
        };
        let invalid = Cost {
            valid: false,
            unseparated_conflicts: 0,
            border_conflicts: 0,
            short_circuits: 0,
            triggers: 0,
            imbalance: 0,
        };
        assert!(valid < invalid, "validity dominates everything else");
        let fewer_conflicts = Cost {
            valid: true,
            unseparated_conflicts: 1,
            border_conflicts: 0,
            short_circuits: 5,
            triggers: 90,
            imbalance: 40,
        };
        assert!(fewer_conflicts < valid, "solved conflicts dominate logic estimates");
        let fewer_triggers = Cost {
            valid: true,
            unseparated_conflicts: 1,
            border_conflicts: 0,
            short_circuits: 5,
            triggers: 2,
            imbalance: 40,
        };
        assert!(fewer_triggers < fewer_conflicts);
        let no_border_risk = Cost {
            valid: true,
            unseparated_conflicts: 1,
            border_conflicts: 0,
            short_circuits: 99,
            triggers: 99,
            imbalance: 99,
        };
        let border_risk = Cost {
            valid: true,
            unseparated_conflicts: 1,
            border_conflicts: 2,
            short_circuits: 0,
            triggers: 0,
            imbalance: 0,
        };
        assert!(
            no_border_risk < border_risk,
            "guaranteed resolution beats secondary-conflict risk"
        );
    }

    #[test]
    fn pulser_search_finds_a_valid_block() {
        let graph = graph_of(&benchmarks::pulser());
        let conflicts = conflict_pairs(&graph);
        assert_eq!(conflicts.len(), 2);
        let all_bricks = bricks(&graph.ts, &RegionConfig::default());
        let best = find_best_block(&graph, &conflicts, &all_bricks, 4).expect("a block must exist");
        assert!(best.cost.valid);
        assert!(best.cost.unresolved() < conflicts.len());
        let part = best.partition.unwrap();
        assert!(!part.er_rise.is_empty());
        assert!(!part.er_fall.is_empty());
    }

    #[test]
    fn vme_search_finds_a_valid_block() {
        let graph = graph_of(&benchmarks::vme_read());
        let conflicts = conflict_pairs(&graph);
        let all_bricks = bricks(&graph.ts, &RegionConfig::default());
        let best = find_best_block(&graph, &conflicts, &all_bricks, 4).expect("a block must exist");
        assert!(best.cost.valid);
        assert!(best.cost.unresolved() < conflicts.len());
    }

    #[test]
    fn baseline_bricks_are_excitation_or_switching_regions() {
        let graph = graph_of(&benchmarks::pulser());
        let er = excitation_region_bricks(&graph);
        assert!(!er.is_empty());
        for b in &er {
            assert!(matches!(b.kind, BrickKind::ExcitationRegion(_)));
            assert!(!b.states.is_empty());
        }
    }

    #[test]
    fn input_delay_detection() {
        let graph = graph_of(&benchmarks::handshake());
        // {state where req- is enabled}: the input transition req- exits any
        // set containing its source but not its target.
        let req_minus = graph.ts.event_id("req-").unwrap();
        let source = graph.ts.transitions_of(req_minus)[0].0;
        let set = StateSet::from_states(graph.num_states(), [source]);
        assert!(delays_inputs(&graph, &set));
    }

    #[test]
    fn search_returns_none_when_there_are_no_conflicts() {
        let graph = graph_of(&benchmarks::handshake());
        let conflicts = conflict_pairs(&graph);
        assert!(conflicts.is_empty());
        let all_bricks = bricks(&graph.ts, &RegionConfig::default());
        assert!(find_best_block(&graph, &conflicts, &all_bricks, 4).is_none());
    }

    #[test]
    fn enlargement_never_invalidates_the_partition() {
        let graph = graph_of(&benchmarks::sequencer(3));
        let conflicts = conflict_pairs(&graph);
        let all_bricks = bricks(&graph.ts, &RegionConfig::default());
        let best = find_best_block(&graph, &conflicts, &all_bricks, 4).expect("block exists");
        let part = best.partition.clone().unwrap();
        let enlarged = enlarge_concurrency(&graph, &conflicts, &part, &all_bricks);
        let check = evaluate_block(&graph, &conflicts, &enlarged.block);
        assert!(check.cost.valid);
        assert!(check.cost.unresolved() <= best.cost.unresolved());
    }
}
