//! CSC conflict detection.
//!
//! Two states are in *CSC conflict* when they carry the same binary signal
//! code but enable different sets of non-input signals (paper §4): no logic
//! function of the signal values can then tell them apart, so the non-input
//! signals cannot be implemented.  States with equal codes and equal enabled
//! non-input sets (USC violations that are not CSC violations) are harmless.

use crate::EncodedGraph;
use std::collections::HashMap;
use ts::StateId;

/// A pair of states witnessing a CSC violation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct CscConflict {
    /// First state (smaller id).
    pub a: StateId,
    /// Second state.
    pub b: StateId,
    /// The shared binary code.
    pub code: u64,
}

/// Enumerates every CSC conflict pair of the graph.
///
/// The result is sorted by `(code, a, b)` so that runs are deterministic.
pub fn conflict_pairs(graph: &EncodedGraph) -> Vec<CscConflict> {
    let mut by_code: HashMap<u64, Vec<StateId>> = HashMap::new();
    for s in 0..graph.num_states() {
        let s = StateId::from(s);
        by_code.entry(graph.code(s)).or_default().push(s);
    }
    let mut conflicts = Vec::new();
    for (&code, states) in &by_code {
        if states.len() < 2 {
            continue;
        }
        for i in 0..states.len() {
            for j in (i + 1)..states.len() {
                let (a, b) = (states[i], states[j]);
                if graph.enabled_non_input_mask(a) != graph.enabled_non_input_mask(b) {
                    let (a, b) = if a < b { (a, b) } else { (b, a) };
                    conflicts.push(CscConflict { a, b, code });
                }
            }
        }
    }
    conflicts.sort_by_key(|c| (c.code, c.a, c.b));
    conflicts
}

/// Enumerates every pair of distinct states with equal codes (USC
/// violations), whether or not they are CSC conflicts.
pub fn code_clash_pairs(graph: &EncodedGraph) -> Vec<(StateId, StateId)> {
    let mut by_code: HashMap<u64, Vec<StateId>> = HashMap::new();
    for s in 0..graph.num_states() {
        let s = StateId::from(s);
        by_code.entry(graph.code(s)).or_default().push(s);
    }
    let mut pairs = Vec::new();
    for states in by_code.values() {
        for i in 0..states.len() {
            for j in (i + 1)..states.len() {
                pairs.push((states[i], states[j]));
            }
        }
    }
    pairs.sort();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EncodedGraph;
    use stg::benchmarks;

    fn graph_of(stg: &stg::Stg) -> EncodedGraph {
        EncodedGraph::from_state_graph(&stg.state_graph(100_000).unwrap())
    }

    #[test]
    fn handshake_has_no_conflicts() {
        let graph = graph_of(&benchmarks::handshake());
        assert!(conflict_pairs(&graph).is_empty());
        assert!(code_clash_pairs(&graph).is_empty());
    }

    #[test]
    fn pulser_has_exactly_two_conflict_pairs() {
        let graph = graph_of(&benchmarks::pulser());
        let conflicts = conflict_pairs(&graph);
        assert_eq!(conflicts.len(), 2);
        for c in &conflicts {
            assert_eq!(graph.code(c.a), graph.code(c.b));
            assert_ne!(graph.enabled_non_input_mask(c.a), graph.enabled_non_input_mask(c.b));
            assert!(c.a < c.b);
        }
    }

    #[test]
    fn vme_read_has_conflicts() {
        let graph = graph_of(&benchmarks::vme_read());
        assert!(!conflict_pairs(&graph).is_empty());
    }

    #[test]
    fn sequencer_conflicts_grow_with_length() {
        let small = conflict_pairs(&graph_of(&benchmarks::sequencer(2))).len();
        let large = conflict_pairs(&graph_of(&benchmarks::sequencer(6))).len();
        assert!(large > small);
    }

    #[test]
    fn usc_violations_need_not_be_csc_violations() {
        // A dummy event duplicates a code without touching outputs.
        use stg::{Polarity, StgBuilder};
        let mut b = StgBuilder::new("dummy");
        let a = b.add_input("a");
        let ap = b.add_edge(a, Polarity::Rise);
        let eps = b.add_dummy("eps");
        let am = b.add_edge(a, Polarity::Fall);
        b.connect_cycle(&[ap, eps, am]);
        let graph = graph_of(&b.build().unwrap());
        assert!(conflict_pairs(&graph).is_empty());
        assert_eq!(code_clash_pairs(&graph).len(), 1);
    }

    #[test]
    fn conflict_enumeration_is_deterministic() {
        let graph = graph_of(&benchmarks::sequencer(4));
        let first = conflict_pairs(&graph);
        let second = conflict_pairs(&graph);
        assert_eq!(first, second);
    }
}
