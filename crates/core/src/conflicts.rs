//! CSC conflict detection, full and incremental.
//!
//! Two states are in *CSC conflict* when they carry the same binary signal
//! code but enable different sets of non-input signals (paper §4): no logic
//! function of the signal values can then tell them apart, so the non-input
//! signals cannot be implemented.  States with equal codes and equal enabled
//! non-input sets (USC violations that are not CSC violations) are harmless.
//!
//! Conflict detection runs once per solver iteration, so the code-bucketing
//! pass keeps its hash table, bucket vectors and per-bucket mask buffer in a
//! [`ConflictScratch`] that survives across calls: clearing retains every
//! allocation, and the table uses the FxHash fold rather than SipHash since
//! state codes are program-generated integers.  The scratch doubles as the
//! *code → states* index of its most recent bucketing pass
//! ([`ConflictScratch::states_with_code`]): a full pass indexes every state
//! of the graph, an incremental refresh only the re-examined states.
//!
//! After a state-signal insertion the solver does not re-bucket the whole
//! graph: [`refresh_conflicts_after_insertion`] re-examines only the states
//! descending from *dirty* codes of the previous graph (codes shared by two
//! or more states, plus the codes of the states the insertion split).  Every
//! other state kept a unique code, so it cannot participate in any new
//! conflict — see the function's documentation for the invariant.

use crate::EncodedGraph;
use bdd::{FxHashMap, FxHashSet};
use ts::StateId;

/// A pair of states witnessing a CSC violation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct CscConflict {
    /// First state (smaller id).
    pub a: StateId,
    /// Second state.
    pub b: StateId,
    /// The shared binary code.
    pub code: u64,
}

/// Reusable working memory of the code-bucketing passes, doubling as the
/// code → states index of its most recent bucketing pass (a full
/// [`conflict_pairs_with`] pass covers every state of the graph, an
/// incremental [`refresh_conflicts_after_insertion`] only the re-examined
/// dirty-descended states).
///
/// The solver calls conflict detection every iteration; holding one scratch
/// across iterations means the hash table, the per-code bucket vectors and
/// the per-bucket mask buffer are allocated once and then only cleared
/// (capacity retained).
#[derive(Default)]
pub struct ConflictScratch {
    /// code → index into `buckets`.
    index: FxHashMap<u64, u32>,
    /// Bucket storage; only the first `used` entries are live this pass.
    buckets: Vec<Vec<StateId>>,
    used: usize,
    /// Per-bucket enabled-mask buffer: masks are computed once per bucket
    /// member instead of once per member *pair* in the O(k²) comparison.
    masks: Vec<u64>,
}

impl ConflictScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        ConflictScratch::default()
    }

    /// Starts a fresh bucketing pass, retaining allocations.
    fn reset(&mut self) {
        self.index.clear();
        for bucket in &mut self.buckets[..self.used] {
            bucket.clear();
        }
        self.used = 0;
    }

    /// Adds `state` to the bucket of `code`.
    fn push(&mut self, code: u64, state: StateId) {
        let slot = *self.index.entry(code).or_insert_with(|| {
            let slot = self.used as u32;
            if self.used == self.buckets.len() {
                self.buckets.push(Vec::new());
            }
            self.used += 1;
            slot
        });
        self.buckets[slot as usize].push(state);
    }

    /// Buckets every state of `graph` by code; returns the live buckets.
    fn bucket_by_code<'a>(&'a mut self, graph: &EncodedGraph) -> &'a [Vec<StateId>] {
        self.reset();
        for s in 0..graph.num_states() {
            let s = StateId::from(s);
            self.push(graph.code(s), s);
        }
        &self.buckets[..self.used]
    }

    /// The states carrying `code` in the most recent bucketing pass.
    ///
    /// After a full [`conflict_pairs_with`] pass this is the complete
    /// code → states index of the graph; after an incremental
    /// [`refresh_conflicts_after_insertion`] it covers only the
    /// dirty-descended states that pass re-examined (states with unique,
    /// clean codes are absent).  Returns an empty slice for codes the pass
    /// never bucketed.
    pub fn states_with_code(&self, code: u64) -> &[StateId] {
        match self.index.get(&code) {
            Some(&slot) => &self.buckets[slot as usize],
            None => &[],
        }
    }

    /// Collects the codes shared by at least two states in the most recent
    /// bucketing pass into `out` (cleared first).
    pub fn shared_codes_into(&self, out: &mut FxHashSet<u64>) {
        out.clear();
        for (&code, &slot) in &self.index {
            if self.buckets[slot as usize].len() >= 2 {
                out.insert(code);
            }
        }
    }

    /// Enumerates the CSC conflicts of the live buckets into `out` (cleared
    /// first), sorted by `(code, a, b)`.
    fn enumerate_conflicts(&mut self, graph: &EncodedGraph, out: &mut Vec<CscConflict>) {
        out.clear();
        for slot in 0..self.used {
            let states = &self.buckets[slot];
            if states.len() < 2 {
                continue;
            }
            let code = graph.code(states[0]);
            self.masks.clear();
            self.masks.extend(states.iter().map(|&s| graph.enabled_non_input_mask(s)));
            for i in 0..states.len() {
                for j in (i + 1)..states.len() {
                    if self.masks[i] != self.masks[j] {
                        let (a, b) = (states[i], states[j]);
                        let (a, b) = if a < b { (a, b) } else { (b, a) };
                        out.push(CscConflict { a, b, code });
                    }
                }
            }
        }
        out.sort_by_key(|c| (c.code, c.a, c.b));
    }
}

/// Enumerates every CSC conflict pair of the graph.
///
/// The result is sorted by `(code, a, b)` so that runs are deterministic.
/// Convenience wrapper over [`conflict_pairs_with`] that allocates a fresh
/// scratch; iterative callers should hold a [`ConflictScratch`] instead.
pub fn conflict_pairs(graph: &EncodedGraph) -> Vec<CscConflict> {
    let mut scratch = ConflictScratch::new();
    let mut out = Vec::new();
    conflict_pairs_with(graph, &mut scratch, &mut out);
    out
}

/// Enumerates every CSC conflict pair of the graph into `out` (cleared
/// first), reusing `scratch` across calls.
pub fn conflict_pairs_with(
    graph: &EncodedGraph,
    scratch: &mut ConflictScratch,
    out: &mut Vec<CscConflict>,
) {
    scratch.bucket_by_code(graph);
    scratch.enumerate_conflicts(graph, out);
}

/// Incrementally refreshes the conflict list after a state-signal insertion.
///
/// `origin` maps every state of `graph` (the post-insertion graph) to its
/// ancestor in the pre-insertion graph, `old_codes` holds the ancestor
/// codes, and `dirty` holds the ancestor codes that must be re-examined:
/// the codes shared by two or more pre-insertion states plus the codes of
/// the states the insertion split into pre-/post-copies.
///
/// **Invariant.** Event insertion preserves the values of all existing
/// signals, so the code of a post-insertion state restricted to the old
/// signals equals the code of its ancestor.  Two states of the new graph can
/// therefore share a (full) code only if their ancestors shared a code —
/// i.e. descend from the same old bucket — and a bucket of the new graph
/// with two or more members descends either from an old bucket with two or
/// more members or from a split state (whose two copies share an ancestor).
/// Re-bucketing only the states with dirty ancestor codes thus enumerates
/// *exactly* the conflicts a from-scratch [`conflict_pairs_with`] pass would
/// find; the test-suite asserts this equality after every insertion.
///
/// `clash_codes` receives the codes shared by two or more states of the new
/// graph, i.e. the dirty-set seed for the *next* insertion.
#[allow(clippy::too_many_arguments)]
pub fn refresh_conflicts_after_insertion(
    graph: &EncodedGraph,
    origin: &[StateId],
    old_codes: &[u64],
    dirty: &FxHashSet<u64>,
    scratch: &mut ConflictScratch,
    out: &mut Vec<CscConflict>,
    clash_codes: &mut FxHashSet<u64>,
) {
    debug_assert_eq!(origin.len(), graph.num_states());
    scratch.reset();
    for s in 0..graph.num_states() {
        let s = StateId::from(s);
        if dirty.contains(&old_codes[origin[s.index()].index()]) {
            scratch.push(graph.code(s), s);
        }
    }
    clash_codes.clear();
    for slot in 0..scratch.used {
        let states = &scratch.buckets[slot];
        if states.len() >= 2 {
            clash_codes.insert(graph.code(states[0]));
        }
    }
    scratch.enumerate_conflicts(graph, out);
}

/// Returns `true` as soon as any CSC conflict exists (early-exit variant
/// used for the termination check).
///
/// A bucket contains a conflicting pair exactly when not all of its enabled
/// non-input masks are equal, i.e. when some mask differs from the first.
pub fn has_conflict(graph: &EncodedGraph, scratch: &mut ConflictScratch) -> bool {
    scratch.bucket_by_code(graph).iter().any(|states| {
        let first = states.first().map(|&s| graph.enabled_non_input_mask(s));
        states.iter().skip(1).any(|&b| Some(graph.enabled_non_input_mask(b)) != first)
    })
}

/// Enumerates every pair of distinct states with equal codes (USC
/// violations), whether or not they are CSC conflicts.
pub fn code_clash_pairs(graph: &EncodedGraph) -> Vec<(StateId, StateId)> {
    let mut scratch = ConflictScratch::new();
    let mut pairs = Vec::new();
    for states in scratch.bucket_by_code(graph) {
        for i in 0..states.len() {
            for j in (i + 1)..states.len() {
                pairs.push((states[i], states[j]));
            }
        }
    }
    pairs.sort();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EncodedGraph;
    use stg::benchmarks;

    fn graph_of(stg: &stg::Stg) -> EncodedGraph {
        EncodedGraph::from_state_graph(&stg.state_graph(100_000).unwrap())
    }

    #[test]
    fn handshake_has_no_conflicts() {
        let graph = graph_of(&benchmarks::handshake());
        assert!(conflict_pairs(&graph).is_empty());
        assert!(code_clash_pairs(&graph).is_empty());
        assert!(!has_conflict(&graph, &mut ConflictScratch::new()));
    }

    #[test]
    fn pulser_has_exactly_two_conflict_pairs() {
        let graph = graph_of(&benchmarks::pulser());
        let conflicts = conflict_pairs(&graph);
        assert_eq!(conflicts.len(), 2);
        for c in &conflicts {
            assert_eq!(graph.code(c.a), graph.code(c.b));
            assert_ne!(graph.enabled_non_input_mask(c.a), graph.enabled_non_input_mask(c.b));
            assert!(c.a < c.b);
        }
        assert!(has_conflict(&graph, &mut ConflictScratch::new()));
    }

    #[test]
    fn vme_read_has_conflicts() {
        let graph = graph_of(&benchmarks::vme_read());
        assert!(!conflict_pairs(&graph).is_empty());
    }

    #[test]
    fn sequencer_conflicts_grow_with_length() {
        let small = conflict_pairs(&graph_of(&benchmarks::sequencer(2))).len();
        let large = conflict_pairs(&graph_of(&benchmarks::sequencer(6))).len();
        assert!(large > small);
    }

    #[test]
    fn usc_violations_need_not_be_csc_violations() {
        // A dummy event duplicates a code without touching outputs.
        use stg::{Polarity, StgBuilder};
        let mut b = StgBuilder::new("dummy");
        let a = b.add_input("a");
        let ap = b.add_edge(a, Polarity::Rise);
        let eps = b.add_dummy("eps");
        let am = b.add_edge(a, Polarity::Fall);
        b.connect_cycle(&[ap, eps, am]);
        let graph = graph_of(&b.build().unwrap());
        assert!(conflict_pairs(&graph).is_empty());
        assert_eq!(code_clash_pairs(&graph).len(), 1);
        assert!(!has_conflict(&graph, &mut ConflictScratch::new()));
    }

    #[test]
    fn conflict_enumeration_is_deterministic() {
        let graph = graph_of(&benchmarks::sequencer(4));
        let first = conflict_pairs(&graph);
        let second = conflict_pairs(&graph);
        assert_eq!(first, second);
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let mut scratch = ConflictScratch::new();
        let mut out = Vec::new();
        for model in [benchmarks::pulser(), benchmarks::handshake(), benchmarks::sequencer(4)] {
            let graph = graph_of(&model);
            conflict_pairs_with(&graph, &mut scratch, &mut out);
            assert_eq!(out, conflict_pairs(&graph), "{}", model.name());
            assert_eq!(!out.is_empty(), has_conflict(&graph, &mut scratch), "{}", model.name());
        }
    }

    #[test]
    fn code_index_answers_states_with_code_queries() {
        let graph = graph_of(&benchmarks::pulser());
        let mut scratch = ConflictScratch::new();
        let mut out = Vec::new();
        conflict_pairs_with(&graph, &mut scratch, &mut out);
        for s in 0..graph.num_states() {
            let s = StateId::from(s);
            let bucket = scratch.states_with_code(graph.code(s));
            assert!(bucket.contains(&s), "state {s} missing from its code bucket");
        }
        // A code no state carries yields the empty slice, not a panic.
        assert!(scratch.states_with_code(u64::MAX).is_empty());
    }

    #[test]
    fn shared_codes_match_clash_buckets() {
        let graph = graph_of(&benchmarks::sequencer(3));
        let mut scratch = ConflictScratch::new();
        let mut out = Vec::new();
        conflict_pairs_with(&graph, &mut scratch, &mut out);
        let mut shared = FxHashSet::default();
        scratch.shared_codes_into(&mut shared);
        for (a, b) in code_clash_pairs(&graph) {
            assert!(shared.contains(&graph.code(a)), "clash {a}/{b} code missing");
        }
        for &code in &shared {
            assert!(scratch.states_with_code(code).len() >= 2);
        }
    }
}
