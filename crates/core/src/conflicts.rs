//! CSC conflict detection.
//!
//! Two states are in *CSC conflict* when they carry the same binary signal
//! code but enable different sets of non-input signals (paper §4): no logic
//! function of the signal values can then tell them apart, so the non-input
//! signals cannot be implemented.  States with equal codes and equal enabled
//! non-input sets (USC violations that are not CSC violations) are harmless.
//!
//! Conflict detection runs once per solver iteration, so the code-bucketing
//! pass keeps its hash table and bucket vectors in a [`ConflictScratch`]
//! that survives across calls: clearing retains every allocation, and the
//! table uses the FxHash fold rather than SipHash since state codes are
//! program-generated integers.

use crate::EncodedGraph;
use bdd::FxHashMap;
use ts::StateId;

/// A pair of states witnessing a CSC violation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct CscConflict {
    /// First state (smaller id).
    pub a: StateId,
    /// Second state.
    pub b: StateId,
    /// The shared binary code.
    pub code: u64,
}

/// Reusable working memory of the code-bucketing passes.
///
/// The solver calls conflict detection every iteration; holding one scratch
/// across iterations means the hash table and the per-code bucket vectors
/// are allocated once and then only cleared (capacity retained).
#[derive(Default)]
pub struct ConflictScratch {
    /// code → index into `buckets`.
    index: FxHashMap<u64, u32>,
    /// Bucket storage; only the first `used` entries are live this pass.
    buckets: Vec<Vec<StateId>>,
    used: usize,
}

impl ConflictScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        ConflictScratch::default()
    }

    /// Buckets every state of `graph` by code; returns the live buckets.
    fn bucket_by_code<'a>(&'a mut self, graph: &EncodedGraph) -> &'a [Vec<StateId>] {
        self.index.clear();
        for bucket in &mut self.buckets[..self.used] {
            bucket.clear();
        }
        self.used = 0;
        for s in 0..graph.num_states() {
            let s = StateId::from(s);
            let slot = *self.index.entry(graph.code(s)).or_insert_with(|| {
                let slot = self.used as u32;
                if self.used == self.buckets.len() {
                    self.buckets.push(Vec::new());
                }
                self.used += 1;
                slot
            });
            self.buckets[slot as usize].push(s);
        }
        &self.buckets[..self.used]
    }
}

/// Enumerates every CSC conflict pair of the graph.
///
/// The result is sorted by `(code, a, b)` so that runs are deterministic.
/// Convenience wrapper over [`conflict_pairs_with`] that allocates a fresh
/// scratch; iterative callers should hold a [`ConflictScratch`] instead.
pub fn conflict_pairs(graph: &EncodedGraph) -> Vec<CscConflict> {
    let mut scratch = ConflictScratch::new();
    let mut out = Vec::new();
    conflict_pairs_with(graph, &mut scratch, &mut out);
    out
}

/// Enumerates every CSC conflict pair of the graph into `out` (cleared
/// first), reusing `scratch` across calls.
pub fn conflict_pairs_with(
    graph: &EncodedGraph,
    scratch: &mut ConflictScratch,
    out: &mut Vec<CscConflict>,
) {
    out.clear();
    for states in scratch.bucket_by_code(graph) {
        if states.len() < 2 {
            continue;
        }
        let code = graph.code(states[0]);
        for i in 0..states.len() {
            for j in (i + 1)..states.len() {
                let (a, b) = (states[i], states[j]);
                if graph.enabled_non_input_mask(a) != graph.enabled_non_input_mask(b) {
                    let (a, b) = if a < b { (a, b) } else { (b, a) };
                    out.push(CscConflict { a, b, code });
                }
            }
        }
    }
    out.sort_by_key(|c| (c.code, c.a, c.b));
}

/// Returns `true` as soon as any CSC conflict exists (early-exit variant
/// used for the termination check).
///
/// A bucket contains a conflicting pair exactly when not all of its enabled
/// non-input masks are equal, i.e. when some mask differs from the first.
pub fn has_conflict(graph: &EncodedGraph, scratch: &mut ConflictScratch) -> bool {
    scratch.bucket_by_code(graph).iter().any(|states| {
        let first = states.first().map(|&s| graph.enabled_non_input_mask(s));
        states.iter().skip(1).any(|&b| Some(graph.enabled_non_input_mask(b)) != first)
    })
}

/// Enumerates every pair of distinct states with equal codes (USC
/// violations), whether or not they are CSC conflicts.
pub fn code_clash_pairs(graph: &EncodedGraph) -> Vec<(StateId, StateId)> {
    let mut scratch = ConflictScratch::new();
    let mut pairs = Vec::new();
    for states in scratch.bucket_by_code(graph) {
        for i in 0..states.len() {
            for j in (i + 1)..states.len() {
                pairs.push((states[i], states[j]));
            }
        }
    }
    pairs.sort();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EncodedGraph;
    use stg::benchmarks;

    fn graph_of(stg: &stg::Stg) -> EncodedGraph {
        EncodedGraph::from_state_graph(&stg.state_graph(100_000).unwrap())
    }

    #[test]
    fn handshake_has_no_conflicts() {
        let graph = graph_of(&benchmarks::handshake());
        assert!(conflict_pairs(&graph).is_empty());
        assert!(code_clash_pairs(&graph).is_empty());
        assert!(!has_conflict(&graph, &mut ConflictScratch::new()));
    }

    #[test]
    fn pulser_has_exactly_two_conflict_pairs() {
        let graph = graph_of(&benchmarks::pulser());
        let conflicts = conflict_pairs(&graph);
        assert_eq!(conflicts.len(), 2);
        for c in &conflicts {
            assert_eq!(graph.code(c.a), graph.code(c.b));
            assert_ne!(graph.enabled_non_input_mask(c.a), graph.enabled_non_input_mask(c.b));
            assert!(c.a < c.b);
        }
        assert!(has_conflict(&graph, &mut ConflictScratch::new()));
    }

    #[test]
    fn vme_read_has_conflicts() {
        let graph = graph_of(&benchmarks::vme_read());
        assert!(!conflict_pairs(&graph).is_empty());
    }

    #[test]
    fn sequencer_conflicts_grow_with_length() {
        let small = conflict_pairs(&graph_of(&benchmarks::sequencer(2))).len();
        let large = conflict_pairs(&graph_of(&benchmarks::sequencer(6))).len();
        assert!(large > small);
    }

    #[test]
    fn usc_violations_need_not_be_csc_violations() {
        // A dummy event duplicates a code without touching outputs.
        use stg::{Polarity, StgBuilder};
        let mut b = StgBuilder::new("dummy");
        let a = b.add_input("a");
        let ap = b.add_edge(a, Polarity::Rise);
        let eps = b.add_dummy("eps");
        let am = b.add_edge(a, Polarity::Fall);
        b.connect_cycle(&[ap, eps, am]);
        let graph = graph_of(&b.build().unwrap());
        assert!(conflict_pairs(&graph).is_empty());
        assert_eq!(code_clash_pairs(&graph).len(), 1);
        assert!(!has_conflict(&graph, &mut ConflictScratch::new()));
    }

    #[test]
    fn conflict_enumeration_is_deterministic() {
        let graph = graph_of(&benchmarks::sequencer(4));
        let first = conflict_pairs(&graph);
        let second = conflict_pairs(&graph);
        assert_eq!(first, second);
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let mut scratch = ConflictScratch::new();
        let mut out = Vec::new();
        for model in [benchmarks::pulser(), benchmarks::handshake(), benchmarks::sequencer(4)] {
            let graph = graph_of(&model);
            conflict_pairs_with(&graph, &mut scratch, &mut out);
            assert_eq!(out, conflict_pairs(&graph), "{}", model.name());
            assert_eq!(!out.is_empty(), has_conflict(&graph, &mut scratch), "{}", model.name());
        }
    }
}
