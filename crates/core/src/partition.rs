//! I-partitions: from a block of states to the excitation regions of the
//! new state signal.
//!
//! Given a bipartition `{b, b̄}` of the states, the paper derives an
//! *I-partition* `(S0, S+, S1, S-)` for the new signal `x`:
//!
//! * `S+` (= `ER(x+)`) is the minimal well-formed exit border of `b̄`: the
//!   states of `b̄` from which `b` is entered, closed forward inside `b̄`,
//! * `S-` (= `ER(x-)`) is the minimal well-formed exit border of `b`,
//! * `S1 = b − S-` and `S0 = b̄ − S+` are the stable-1 and stable-0 regions.
//!
//! The only boundary crossings the construction can produce are the legal
//! ones `S0 → S+ → S1 → S- → S0` plus the two "short-circuit" crossings
//! `S+ → S-` and `S- → S+`, which are allowed by the definition but would
//! make the new signal non-persistent; they are counted so the cost
//! function can avoid them.

use ts::{StateSet, TransitionSystem};

/// The four blocks of an I-partition for one new state signal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IPartition {
    /// The block `b`: states where the new signal is (stably or while
    /// falling) 1.
    pub block: StateSet,
    /// `ER(x+)`: states where the new signal is 0 and excited to rise.
    pub er_rise: StateSet,
    /// `ER(x-)`: states where the new signal is 1 and excited to fall.
    pub er_fall: StateSet,
    /// States where the new signal is stably 1.
    pub s1: StateSet,
    /// States where the new signal is stably 0.
    pub s0: StateSet,
}

/// Computes the minimal well-formed exit border of `set` (paper §4):
/// the states of `set` with a transition leaving `set`, closed under
/// successors that stay inside `set`.
pub fn minimal_well_formed_exit_border(ts: &TransitionSystem, set: &StateSet) -> StateSet {
    let mut border = ts.exit_border(set);
    // Close forward: a successor (inside the set) of a border state must be
    // in the border too, otherwise there would be a transition from the
    // border back into the interior.  A worklist of newly added states
    // avoids re-cloning and re-sweeping the whole border every round —
    // this runs once per scored candidate in the solver hot loop.
    let mut worklist: Vec<ts::StateId> = border.iter().collect();
    while let Some(s) = worklist.pop() {
        for &(_, target) in ts.successors(s) {
            if set.contains(target) && border.insert(target) {
                worklist.push(target);
            }
        }
    }
    border
}

impl IPartition {
    /// Derives the I-partition induced by `block`.
    ///
    /// Returns `None` when the partition is degenerate: the block is empty
    /// or covers every state, or one of the derived excitation regions is
    /// empty (the new signal would never rise or never fall).
    pub fn from_block(ts: &TransitionSystem, block: &StateSet) -> Option<IPartition> {
        if block.is_empty() || block.len() == ts.num_states() {
            return None;
        }
        let complement = block.complement();
        let er_fall = minimal_well_formed_exit_border(ts, block);
        let er_rise = minimal_well_formed_exit_border(ts, &complement);
        if er_fall.is_empty() || er_rise.is_empty() {
            return None;
        }
        let s1 = block.difference(&er_fall);
        let s0 = complement.difference(&er_rise);
        Some(IPartition { block: block.clone(), er_rise, er_fall, s1, s0 })
    }

    /// The stable value the new signal takes in `state` once the insertion
    /// has settled: 1 inside the block, 0 outside.
    pub fn stable_value(&self, state: ts::StateId) -> bool {
        self.block.contains(state)
    }

    /// Returns `true` if the bipartition puts `a` and `b` on different
    /// sides.
    pub fn separates(&self, a: ts::StateId, b: ts::StateId) -> bool {
        self.block.contains(a) != self.block.contains(b)
    }

    /// Returns `true` if the pair is separated and neither state lies in an
    /// excitation region of the new signal, so the conflict is guaranteed to
    /// be resolved (border states may produce secondary conflicts, paper
    /// Fig. 3).
    pub fn cleanly_separates(&self, a: ts::StateId, b: ts::StateId) -> bool {
        self.separates(a, b)
            && !self.er_rise.contains(a)
            && !self.er_rise.contains(b)
            && !self.er_fall.contains(a)
            && !self.er_fall.contains(b)
    }

    /// Number of transitions that jump directly between the two excitation
    /// regions (`S+ → S-` or `S- → S+`).  These are allowed by the
    /// I-partition definition but make the inserted signal non-persistent,
    /// so the cost function penalises them heavily.
    pub fn short_circuit_transitions(&self, ts: &TransitionSystem) -> usize {
        ts.transitions()
            .iter()
            .filter(|t| {
                (self.er_rise.contains(t.source) && self.er_fall.contains(t.target))
                    || (self.er_fall.contains(t.source) && self.er_rise.contains(t.target))
            })
            .count()
    }

    /// The number of distinct events that enter `ER(x+)` or `ER(x-)` — the
    /// *trigger* count used by the paper as its logic-complexity estimate.
    pub fn trigger_event_count(&self, ts: &TransitionSystem) -> usize {
        let mut triggers = std::collections::HashSet::new();
        for t in ts.transitions() {
            if !self.er_rise.contains(t.source) && self.er_rise.contains(t.target) {
                triggers.insert(("rise", t.event));
            }
            if !self.er_fall.contains(t.source) && self.er_fall.contains(t.target) {
                triggers.insert(("fall", t.event));
            }
        }
        triggers.len()
    }

    /// Difference between the sizes of the two sides of the bipartition
    /// (used as a tie-breaker: balanced partitions tend to solve more
    /// secondary conflicts later).
    pub fn imbalance(&self) -> usize {
        let inside = self.block.len();
        let outside = self.block.capacity() - inside;
        inside.abs_diff(outside)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts::{StateId, TransitionSystemBuilder};

    /// A ring of six states (the pulser shape).
    fn ring(n: usize) -> TransitionSystem {
        let mut b = TransitionSystemBuilder::new();
        let states: Vec<StateId> = (0..n).map(|i| b.add_state(format!("s{i}"))).collect();
        for i in 0..n {
            b.add_transition(states[i], format!("e{i}"), states[(i + 1) % n]);
        }
        b.build(states[0]).unwrap()
    }

    fn set(ts: &TransitionSystem, ids: &[u32]) -> StateSet {
        StateSet::from_states(ts.num_states(), ids.iter().map(|&i| StateId(i)))
    }

    #[test]
    fn exit_border_of_a_ring_segment() {
        let ts = ring(6);
        let block = set(&ts, &[1, 2, 3]);
        let eb = ts.exit_border(&block);
        assert_eq!(eb, set(&ts, &[3]));
        let mwfeb = minimal_well_formed_exit_border(&ts, &block);
        assert_eq!(mwfeb, set(&ts, &[3]), "the plain exit border is already well-formed");
    }

    #[test]
    fn mwfeb_grows_until_well_formed() {
        // Block {1, 2, 4} in a 6-ring: state 2 exits (to 3) and state 4
        // exits (to 5); the successor of 1 inside the block is 2 which is
        // already a border state, so MWFEB = {2, 4}.
        let ts = ring(6);
        let block = set(&ts, &[1, 2, 4]);
        let mwfeb = minimal_well_formed_exit_border(&ts, &block);
        assert_eq!(mwfeb, set(&ts, &[2, 4]));
    }

    #[test]
    fn ipartition_of_a_ring_half() {
        let ts = ring(6);
        let block = set(&ts, &[3, 4, 5]);
        let part = IPartition::from_block(&ts, &block).unwrap();
        assert_eq!(part.er_fall, set(&ts, &[5]), "x falls when leaving the block");
        assert_eq!(part.er_rise, set(&ts, &[2]), "x rises when about to enter the block");
        assert_eq!(part.s1, set(&ts, &[3, 4]));
        assert_eq!(part.s0, set(&ts, &[0, 1]));
        assert!(part.stable_value(StateId(4)));
        assert!(!part.stable_value(StateId(0)));
        assert!(part.separates(StateId(0), StateId(4)));
        assert!(part.cleanly_separates(StateId(0), StateId(4)));
        assert!(!part.cleanly_separates(StateId(2), StateId(4)), "state 2 is in ER(x+)");
        assert_eq!(part.short_circuit_transitions(&ts), 0);
        assert_eq!(part.trigger_event_count(&ts), 2);
        assert_eq!(part.imbalance(), 0);
    }

    #[test]
    fn degenerate_blocks_are_rejected() {
        let ts = ring(4);
        assert!(IPartition::from_block(&ts, &StateSet::new(4)).is_none());
        assert!(IPartition::from_block(&ts, &StateSet::full(4)).is_none());
    }

    #[test]
    fn adjacent_excitation_regions_short_circuit() {
        // Block {1} in a 4-ring: ER(x-) = {1}, ER(x+) = MWFEB({0,2,3}) =
        // {0}?  State 0 exits the complement into 1; closure adds nothing
        // within the complement on the path 0 -> 1?  Successor of 0 is 1
        // which is not in the complement, so ER(x+) = {0} and the partition
        // has a direct S+ -> S- transition.
        let ts = ring(4);
        let block = set(&ts, &[1]);
        let part = IPartition::from_block(&ts, &block).unwrap();
        assert_eq!(part.er_fall, set(&ts, &[1]));
        assert!(part.er_rise.contains(StateId(0)));
        assert!(part.short_circuit_transitions(&ts) >= 1);
        assert!(part.s1.is_empty());
    }

    #[test]
    fn two_state_block_in_a_small_ring() {
        // Block {0, 1} in a 3-ring: only state 1 exits the block and its
        // in-block successors are none, so the border stays minimal and the
        // stable-1 region is {0}.
        let ts = ring(3);
        let block = set(&ts, &[0, 1]);
        let mwfeb = minimal_well_formed_exit_border(&ts, &block);
        assert_eq!(mwfeb, set(&ts, &[1]));
        let part = IPartition::from_block(&ts, &block).unwrap();
        assert_eq!(part.s1, set(&ts, &[0]));
        assert_eq!(part.er_fall, set(&ts, &[1]));
        assert_eq!(part.er_rise, set(&ts, &[2]));
        assert!(part.s0.is_empty());
    }
}
