//! Insertion of a complete state signal (a rising and a falling transition)
//! into an encoded graph.

use crate::partition::IPartition;
use crate::{CscError, EncodedGraph};
use stg::{Polarity, Signal, SignalId, SignalKind};
use ts::{insert_event, InsertionStyle, StateId, StateSet};

/// A state-signal insertion together with its state provenance.
///
/// The `origin` map is what makes incremental conflict maintenance
/// possible: every state of the new graph descends from exactly one state
/// of the pre-insertion graph (its pre- or post-copy under the two event
/// insertions), and event insertion preserves the values of all existing
/// signals, so the new state's code restricted to the old signals equals
/// its ancestor's code.
#[derive(Clone, Debug)]
pub struct InsertedSignal {
    /// The post-insertion encoded graph (reachable states only, codes
    /// recomputed and validated).
    pub graph: EncodedGraph,
    /// For every state of `graph`, the pre-insertion state it descends from.
    pub origin: Vec<StateId>,
}

/// Inserts a new internal signal `name` whose rising transition has
/// excitation region `partition.er_rise` and whose falling transition has
/// excitation region `partition.er_fall`, using the event-insertion scheme
/// of Fig. 2 twice.
///
/// The returned graph is restricted to its reachable states and its codes
/// are recomputed from scratch, which both validates that the insertion
/// produced a consistent encoding and assigns the new signal its value in
/// every state.
///
/// # Errors
///
/// Returns [`CscError::Insertion`] if either event insertion is degenerate
/// and [`CscError::InconsistentInsertion`] if the resulting labelling admits
/// no consistent code (which indicates an invalid I-partition).
pub fn insert_state_signal(
    graph: &EncodedGraph,
    name: &str,
    partition: &IPartition,
    style: InsertionStyle,
) -> Result<EncodedGraph, CscError> {
    insert_state_signal_traced(graph, name, partition, style).map(|t| t.graph)
}

/// Like [`insert_state_signal`] but also returns the ancestor map from the
/// states of the new graph back to the states of `graph`, for incremental
/// conflict maintenance by the solver.
///
/// # Errors
///
/// Same as [`insert_state_signal`].
pub fn insert_state_signal_traced(
    graph: &EncodedGraph,
    name: &str,
    partition: &IPartition,
    style: InsertionStyle,
) -> Result<InsertedSignal, CscError> {
    // Insert the rising transition.
    let rise = insert_event(&graph.ts, &partition.er_rise, &format!("{name}+"), style)?;
    // The pre-copies of the first insertion keep their original indices, so
    // the falling excitation region maps onto the same indices in the new,
    // larger system.
    let mut er_fall = StateSet::new(rise.ts.num_states());
    for s in partition.er_fall.iter() {
        er_fall.insert(rise.pre_copy[s.index()]);
    }
    let fall = insert_event(&rise.ts, &er_fall, &format!("{name}-"), style)?;

    // Extend the signal table and the per-event edge table.
    let new_signal = SignalId::from(graph.signals.len());
    let mut signals = graph.signals.clone();
    signals.push(Signal { name: name.to_owned(), kind: SignalKind::Internal });
    let mut event_edges = graph.event_edges.clone();
    debug_assert_eq!(rise.event.index(), event_edges.len());
    event_edges.push(Some((new_signal, Polarity::Rise)));
    debug_assert_eq!(fall.event.index(), event_edges.len());
    event_edges.push(Some((new_signal, Polarity::Fall)));

    // Drop any state the insertion left unreachable (possible with the
    // `Early` style) and recompute all codes, which also checks consistency.
    let (ts, old_of_new) = fall.ts.restricted_to_reachable();
    // Ancestry: final state → state of `fall.ts` → state of `rise.ts` →
    // state of the original graph.
    let origin = old_of_new
        .iter()
        .map(|&in_fall| rise.origin[fall.origin[in_fall.index()].index()])
        .collect();
    let mut result = EncodedGraph { ts, codes: Vec::new(), signals, event_edges };
    result.codes = vec![0; result.ts.num_states()];
    result.recompute_codes(name)?;
    Ok(InsertedSignal { graph: result, origin })
}

/// Convenience: the number of states of `graph` whose code equals `code`.
///
/// Iterative callers should prefer [`states_with_code_into`] (buffer reuse)
/// or the code index a [`crate::ConflictScratch`] holds after a bucketing
/// pass ([`crate::ConflictScratch::states_with_code`]).
pub fn states_with_code(graph: &EncodedGraph, code: u64) -> Vec<StateId> {
    let mut out = Vec::new();
    states_with_code_into(graph, code, &mut out);
    out
}

/// Collects the states of `graph` whose code equals `code` into `out`
/// (cleared first, capacity retained across calls).
pub fn states_with_code_into(graph: &EncodedGraph, code: u64, out: &mut Vec<StateId>) {
    out.clear();
    out.extend((0..graph.num_states()).map(StateId::from).filter(|&s| graph.code(s) == code));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflicts::conflict_pairs;
    use crate::search::{evaluate_block, find_best_block};
    use regions::{bricks, RegionConfig};
    use stg::benchmarks;
    use ts::traces::projected_trace_equivalent;

    fn graph_of(model: &stg::Stg) -> EncodedGraph {
        EncodedGraph::from_state_graph(&model.state_graph(100_000).unwrap())
    }

    #[test]
    fn inserting_a_signal_into_the_pulser_reduces_conflicts() {
        let graph = graph_of(&benchmarks::pulser());
        let conflicts = conflict_pairs(&graph);
        let all_bricks = bricks(&graph.ts, &RegionConfig::default());
        let best = find_best_block(&graph, &conflicts, &all_bricks, 4).unwrap();
        let part = best.partition.unwrap();
        let new_graph =
            insert_state_signal(&graph, "csc0", &part, InsertionStyle::Concurrent).unwrap();
        assert_eq!(new_graph.num_signals(), 3);
        assert!(new_graph.ts.num_states() > graph.ts.num_states());
        let remaining = conflict_pairs(&new_graph);
        assert!(remaining.len() < conflicts.len());
        // The observable behaviour (hiding the new signal) is unchanged.
        assert!(projected_trace_equivalent(&graph.ts, &new_graph.ts, &["csc0+", "csc0-"]));
        // The new signal's events are labelled correctly.
        let plus = new_graph.ts.event_id("csc0+").unwrap();
        assert_eq!(new_graph.event_edges[plus.index()].unwrap().1, Polarity::Rise);
    }

    #[test]
    fn insertion_preserves_determinism_and_speed_independence_basics() {
        let graph = graph_of(&benchmarks::vme_read());
        let conflicts = conflict_pairs(&graph);
        let all_bricks = bricks(&graph.ts, &RegionConfig::default());
        let best = find_best_block(&graph, &conflicts, &all_bricks, 4).unwrap();
        let part = best.partition.unwrap();
        let new_graph =
            insert_state_signal(&graph, "csc0", &part, InsertionStyle::Concurrent).unwrap();
        assert!(new_graph.ts.is_deterministic());
        assert!(new_graph.ts.is_commutative());
        // Output signals that were persistent stay persistent.
        for e in 0..graph.ts.num_events() {
            let e = ts::EventId::from(e);
            if !graph.is_input_event(e) && graph.ts.is_persistent(e) {
                let name = graph.ts.event_name(e);
                let new_e = new_graph.ts.event_id(name).unwrap();
                assert!(new_graph.ts.is_persistent(new_e), "event {name} lost persistency");
            }
        }
    }

    #[test]
    fn invalid_partition_is_rejected_by_consistency_check() {
        // Hand-craft a partition whose ERs touch: in a 4-cycle handshake use
        // adjacent singleton borders; the resulting labelling either stays
        // consistent (fine) or the insertion reports the inconsistency —
        // it must never panic or silently corrupt codes.
        let graph = graph_of(&benchmarks::handshake());
        let block = StateSet::from_states(graph.num_states(), [ts::StateId(1)]);
        if let Some(part) = IPartition::from_block(&graph.ts, &block) {
            match insert_state_signal(&graph, "z", &part, InsertionStyle::Concurrent) {
                Ok(g) => assert!(g.ts.is_deterministic()),
                Err(CscError::InconsistentInsertion { .. }) => {}
                Err(other) => panic!("unexpected error {other}"),
            }
        }
    }

    #[test]
    fn states_with_code_lists_all_occurrences() {
        let graph = graph_of(&benchmarks::pulser());
        let evaluated = evaluate_block(
            &graph,
            &conflict_pairs(&graph),
            &StateSet::from_states(graph.num_states(), [ts::StateId(0)]),
        );
        let _ = evaluated; // evaluation of a tiny block must not panic
        let zero_states = states_with_code(&graph, 0);
        assert_eq!(zero_states.len(), 2);
    }
}
