//! Next-state function extraction.

use crate::cube::{Cover, Cube};
use csc::EncodedGraph;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use stg::{Polarity, SignalId};
use ts::StateId;

/// Errors raised while deriving next-state functions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LogicError {
    /// Two reachable states with the same code require different next values
    /// for the signal — i.e. a CSC conflict; the functions are not
    /// implementable.
    CscViolation {
        /// The signal whose function is ill-defined.
        signal: String,
        /// The shared code of the conflicting states.
        code: u64,
    },
    /// The graph has more than 64 signals.
    TooManySignals {
        /// Number of signals present.
        count: usize,
    },
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::CscViolation { signal, code } => write!(
                f,
                "signal '{signal}' has no well-defined next-state value for code {code:b} (CSC violation)"
            ),
            LogicError::TooManySignals { count } => {
                write!(f, "logic derivation supports at most 64 signals, got {count}")
            }
        }
    }
}

impl Error for LogicError {}

/// The ON/OFF/don't-care description of one non-input signal's next-state
/// function, together with its minimized cover.
#[derive(Clone, Debug)]
pub struct SignalFunction {
    /// The signal this function implements.
    pub signal: SignalId,
    /// The signal's name.
    pub name: String,
    /// Codes in which the implementation must drive the signal to 1.
    pub on_set: Cover,
    /// Codes in which the implementation must drive the signal to 0.
    pub off_set: Cover,
    /// The minimized cover of the ON-set (against the OFF-set).
    pub minimized: Cover,
}

impl SignalFunction {
    /// Literal count of the minimized cover.
    pub fn literals(&self) -> usize {
        self.minimized.literal_count()
    }

    /// Number of product terms of the minimized cover.
    pub fn cubes(&self) -> usize {
        self.minimized.len()
    }
}

/// The next-state functions of every non-input signal of a state graph.
#[derive(Clone, Debug)]
pub struct NextStateFunctions {
    /// One entry per non-input signal, in signal-id order.
    pub functions: Vec<SignalFunction>,
    /// Number of signals (= number of function inputs).
    pub num_variables: usize,
}

impl NextStateFunctions {
    /// Total literal count over all functions (the Table 2 area estimate).
    pub fn total_literals(&self) -> usize {
        self.functions.iter().map(SignalFunction::literals).sum()
    }

    /// The function of a given signal, if it is a non-input signal.
    pub fn function_of(&self, signal: SignalId) -> Option<&SignalFunction> {
        self.functions.iter().find(|f| f.signal == signal)
    }
}

/// Derives and minimizes the next-state function of every non-input signal.
///
/// The *next value* of signal `a` in state `s` is 1 exactly when `a` is
/// rising in `s` or stable at 1 (i.e. not falling); the function maps the
/// state's *code* to that value, which is well-defined precisely when CSC
/// holds.
///
/// # Errors
///
/// Returns [`LogicError::CscViolation`] when two states with equal codes
/// need different next values and [`LogicError::TooManySignals`] for more
/// than 64 signals.
pub fn derive_next_state_functions(graph: &EncodedGraph) -> Result<NextStateFunctions, LogicError> {
    let num_signals = graph.num_signals();
    if num_signals > 64 {
        return Err(LogicError::TooManySignals { count: num_signals });
    }

    // Per state and signal, determine the required next value.
    let mut functions = Vec::new();
    for signal_index in 0..num_signals {
        let signal = SignalId::from(signal_index);
        if !graph.signals[signal_index].kind.is_non_input() {
            continue;
        }
        let mut on_codes: HashMap<u64, ()> = HashMap::new();
        let mut off_codes: HashMap<u64, ()> = HashMap::new();
        for s in 0..graph.num_states() {
            let state = StateId::from(s);
            let code = graph.code(state);
            let current = code & (1 << signal_index) != 0;
            let mut next = current;
            for &(event, _) in graph.ts.successors(state) {
                if let Some((sig, polarity)) = graph.event_edges[event.index()] {
                    if sig == signal {
                        next = match polarity {
                            Polarity::Rise => true,
                            Polarity::Fall => false,
                            Polarity::Toggle => !current,
                        };
                    }
                }
            }
            let bucket = if next { &mut on_codes } else { &mut off_codes };
            bucket.insert(code, ());
        }
        // CSC check: a code demanded by both buckets is a conflict.
        if let Some((&code, _)) = on_codes.iter().find(|(code, _)| off_codes.contains_key(code)) {
            return Err(LogicError::CscViolation {
                signal: graph.signals[signal_index].name.clone(),
                code,
            });
        }
        let on_set: Cover = on_codes.keys().map(|&c| Cube::minterm(num_signals, c)).collect();
        let off_set: Cover = off_codes.keys().map(|&c| Cube::minterm(num_signals, c)).collect();
        let minimized = crate::minimize::minimize_cover(&on_set, &off_set);
        functions.push(SignalFunction {
            signal,
            name: graph.signals[signal_index].name.clone(),
            on_set,
            off_set,
            minimized,
        });
    }
    Ok(NextStateFunctions { functions, num_variables: num_signals })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csc::{solve_stg, SolverConfig};
    use stg::benchmarks;

    fn graph_of(model: &stg::Stg) -> EncodedGraph {
        EncodedGraph::from_state_graph(&model.state_graph(100_000).unwrap())
    }

    #[test]
    fn handshake_ack_function_is_req() {
        // In a four-phase handshake the next value of ack equals req.
        let graph = graph_of(&benchmarks::handshake());
        let funcs = derive_next_state_functions(&graph).unwrap();
        assert_eq!(funcs.functions.len(), 1);
        let ack = &funcs.functions[0];
        assert_eq!(ack.name, "ack");
        assert_eq!(ack.literals(), 1, "ack follows req with a single literal");
        assert_eq!(funcs.total_literals(), 1);
        assert!(funcs.function_of(ack.signal).is_some());
    }

    #[test]
    fn conflicting_graph_is_rejected() {
        let graph = graph_of(&benchmarks::pulser());
        let err = derive_next_state_functions(&graph).unwrap_err();
        assert!(matches!(err, LogicError::CscViolation { .. }));
        assert!(err.to_string().contains('y'));
    }

    #[test]
    fn solved_pulser_has_implementable_functions() {
        let solution = solve_stg(&benchmarks::pulser(), &SolverConfig::default()).unwrap();
        let funcs = derive_next_state_functions(&solution.graph).unwrap();
        // Output y plus the inserted csc signals.
        assert_eq!(funcs.functions.len(), 1 + solution.inserted_signals.len());
        assert!(funcs.total_literals() > 0);
        // Every ON-set minterm stays covered and no OFF-set minterm is.
        for f in &funcs.functions {
            for cube in f.on_set.cubes() {
                let bits = (0..funcs.num_variables)
                    .filter(|&i| cube.literal(i) == crate::cube::Literal::One)
                    .fold(0u64, |acc, i| acc | (1 << i));
                assert!(f.minimized.contains_minterm(bits));
            }
            for cube in f.off_set.cubes() {
                let bits = (0..funcs.num_variables)
                    .filter(|&i| cube.literal(i) == crate::cube::Literal::One)
                    .fold(0u64, |acc, i| acc | (1 << i));
                assert!(!f.minimized.contains_minterm(bits));
            }
        }
    }

    #[test]
    fn solved_vme_functions_reference_the_csc_signal() {
        let solution = solve_stg(&benchmarks::vme_read(), &SolverConfig::default()).unwrap();
        let funcs = derive_next_state_functions(&solution.graph).unwrap();
        let csc_index = solution
            .graph
            .signals
            .iter()
            .position(|s| s.name.starts_with("csc"))
            .expect("a csc signal was inserted");
        // At least one implementation function must depend on the inserted
        // state signal — that is the whole point of inserting it.
        let referenced = funcs.functions.iter().any(|f| {
            f.minimized
                .cubes()
                .iter()
                .any(|c| c.literal(csc_index) != crate::cube::Literal::DontCare)
        });
        assert!(referenced);
    }
}
