//! Next-state function extraction.
//!
//! Two derivation engines share the same result types:
//!
//! * [`LogicStrategy::Explicit`] — the historical per-state loop: every
//!   reachable state contributes one minterm to the ON- or OFF-set of each
//!   non-input signal, and the covers are minimized by the cube-level
//!   expand/irredundant passes of [`crate::minimize_cover`].
//! * [`LogicStrategy::Symbolic`] (the default) — ON/OFF sets are built as
//!   BDDs and the covers are extracted by interval ISOP
//!   ([`bdd::BddManager::isop`]), so don't-care codes are absorbed for free
//!   and the quadratic minterm passes disappear (see [`crate::symbolic`]).
//!
//! Both produce identical ON/OFF semantics; the symbolic engine also runs
//! directly from an [`stg::Stg`] through the symbolic reachability engine
//! ([`crate::derive_next_state_functions_stg`]), which lifts the explicit
//! path's 64-signal / explicit-state-count limits entirely.

use crate::cube::{Cover, Cube};
use bdd::FxHashSet;
use csc::EncodedGraph;
use std::error::Error;
use std::fmt;
use stg::{Polarity, SignalId};
use ts::StateId;

/// Errors raised while deriving next-state functions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LogicError {
    /// Two reachable states with the same code require different next values
    /// for the signal — i.e. a CSC conflict; the functions are not
    /// implementable.
    CscViolation {
        /// The signal whose function is ill-defined.
        signal: String,
        /// The shared code of the conflicting states (binary, most
        /// significant signal first).
        code: String,
    },
    /// The graph has more than 64 signals (explicit derivation only; the
    /// symbolic strategy has no width limit).
    TooManySignals {
        /// Number of signals present.
        count: usize,
    },
    /// Symbolic reachability hit its iteration cap before converging.
    ReachabilityNotConverged {
        /// Image steps performed before giving up.
        iterations: usize,
    },
    /// The seeded initial signal values do not label the reachable markings
    /// consistently: the encoded space lost markings (some edge is blocked
    /// by a wrong signal value) or codes a marking twice.  Pass the correct
    /// `initial_code` — or fall back to the explicit engine, which infers
    /// the initial values by constraint propagation.
    InitialCodeMismatch {
        /// Reachable markings of the net (places-only fixpoint), rounded.
        markings: u128,
        /// Distinct markings covered by the encoded space, rounded.
        coded_markings: u128,
        /// (marking, code) pairs of the encoded space, rounded.
        coded_states: u128,
    },
    /// A resource budget (node ceiling, step ceiling, deadline or
    /// cancellation) tripped during the symbolic derivation.
    Budget(bdd::BudgetExceeded),
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::CscViolation { signal, code } => write!(
                f,
                "signal '{signal}' has no well-defined next-state value for code {code} (CSC violation)"
            ),
            LogicError::TooManySignals { count } => {
                write!(f, "explicit logic derivation supports at most 64 signals, got {count}")
            }
            LogicError::ReachabilityNotConverged { iterations } => {
                write!(f, "symbolic reachability did not converge within {iterations} iterations")
            }
            LogicError::InitialCodeMismatch { markings, coded_markings, coded_states } => {
                write!(
                    f,
                    "the initial signal values label the reachable markings inconsistently \
                     ({markings} markings, {coded_markings} coded, {coded_states} \
                     marking/code pairs); pass the correct initial code"
                )
            }
            LogicError::Budget(e) => write!(f, "{e}"),
        }
    }
}

impl From<bdd::BudgetExceeded> for LogicError {
    fn from(value: bdd::BudgetExceeded) -> Self {
        LogicError::Budget(value)
    }
}

impl Error for LogicError {}

/// Which engine derives and minimizes the next-state functions.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum LogicStrategy {
    /// Per-state minterm enumeration plus the cube-level minimizer.  Capped
    /// at 64 signals and linear in the explicit state count.
    Explicit,
    /// BDD ON/OFF sets plus ISOP cover extraction.  The default: identical
    /// semantics, never more literals on the benchmark suite, and no
    /// explicit enumeration of the state space.
    #[default]
    Symbolic,
}

impl fmt::Display for LogicStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicStrategy::Explicit => write!(f, "explicit"),
            LogicStrategy::Symbolic => write!(f, "symbolic"),
        }
    }
}

/// The ON/OFF/don't-care description of one non-input signal's next-state
/// function, together with its minimized cover.
#[derive(Clone, Debug)]
pub struct SignalFunction {
    /// The signal this function implements.
    pub signal: SignalId,
    /// The signal's name.
    pub name: String,
    /// Codes in which the implementation must drive the signal to 1.
    pub on_set: Cover,
    /// Codes in which the implementation must drive the signal to 0.
    pub off_set: Cover,
    /// The minimized cover of the ON-set (against the OFF-set).
    pub minimized: Cover,
}

impl SignalFunction {
    /// Literal count of the minimized cover.
    pub fn literals(&self) -> usize {
        self.minimized.literal_count()
    }

    /// Number of product terms of the minimized cover.
    pub fn cubes(&self) -> usize {
        self.minimized.len()
    }
}

/// The next-state functions of every non-input signal of a state graph.
#[derive(Clone, Debug)]
pub struct NextStateFunctions {
    /// One entry per non-input signal, sorted by signal id.
    pub functions: Vec<SignalFunction>,
    /// Number of signals (= number of function inputs).
    pub num_variables: usize,
    /// The engine that produced the covers.
    pub strategy: LogicStrategy,
    /// Peak BDD node count of the derivation (0 for the explicit engine).
    pub bdd_nodes: usize,
}

impl NextStateFunctions {
    /// Total literal count over all functions (the Table 2 area estimate).
    pub fn total_literals(&self) -> usize {
        self.functions.iter().map(SignalFunction::literals).sum()
    }

    /// Total product-term count over all functions.
    pub fn total_cubes(&self) -> usize {
        self.functions.iter().map(SignalFunction::cubes).sum()
    }

    /// The function of a given signal, if it is a non-input signal.
    ///
    /// `functions` is sorted by signal id (both engines emit signals in
    /// id order), so this is a binary search, not a linear scan.
    pub fn function_of(&self, signal: SignalId) -> Option<&SignalFunction> {
        debug_assert!(self.functions.windows(2).all(|w| w[0].signal < w[1].signal));
        self.functions
            .binary_search_by_key(&signal, |f| f.signal)
            .ok()
            .map(|index| &self.functions[index])
    }
}

/// Renders a code as a binary string, most significant signal first — the
/// format [`LogicError::CscViolation`] reports.
pub(crate) fn code_pattern(code: u64, num_signals: usize) -> String {
    if num_signals == 0 {
        return "0".to_owned();
    }
    (0..num_signals).rev().map(|i| if (code >> i) & 1 != 0 { '1' } else { '0' }).collect()
}

/// Derives and minimizes the next-state function of every non-input signal
/// with the default (symbolic) strategy.
///
/// The *next value* of signal `a` in state `s` is 1 exactly when `a` is
/// rising in `s` or stable at 1 (i.e. not falling); the function maps the
/// state's *code* to that value, which is well-defined precisely when CSC
/// holds.
///
/// # Errors
///
/// Returns [`LogicError::CscViolation`] when two states with equal codes
/// need different next values.
pub fn derive_next_state_functions(graph: &EncodedGraph) -> Result<NextStateFunctions, LogicError> {
    derive_next_state_functions_with(graph, LogicStrategy::default())
}

/// [`derive_next_state_functions`] with an explicit engine choice.
///
/// # Errors
///
/// Returns [`LogicError::CscViolation`] when CSC does not hold and
/// [`LogicError::TooManySignals`] for more than 64 signals under
/// [`LogicStrategy::Explicit`].
pub fn derive_next_state_functions_with(
    graph: &EncodedGraph,
    strategy: LogicStrategy,
) -> Result<NextStateFunctions, LogicError> {
    match strategy {
        LogicStrategy::Explicit => derive_explicit(graph),
        LogicStrategy::Symbolic => crate::symbolic::derive_from_graph(graph),
    }
}

/// The required next value of every signal in `state`, as (known-mask,
/// value-mask) over the signal bits: a known bit means some enabled edge of
/// that signal dictates the value, otherwise the signal holds its current
/// value.
pub(crate) fn next_value_masks(graph: &EncodedGraph, state: StateId) -> (u64, u64) {
    let code = graph.codes[state.index()];
    let mut known = 0u64;
    let mut value = 0u64;
    for &(event, _) in graph.ts.successors(state) {
        if let Some((signal, polarity)) = graph.event_edges[event.index()] {
            let bit = 1u64 << signal.index();
            let next = match polarity {
                Polarity::Rise => true,
                Polarity::Fall => false,
                Polarity::Toggle => code & bit == 0,
            };
            known |= bit;
            if next {
                value |= bit;
            } else {
                value &= !bit;
            }
        }
    }
    (known, value)
}

fn derive_explicit(graph: &EncodedGraph) -> Result<NextStateFunctions, LogicError> {
    let num_signals = graph.num_signals();
    if num_signals > 64 {
        return Err(LogicError::TooManySignals { count: num_signals });
    }

    // One successor scan per state yields the next-value masks for every
    // signal at once; the per-signal loop below only reads bits.
    let state_masks: Vec<(u64, u64)> =
        (0..graph.num_states()).map(|s| next_value_masks(graph, StateId::from(s))).collect();

    let mut functions = Vec::new();
    for signal_index in 0..num_signals {
        let signal = SignalId::from(signal_index);
        if !graph.signals[signal_index].kind.is_non_input() {
            continue;
        }
        let bit = 1u64 << signal_index;
        let mut on_codes: FxHashSet<u64> = FxHashSet::default();
        let mut off_codes: FxHashSet<u64> = FxHashSet::default();
        for (s, &(known, value)) in state_masks.iter().enumerate() {
            let code = graph.code(StateId::from(s));
            let next = if known & bit != 0 { value & bit != 0 } else { code & bit != 0 };
            let bucket = if next { &mut on_codes } else { &mut off_codes };
            bucket.insert(code);
        }
        // CSC check: a code demanded by both buckets is a conflict.  Take
        // the smallest witness so the report does not depend on hash order.
        if let Some(&code) =
            on_codes.iter().filter(|code| off_codes.contains(code)).min_by_key(|&&c| c)
        {
            return Err(LogicError::CscViolation {
                signal: graph.signals[signal_index].name.clone(),
                code: code_pattern(code, num_signals),
            });
        }
        let mut on_sorted: Vec<u64> = on_codes.into_iter().collect();
        on_sorted.sort_unstable();
        let mut off_sorted: Vec<u64> = off_codes.into_iter().collect();
        off_sorted.sort_unstable();
        let on_set: Cover = on_sorted.iter().map(|&c| Cube::minterm(num_signals, c)).collect();
        let off_set: Cover = off_sorted.iter().map(|&c| Cube::minterm(num_signals, c)).collect();
        let minimized = crate::minimize::minimize_cover(&on_set, &off_set);
        functions.push(SignalFunction {
            signal,
            name: graph.signals[signal_index].name.clone(),
            on_set,
            off_set,
            minimized,
        });
    }
    Ok(NextStateFunctions {
        functions,
        num_variables: num_signals,
        strategy: LogicStrategy::Explicit,
        bdd_nodes: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csc::{solve_stg, SolverConfig};
    use stg::benchmarks;

    fn graph_of(model: &stg::Stg) -> EncodedGraph {
        EncodedGraph::from_state_graph(&model.state_graph(100_000).unwrap())
    }

    #[test]
    fn handshake_ack_function_is_req() {
        // In a four-phase handshake the next value of ack equals req, under
        // either engine.
        let graph = graph_of(&benchmarks::handshake());
        for strategy in [LogicStrategy::Explicit, LogicStrategy::Symbolic] {
            let funcs = derive_next_state_functions_with(&graph, strategy).unwrap();
            assert_eq!(funcs.functions.len(), 1);
            let ack = &funcs.functions[0];
            assert_eq!(ack.name, "ack");
            assert_eq!(ack.literals(), 1, "ack follows req with a single literal ({strategy})");
            assert_eq!(funcs.total_literals(), 1);
            assert!(funcs.function_of(ack.signal).is_some());
            assert_eq!(funcs.strategy, strategy);
        }
    }

    #[test]
    fn conflicting_graph_is_rejected_by_both_engines() {
        let graph = graph_of(&benchmarks::pulser());
        for strategy in [LogicStrategy::Explicit, LogicStrategy::Symbolic] {
            let err = derive_next_state_functions_with(&graph, strategy).unwrap_err();
            assert!(matches!(err, LogicError::CscViolation { .. }), "{strategy}");
            assert!(err.to_string().contains('y'), "{strategy}: {err}");
        }
    }

    #[test]
    fn solved_pulser_has_implementable_functions() {
        let solution = solve_stg(&benchmarks::pulser(), &SolverConfig::default()).unwrap();
        let funcs = derive_next_state_functions(&solution.graph).unwrap();
        // Output y plus the inserted csc signals.
        assert_eq!(funcs.functions.len(), 1 + solution.inserted_signals.len());
        assert!(funcs.total_literals() > 0);
        // Every ON-set minterm stays covered and no OFF-set minterm is.
        for f in &funcs.functions {
            for cube in f.on_set.cubes() {
                let bits = (0..funcs.num_variables)
                    .filter(|&i| cube.literal(i) == crate::cube::Literal::One)
                    .fold(0u64, |acc, i| acc | (1 << i));
                assert!(f.minimized.contains_minterm(bits));
            }
            for cube in f.off_set.cubes() {
                let bits = (0..funcs.num_variables)
                    .filter(|&i| cube.literal(i) == crate::cube::Literal::One)
                    .fold(0u64, |acc, i| acc | (1 << i));
                assert!(!f.minimized.contains_minterm(bits));
            }
        }
    }

    #[test]
    fn solved_vme_functions_reference_the_csc_signal() {
        let solution = solve_stg(&benchmarks::vme_read(), &SolverConfig::default()).unwrap();
        let funcs = derive_next_state_functions(&solution.graph).unwrap();
        let csc_index = solution
            .graph
            .signals
            .iter()
            .position(|s| s.name.starts_with("csc"))
            .expect("a csc signal was inserted");
        // At least one implementation function must depend on the inserted
        // state signal — that is the whole point of inserting it.
        let referenced = funcs.functions.iter().any(|f| {
            f.minimized
                .cubes()
                .iter()
                .any(|c| c.literal(csc_index) != crate::cube::Literal::DontCare)
        });
        assert!(referenced);
    }

    #[test]
    fn function_lookup_uses_the_sorted_index() {
        let graph = graph_of(&benchmarks::vme_read());
        // vme_read has CSC conflicts, so look at the solved graph.
        let solution = solve_stg(&benchmarks::vme_read(), &SolverConfig::default()).unwrap();
        let funcs = derive_next_state_functions(&solution.graph).unwrap();
        for f in &funcs.functions {
            let found = funcs.function_of(f.signal).expect("every derived signal resolves");
            assert_eq!(found.name, f.name);
        }
        // Input signals have no function.
        let input = graph
            .signals
            .iter()
            .position(|s| s.kind == stg::SignalKind::Input)
            .expect("vme_read has inputs");
        assert!(funcs.function_of(SignalId::from(input)).is_none());
    }

    #[test]
    fn code_patterns_render_msb_first() {
        assert_eq!(code_pattern(0b0110, 4), "0110");
        assert_eq!(code_pattern(0b1, 3), "001");
        assert_eq!(code_pattern(0, 0), "0");
    }
}
