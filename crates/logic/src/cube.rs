//! Cubes and covers (two-level sum-of-products representation).
//!
//! A [`Cube`] is stored as two bit planes — a *care* mask (which variables
//! are fixed) and a *value* plane (their phases) — packed into 64-bit
//! words.  Covers with at most [`Cube::INLINE_VARS`] variables keep both
//! planes inline (no heap allocation per cube); wider spaces spill to a
//! boxed slice, so the representation has no upper limit on the variable
//! count.  All the relational queries (`covers`, `intersects`,
//! `contains_minterm`) are word-parallel bit operations rather than
//! per-literal scans.

use std::fmt;

/// The value of one variable inside a cube.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Literal {
    /// The variable must be 0.
    Zero,
    /// The variable must be 1.
    One,
    /// The variable does not appear in the cube.
    DontCare,
}

/// Words kept inline before spilling to the heap (`2 × 64 = 128` variables).
const INLINE_WORDS: usize = 2;

/// One bit plane of a cube: inline up to [`INLINE_WORDS`] words, boxed
/// beyond.  Trailing bits past the variable count are always zero, so the
/// derived `Eq`/`Hash` are canonical.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Plane {
    Inline([u64; INLINE_WORDS]),
    Heap(Box<[u64]>),
}

impl Plane {
    fn zeroed(words: usize) -> Self {
        if words <= INLINE_WORDS {
            Plane::Inline([0; INLINE_WORDS])
        } else {
            Plane::Heap(vec![0; words].into_boxed_slice())
        }
    }

    #[inline]
    fn words(&self) -> &[u64] {
        match self {
            Plane::Inline(w) => w,
            Plane::Heap(w) => w,
        }
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        match self {
            Plane::Inline(w) => w,
            Plane::Heap(w) => w,
        }
    }
}

/// A product term over `n` Boolean variables.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Cube {
    num_vars: u32,
    care: Plane,
    value: Plane,
}

impl Cube {
    /// Number of variables representable without heap allocation.
    pub const INLINE_VARS: usize = INLINE_WORDS * 64;

    /// The universal cube (no literal fixed) over `n` variables.
    pub fn universe(n: usize) -> Self {
        let words = n.div_ceil(64).max(1);
        Cube { num_vars: n as u32, care: Plane::zeroed(words), value: Plane::zeroed(words) }
    }

    /// A minterm: every variable fixed according to `bits` (bit `i` =
    /// variable `i`).  Variables beyond the range of `u64` (index ≥ 64) are
    /// fixed to 0; use [`Cube::minterm_words`] to fix them freely.
    pub fn minterm(n: usize, bits: u64) -> Self {
        Self::minterm_words(n, &[bits])
    }

    /// A minterm over arbitrarily many variables: bit `i % 64` of word
    /// `i / 64` gives the value of variable `i`; missing words read as zero.
    pub fn minterm_words(n: usize, bits: &[u64]) -> Self {
        let mut cube = Cube::universe(n);
        let care = cube.care.words_mut();
        for (w, word) in care.iter_mut().enumerate() {
            let vars_here = n.saturating_sub(w * 64).min(64);
            *word = ones(vars_here);
        }
        let value = cube.value.words_mut();
        for (w, word) in value.iter_mut().enumerate() {
            let vars_here = n.saturating_sub(w * 64).min(64);
            *word = bits.get(w).copied().unwrap_or(0) & ones(vars_here);
        }
        cube
    }

    /// A cube from `(variable, phase)` literals over `n` variables.
    pub fn from_literals(n: usize, literals: &[(usize, bool)]) -> Self {
        let mut cube = Cube::universe(n);
        for &(var, phase) in literals {
            cube.set_literal(var, if phase { Literal::One } else { Literal::Zero });
        }
        cube
    }

    /// Number of variables of the cube's space.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// The literal of variable `var`.
    pub fn literal(&self, var: usize) -> Literal {
        assert!(var < self.num_vars(), "variable {var} out of range");
        let (w, bit) = (var / 64, 1u64 << (var % 64));
        if self.care.words()[w] & bit == 0 {
            Literal::DontCare
        } else if self.value.words()[w] & bit != 0 {
            Literal::One
        } else {
            Literal::Zero
        }
    }

    /// Sets the literal of variable `var`.
    pub fn set_literal(&mut self, var: usize, literal: Literal) {
        assert!(var < self.num_vars(), "variable {var} out of range");
        let (w, bit) = (var / 64, 1u64 << (var % 64));
        match literal {
            Literal::DontCare => {
                self.care.words_mut()[w] &= !bit;
                // Keep value bits ⊆ care bits so Eq/Hash stay canonical.
                self.value.words_mut()[w] &= !bit;
            }
            Literal::Zero => {
                self.care.words_mut()[w] |= bit;
                self.value.words_mut()[w] &= !bit;
            }
            Literal::One => {
                self.care.words_mut()[w] |= bit;
                self.value.words_mut()[w] |= bit;
            }
        }
    }

    /// Number of fixed literals (the cube's contribution to the literal
    /// count of a cover).
    pub fn literal_count(&self) -> usize {
        self.care.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the cube contains the given minterm (variables
    /// beyond index 63 read as 0; see [`Cube::contains_minterm_words`]).
    pub fn contains_minterm(&self, bits: u64) -> bool {
        self.contains_minterm_words(&[bits])
    }

    /// Returns `true` if the cube contains the minterm given as packed
    /// words (missing words read as zero).
    pub fn contains_minterm_words(&self, bits: &[u64]) -> bool {
        self.care
            .words()
            .iter()
            .zip(self.value.words())
            .enumerate()
            .all(|(w, (&care, &value))| (value ^ bits.get(w).copied().unwrap_or(0)) & care == 0)
    }

    /// Returns `true` if every minterm of `other` is contained in `self`.
    pub fn covers(&self, other: &Cube) -> bool {
        debug_assert_eq!(self.num_vars, other.num_vars);
        self.care
            .words()
            .iter()
            .zip(self.value.words())
            .zip(other.care.words().iter().zip(other.value.words()))
            .all(|((&ac, &av), (&bc, &bv))| {
                // Every variable `self` fixes must be fixed to the same
                // phase in `other`.
                ac & !bc == 0 && (av ^ bv) & ac == 0
            })
    }

    /// Returns `true` if the two cubes share at least one minterm.
    pub fn intersects(&self, other: &Cube) -> bool {
        debug_assert_eq!(self.num_vars, other.num_vars);
        self.care
            .words()
            .iter()
            .zip(self.value.words())
            .zip(other.care.words().iter().zip(other.value.words()))
            .all(|((&ac, &av), (&bc, &bv))| ac & bc & (av ^ bv) == 0)
    }

    /// The variables on which the two cubes fix opposite phases — the
    /// witnesses of their disjointness.  Used by the minimizer's conflict
    /// index.
    pub fn conflict_vars(&self, other: &Cube) -> Vec<usize> {
        let mut vars = Vec::new();
        for (w, ((&ac, &av), (&bc, &bv))) in self
            .care
            .words()
            .iter()
            .zip(self.value.words())
            .zip(other.care.words().iter().zip(other.value.words()))
            .enumerate()
        {
            let mut clash = ac & bc & (av ^ bv);
            while clash != 0 {
                let bit = clash.trailing_zeros() as usize;
                vars.push(w * 64 + bit);
                clash &= clash - 1;
            }
        }
        vars
    }

    /// Renders the cube in the usual `10-1` positional notation.
    pub fn to_pattern(&self) -> String {
        (0..self.num_vars())
            .map(|v| match self.literal(v) {
                Literal::Zero => '0',
                Literal::One => '1',
                Literal::DontCare => '-',
            })
            .collect()
    }
}

/// An all-ones mask of the lowest `n ≤ 64` bits.
#[inline]
fn ones(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube({})", self.to_pattern())
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_pattern())
    }
}

/// A sum of product terms.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Cover {
    cubes: Vec<Cube>,
}

impl Cover {
    /// The empty cover (constant 0).
    pub fn empty() -> Self {
        Cover { cubes: Vec::new() }
    }

    /// Builds a cover from cubes.
    pub fn from_cubes(cubes: Vec<Cube>) -> Self {
        Cover { cubes }
    }

    /// The cubes of the cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Adds a cube.
    pub fn push(&mut self, cube: Cube) {
        self.cubes.push(cube);
    }

    /// Number of cubes.
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// Returns `true` if the cover has no cubes (constant 0).
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Total number of literals across all cubes — the area metric.
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// Returns `true` if some cube contains the minterm.
    pub fn contains_minterm(&self, bits: u64) -> bool {
        self.cubes.iter().any(|c| c.contains_minterm(bits))
    }

    /// Returns `true` if some cube contains the minterm given as packed
    /// words.
    pub fn contains_minterm_words(&self, bits: &[u64]) -> bool {
        self.cubes.iter().any(|c| c.contains_minterm_words(bits))
    }

    /// Returns `true` if some cube of the cover intersects `cube`.
    pub fn intersects_cube(&self, cube: &Cube) -> bool {
        self.cubes.iter().any(|c| c.intersects(cube))
    }
}

impl fmt::Debug for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.cubes.iter().map(Cube::to_pattern)).finish()
    }
}

impl FromIterator<Cube> for Cover {
    fn from_iter<I: IntoIterator<Item = Cube>>(iter: I) -> Self {
        Cover { cubes: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minterms_and_patterns() {
        let c = Cube::minterm(4, 0b1010);
        assert_eq!(c.to_pattern(), "0101");
        assert!(c.contains_minterm(0b1010));
        assert!(!c.contains_minterm(0b1011));
        assert_eq!(c.literal_count(), 4);
        assert_eq!(Cube::universe(4).literal_count(), 0);
        assert!(Cube::universe(4).contains_minterm(0b1111));
    }

    #[test]
    fn covering_and_intersection() {
        let mut broad = Cube::universe(3);
        broad.set_literal(0, Literal::One);
        let narrow = Cube::minterm(3, 0b101);
        assert!(broad.covers(&narrow));
        assert!(!narrow.covers(&broad));
        assert!(broad.intersects(&narrow));
        let disjoint = Cube::minterm(3, 0b010);
        assert!(!broad.intersects(&disjoint));
        assert!(!broad.covers(&disjoint));
        assert_eq!(broad.conflict_vars(&disjoint), vec![0]);
        assert!(broad.conflict_vars(&narrow).is_empty());
    }

    #[test]
    fn cover_queries() {
        let cover: Cover = [Cube::minterm(3, 0b001), Cube::minterm(3, 0b110)].into_iter().collect();
        assert_eq!(cover.len(), 2);
        assert_eq!(cover.literal_count(), 6);
        assert!(cover.contains_minterm(0b001));
        assert!(!cover.contains_minterm(0b111));
        assert!(cover.intersects_cube(&Cube::universe(3)));
        assert!(Cover::empty().is_empty());
        assert_eq!(Cover::empty().literal_count(), 0);
    }

    #[test]
    fn display_uses_positional_notation() {
        let mut c = Cube::universe(3);
        c.set_literal(1, Literal::Zero);
        c.set_literal(2, Literal::One);
        assert_eq!(format!("{c}"), "-01");
    }

    #[test]
    fn set_literal_round_trips_and_stays_canonical() {
        let mut c = Cube::universe(5);
        c.set_literal(3, Literal::One);
        assert_eq!(c.literal(3), Literal::One);
        c.set_literal(3, Literal::Zero);
        assert_eq!(c.literal(3), Literal::Zero);
        c.set_literal(3, Literal::DontCare);
        assert_eq!(c.literal(3), Literal::DontCare);
        // Clearing back to don't-care must restore full equality with the
        // untouched universe (value bits are masked by care bits).
        assert_eq!(c, Cube::universe(5));
    }

    #[test]
    fn wide_cubes_cross_word_boundaries() {
        // 200 variables: three words, heap-backed.
        let n = 200;
        let mut c = Cube::universe(n);
        assert_eq!(c.literal_count(), 0);
        for var in [0, 63, 64, 127, 128, 199] {
            c.set_literal(var, Literal::One);
        }
        c.set_literal(70, Literal::Zero);
        assert_eq!(c.literal_count(), 7);
        assert_eq!(c.literal(64), Literal::One);
        assert_eq!(c.literal(70), Literal::Zero);
        assert_eq!(c.literal(65), Literal::DontCare);

        // Word-array minterms agree with per-variable queries.
        let bits = [u64::MAX, 0b1, 0];
        let m = Cube::minterm_words(n, &bits);
        assert_eq!(m.literal_count(), n);
        assert_eq!(m.literal(63), Literal::One);
        assert_eq!(m.literal(64), Literal::One);
        assert_eq!(m.literal(65), Literal::Zero);
        assert!(m.contains_minterm_words(&bits));
        assert!(!m.contains_minterm_words(&[u64::MAX, 0b11, 0]));

        // Covering and intersection across the word boundary.
        assert!(c.intersects(&m) == (c.conflict_vars(&m).is_empty()));
        let mut relaxed = m.clone();
        for var in 0..n {
            if ![0, 63, 64, 127, 128, 199, 70].contains(&var) {
                relaxed.set_literal(var, Literal::DontCare);
            }
        }
        assert!(relaxed.covers(&m));
        assert!(!m.covers(&relaxed));
    }

    #[test]
    fn inline_storage_boundary() {
        // 128 variables still fit inline; 129 spill to the heap.  Behaviour
        // must be identical either side of the boundary.
        for n in [128usize, 129] {
            let mut c = Cube::universe(n);
            c.set_literal(n - 1, Literal::One);
            assert_eq!(c.literal(n - 1), Literal::One);
            assert_eq!(c.literal_count(), 1);
            let m = Cube::minterm_words(n, &[0, !0, !0]);
            assert_eq!(m.literal_count(), n);
            assert!(m.contains_minterm_words(&[0, !0, !0]));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn literal_out_of_range_panics() {
        let c = Cube::universe(4);
        let _ = c.literal(4);
    }
}
