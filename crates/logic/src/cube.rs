//! Cubes and covers (two-level sum-of-products representation).

use std::fmt;

/// The value of one variable inside a cube.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Literal {
    /// The variable must be 0.
    Zero,
    /// The variable must be 1.
    One,
    /// The variable does not appear in the cube.
    DontCare,
}

/// A product term over `n` Boolean variables.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Cube {
    literals: Vec<Literal>,
}

impl Cube {
    /// The universal cube (no literal fixed) over `n` variables.
    pub fn universe(n: usize) -> Self {
        Cube { literals: vec![Literal::DontCare; n] }
    }

    /// A minterm: every variable fixed according to `bits` (bit `i` =
    /// variable `i`).
    pub fn minterm(n: usize, bits: u64) -> Self {
        Cube {
            literals: (0..n)
                .map(|i| if bits & (1 << i) != 0 { Literal::One } else { Literal::Zero })
                .collect(),
        }
    }

    /// Number of variables of the cube's space.
    pub fn num_vars(&self) -> usize {
        self.literals.len()
    }

    /// The literal of variable `var`.
    pub fn literal(&self, var: usize) -> Literal {
        self.literals[var]
    }

    /// Sets the literal of variable `var`.
    pub fn set_literal(&mut self, var: usize, literal: Literal) {
        self.literals[var] = literal;
    }

    /// Number of fixed literals (the cube's contribution to the literal
    /// count of a cover).
    pub fn literal_count(&self) -> usize {
        self.literals.iter().filter(|l| **l != Literal::DontCare).count()
    }

    /// Returns `true` if the cube contains the given minterm.
    pub fn contains_minterm(&self, bits: u64) -> bool {
        self.literals.iter().enumerate().all(|(i, l)| match l {
            Literal::DontCare => true,
            Literal::One => bits & (1 << i) != 0,
            Literal::Zero => bits & (1 << i) == 0,
        })
    }

    /// Returns `true` if every minterm of `other` is contained in `self`.
    pub fn covers(&self, other: &Cube) -> bool {
        self.literals.iter().zip(&other.literals).all(|(a, b)| match (a, b) {
            (Literal::DontCare, _) => true,
            (a, b) => a == b,
        })
    }

    /// Returns `true` if the two cubes share at least one minterm.
    pub fn intersects(&self, other: &Cube) -> bool {
        self.literals.iter().zip(&other.literals).all(|(a, b)| {
            !matches!((a, b), (Literal::One, Literal::Zero) | (Literal::Zero, Literal::One))
        })
    }

    /// Renders the cube in the usual `10-1` positional notation.
    pub fn to_pattern(&self) -> String {
        self.literals
            .iter()
            .map(|l| match l {
                Literal::Zero => '0',
                Literal::One => '1',
                Literal::DontCare => '-',
            })
            .collect()
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube({})", self.to_pattern())
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_pattern())
    }
}

/// A sum of product terms.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Cover {
    cubes: Vec<Cube>,
}

impl Cover {
    /// The empty cover (constant 0).
    pub fn empty() -> Self {
        Cover { cubes: Vec::new() }
    }

    /// Builds a cover from cubes.
    pub fn from_cubes(cubes: Vec<Cube>) -> Self {
        Cover { cubes }
    }

    /// The cubes of the cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Adds a cube.
    pub fn push(&mut self, cube: Cube) {
        self.cubes.push(cube);
    }

    /// Number of cubes.
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// Returns `true` if the cover has no cubes (constant 0).
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Total number of literals across all cubes — the area metric.
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// Returns `true` if some cube contains the minterm.
    pub fn contains_minterm(&self, bits: u64) -> bool {
        self.cubes.iter().any(|c| c.contains_minterm(bits))
    }

    /// Returns `true` if some cube of the cover intersects `cube`.
    pub fn intersects_cube(&self, cube: &Cube) -> bool {
        self.cubes.iter().any(|c| c.intersects(cube))
    }
}

impl fmt::Debug for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.cubes.iter().map(Cube::to_pattern)).finish()
    }
}

impl FromIterator<Cube> for Cover {
    fn from_iter<I: IntoIterator<Item = Cube>>(iter: I) -> Self {
        Cover { cubes: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minterms_and_patterns() {
        let c = Cube::minterm(4, 0b1010);
        assert_eq!(c.to_pattern(), "0101");
        assert!(c.contains_minterm(0b1010));
        assert!(!c.contains_minterm(0b1011));
        assert_eq!(c.literal_count(), 4);
        assert_eq!(Cube::universe(4).literal_count(), 0);
        assert!(Cube::universe(4).contains_minterm(0b1111));
    }

    #[test]
    fn covering_and_intersection() {
        let mut broad = Cube::universe(3);
        broad.set_literal(0, Literal::One);
        let narrow = Cube::minterm(3, 0b101);
        assert!(broad.covers(&narrow));
        assert!(!narrow.covers(&broad));
        assert!(broad.intersects(&narrow));
        let disjoint = Cube::minterm(3, 0b010);
        assert!(!broad.intersects(&disjoint));
        assert!(!broad.covers(&disjoint));
    }

    #[test]
    fn cover_queries() {
        let cover: Cover = [Cube::minterm(3, 0b001), Cube::minterm(3, 0b110)].into_iter().collect();
        assert_eq!(cover.len(), 2);
        assert_eq!(cover.literal_count(), 6);
        assert!(cover.contains_minterm(0b001));
        assert!(!cover.contains_minterm(0b111));
        assert!(cover.intersects_cube(&Cube::universe(3)));
        assert!(Cover::empty().is_empty());
        assert_eq!(Cover::empty().literal_count(), 0);
    }

    #[test]
    fn display_uses_positional_notation() {
        let mut c = Cube::universe(3);
        c.set_literal(1, Literal::Zero);
        c.set_literal(2, Literal::One);
        assert_eq!(format!("{c}"), "-01");
    }
}
