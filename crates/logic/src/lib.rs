//! Logic derivation for speed-independent circuits.
//!
//! Once Complete State Coding holds, every non-input signal `a` has a
//! well-defined *next-state function* over the signal values: in each
//! reachable state the implementation must drive `a` to 1 exactly when `a`
//! is rising or stably high.  This crate derives those functions from an
//! encoded state graph, minimizes them with a compact two-level minimizer,
//! and reports literal counts — the "area" metric used to compare the
//! region-based CSC solver with the ASSASSIN-style baseline in Table 2 of
//! the paper.
//!
//! Contents:
//!
//! * [`Cube`] / [`Cover`] — positional-cube two-level representation,
//! * [`minimize_cover`] — expand + irredundant minimization against an
//!   OFF-set,
//! * [`NextStateFunctions`] — ON/OFF/don't-care extraction per non-input
//!   signal ([`derive_next_state_functions`]),
//! * [`AreaReport`] — literal-count area estimates
//!   ([`estimate_area`]),
//! * output-persistency verification ([`output_persistency_violations`]).
//!
//! # Example
//!
//! ```
//! use csc::{solve_stg, SolverConfig};
//! use logic::estimate_area;
//! use stg::benchmarks;
//!
//! let solution = solve_stg(&benchmarks::pulser(), &SolverConfig::default())?;
//! let report = estimate_area(&solution.graph)?;
//! assert!(report.total_literals > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod cube;
mod minimize;
mod nextstate;

pub use area::{estimate_area, output_persistency_violations, AreaReport, SignalArea};
pub use cube::{Cover, Cube, Literal};
pub use minimize::minimize_cover;
pub use nextstate::{derive_next_state_functions, LogicError, NextStateFunctions, SignalFunction};
