//! Logic derivation for speed-independent circuits.
//!
//! Once Complete State Coding holds, every non-input signal `a` has a
//! well-defined *next-state function* over the signal values: in each
//! reachable state the implementation must drive `a` to 1 exactly when `a`
//! is rising or stably high.  This crate derives those functions from an
//! encoded state graph, minimizes them with a compact two-level minimizer,
//! and reports literal counts — the "area" metric used to compare the
//! region-based CSC solver with the ASSASSIN-style baseline in Table 2 of
//! the paper.
//!
//! Contents:
//!
//! * [`Cube`] / [`Cover`] — word-array two-level representation with no
//!   limit on the variable count (inline storage up to
//!   [`Cube::INLINE_VARS`] variables),
//! * [`minimize_cover`] — expand + irredundant minimization against an
//!   OFF-set, driven by shared conflict/containment indexes,
//! * [`NextStateFunctions`] — ON/OFF/don't-care extraction per non-input
//!   signal ([`derive_next_state_functions`]), with the engine selectable
//!   through [`LogicStrategy`]: the default *symbolic* engine builds ON/OFF
//!   sets as BDDs and extracts covers by interval ISOP, the *explicit*
//!   engine enumerates one minterm per state,
//! * [`derive_next_state_functions_stg`] — the fully symbolic pipeline:
//!   reachability, ON/OFF construction and cover extraction all on BDDs,
//!   with no explicit state enumeration and no 64-signal cap,
//! * [`AreaReport`] — literal-count area estimates ([`estimate_area`] /
//!   [`estimate_area_with`]),
//! * typed implementability diagnostics ([`LogicDiagnostic`],
//!   [`output_persistency_violations`], [`logic_diagnostics`]).
//!
//! # Example
//!
//! ```
//! use csc::{solve_stg, SolverConfig};
//! use logic::estimate_area;
//! use stg::benchmarks;
//!
//! let solution = solve_stg(&benchmarks::pulser(), &SolverConfig::default())?;
//! let report = estimate_area(&solution.graph)?;
//! assert!(report.total_literals > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod cube;
mod minimize;
mod nextstate;
mod symbolic;

pub use area::{
    area_of_functions, estimate_area, estimate_area_with, logic_diagnostics,
    output_persistency_violations, AreaReport, LogicDiagnostic, SignalArea,
};
pub use cube::{Cover, Cube, Literal};
pub use minimize::minimize_cover;
pub use nextstate::{
    derive_next_state_functions, derive_next_state_functions_with, LogicError, LogicStrategy,
    NextStateFunctions, SignalFunction,
};
pub use symbolic::{
    analyze_stg, analyze_stg_budgeted, analyze_stg_with,
    derive_from_stg as derive_next_state_functions_stg, SymbolicLogicReport,
};
