//! Symbolic derivation of next-state functions.
//!
//! Both entry points build the ON- and OFF-set of every non-input signal as
//! BDDs, detect CSC violations as a non-empty `ON ∧ OFF` intersection, and
//! extract covers with interval ISOP (`isop(ON, ¬OFF)`), so the whole
//! don't-care space — in particular every unreachable code — is absorbed
//! without being represented:
//!
//! * [`derive_from_graph`] starts from an explicit [`EncodedGraph`] (the
//!   object the CSC solver produces): each state contributes its code cube
//!   to the buckets, and all minimization happens on the BDDs.  Compared to
//!   the explicit engine this replaces the O(cubes² · vars) cover passes
//!   with ISOP.
//! * [`derive_from_stg`] never enumerates states at all: the reachable set
//!   comes from the `stg` symbolic engine, the per-signal excitation
//!   predicates from its partitioned transition relations (preset-marked
//!   cubes), and the ON/OFF *code* sets by quantifying the place variables
//!   away.  This is the path that scales to state spaces (and signal
//!   counts) the explicit representation cannot touch.
//!
//! An ISOP cover is irredundant but its cubes are not necessarily prime, so
//! a cheap BDD-exact polish pass expands every cube against the OFF-set and
//! drops cubes whose ON contribution is covered by the rest; this is what
//! keeps the symbolic literal counts at or below the explicit engine's.

use crate::area::LogicDiagnostic;
use crate::cube::{Cover, Cube};
use crate::nextstate::{
    code_pattern, next_value_masks, LogicError, LogicStrategy, NextStateFunctions, SignalFunction,
};
use bdd::{Bdd, BddManager, Budget, VarId};
use csc::EncodedGraph;
use stg::{Polarity, ReachabilityConfig, SignalId, Stg, StgError, TransitionLabel};
use ts::StateId;

/// Derives the next-state functions of an encoded state graph on BDDs.
///
/// Semantically identical to the explicit engine; see the module docs for
/// the differences in mechanism.
///
/// # Errors
///
/// [`LogicError::CscViolation`] when CSC does not hold.  (Codes of an
/// [`EncodedGraph`] are 64-bit words, so the explicit 64-signal cap applies
/// to this entry point by construction; [`derive_from_stg`] has no cap.)
pub(crate) fn derive_from_graph(graph: &EncodedGraph) -> Result<NextStateFunctions, LogicError> {
    let num_signals = graph.num_signals();
    if num_signals > 64 {
        return Err(LogicError::TooManySignals { count: num_signals });
    }
    let mut m = BddManager::with_capacity(num_signals.max(1), 1 << 12);

    // Bucket every state's code cube into ON/OFF per non-input signal.
    let non_inputs: Vec<usize> =
        (0..num_signals).filter(|&i| graph.signals[i].kind.is_non_input()).collect();
    let mut on = vec![m.bottom(); num_signals];
    let mut off = vec![m.bottom(); num_signals];
    let mut lits: Vec<(VarId, bool)> = Vec::with_capacity(num_signals);
    for s in 0..graph.num_states() {
        let state = StateId::from(s);
        let code = graph.code(state);
        lits.clear();
        lits.extend((0..num_signals).map(|i| (i as VarId, (code >> i) & 1 != 0)));
        let cube = m.cube_of(&lits);
        let (known, value) = next_value_masks(graph, state);
        for &i in &non_inputs {
            let bit = 1u64 << i;
            let next = if known & bit != 0 { value & bit != 0 } else { code & bit != 0 };
            let bucket = if next { &mut on } else { &mut off };
            bucket[i] = m.or(bucket[i], cube);
        }
    }

    let mut functions = Vec::with_capacity(non_inputs.len());
    for &i in &non_inputs {
        let name = graph.signals[i].name.clone();
        let function = extract_function(
            &mut m,
            SignalId::from(i),
            name,
            on[i],
            off[i],
            num_signals,
            &|var| var as usize,
        )?;
        functions.push(function);
    }
    Ok(NextStateFunctions {
        functions,
        num_variables: num_signals,
        strategy: LogicStrategy::Symbolic,
        bdd_nodes: m.num_nodes(),
    })
}

/// Derives the next-state functions of a (CSC-satisfying, consistent) STG
/// without ever enumerating its states.
///
/// `initial_code` seeds the signal values of the initial marking (bit `i` =
/// signal `i`; signals past bit 63 start at 0), matching
/// [`stg::Stg::symbolic_encoded_state_space`]; `max_iterations` bounds the
/// reachability fixpoint.
///
/// The next value of signal `a` in a reachable state is determined from the
/// excitation predicates of its transitions (preset-marked cubes): rising —
/// or toggling out of 0 — demands 1, falling (or toggling out of 1) demands
/// 0, and an unexcited signal holds its current value.  Projecting the
/// resulting state sets onto the code variables yields the ON/OFF sets of
/// the paper; a code in both is exactly a CSC violation.
///
/// # Errors
///
/// [`LogicError::ReachabilityNotConverged`] if the fixpoint hits its cap,
/// [`LogicError::InitialCodeMismatch`] if `initial_code` does not label the
/// reachable markings consistently (wrong seed: some edge is blocked by a
/// wrong signal value, so markings are lost — or a marking gets two codes),
/// and [`LogicError::CscViolation`] when CSC does not hold.
pub fn derive_from_stg(
    stg: &Stg,
    initial_code: u64,
    max_iterations: Option<usize>,
) -> Result<NextStateFunctions, LogicError> {
    analyze_stg(stg, initial_code, max_iterations).map(|report| report.functions)
}

/// Everything the fully symbolic pipeline learns about an STG in one pass:
/// the derived functions, the implementability diagnostics, and the state
/// counts (so callers — e.g. the flow facade — do not re-run reachability).
#[derive(Clone, Debug)]
pub struct SymbolicLogicReport {
    /// The derived and minimized next-state functions.
    pub functions: NextStateFunctions,
    /// Typed implementability diagnostics (output persistency); empty when
    /// the specification admits a hazard-free implementation.
    pub diagnostics: Vec<LogicDiagnostic>,
    /// Reachable markings of the net (places-only fixpoint), as a float.
    pub markings: f64,
}

/// [`derive_from_stg`] plus the symbolic output-persistency check and the
/// reachable-marking count — one reachability analysis instead of three.
///
/// ```
/// use logic::analyze_stg;
///
/// // Two independent handshakes: 16 reachable markings, each ack follows
/// // its own request with a single literal, no persistency hazards.
/// let model = stg::benchmarks::parallel_handshakes(2);
/// let report = analyze_stg(&model, 0, None)?;
/// assert_eq!(report.markings, 16.0);
/// assert_eq!(report.functions.total_literals(), 2);
/// assert!(report.diagnostics.is_empty());
/// # Ok::<(), logic::LogicError>(())
/// ```
///
/// # Errors
///
/// Same as [`derive_from_stg`].
pub fn analyze_stg(
    stg: &Stg,
    initial_code: u64,
    max_iterations: Option<usize>,
) -> Result<SymbolicLogicReport, LogicError> {
    let reach = ReachabilityConfig { max_iterations, ..Default::default() };
    analyze_inner(stg, initial_code, &reach)
}

/// [`analyze_stg`] under a shared resource [`Budget`]: reachability and the
/// ISOP cover extractions charge the budget, and a tripped ceiling surfaces
/// as [`LogicError::Budget`] within one check interval.
pub fn analyze_stg_budgeted(
    stg: &Stg,
    initial_code: u64,
    max_iterations: Option<usize>,
    budget: &Budget,
) -> Result<SymbolicLogicReport, LogicError> {
    let reach =
        ReachabilityConfig { max_iterations, budget: Some(budget.clone()), ..Default::default() };
    analyze_inner(stg, initial_code, &reach)
}

/// [`analyze_stg`] under a caller-supplied [`ReachabilityConfig`]: the
/// fallback ladder uses this to re-run the analysis with a restricted
/// fixpoint (monolithic BFS) while keeping the same shared budget.
pub fn analyze_stg_with(
    stg: &Stg,
    initial_code: u64,
    reach: &ReachabilityConfig,
) -> Result<SymbolicLogicReport, LogicError> {
    analyze_inner(stg, initial_code, reach)
}

/// Maps a reachability failure onto the logic error space.  Reachability
/// only fails through its budget or a truncated fixpoint, so the catch-all
/// arm is an internal invariant.
fn reachability_error(e: StgError) -> LogicError {
    match e {
        StgError::Budget(trip) => LogicError::Budget(trip),
        StgError::NotConverged { iterations } => {
            LogicError::ReachabilityNotConverged { iterations }
        }
        other => unreachable!("reachability cannot fail with {other:?}"),
    }
}

fn analyze_inner(
    stg: &Stg,
    initial_code: u64,
    reach_config: &ReachabilityConfig,
) -> Result<SymbolicLogicReport, LogicError> {
    let budget = reach_config.budget.as_ref();
    let mut space = stg
        .try_symbolic_encoded_state_space(initial_code, reach_config)
        .map_err(reachability_error)?;
    let num_places = space.num_places();
    let num_signals = space.num_signals();
    let place_vars: Vec<VarId> = (0..num_places).map(|p| space.current_var_of_place(p)).collect();
    let signal_vars: Vec<VarId> =
        (0..num_signals).map(|s| space.current_var_of_signal(s)).collect();
    // Inverse map, manager variable → signal index, for the ISOP cubes.
    let mut signal_of_var = vec![usize::MAX; 2 * (num_places + num_signals)];
    for (s, &v) in signal_vars.iter().enumerate() {
        signal_of_var[v as usize] = s;
    }

    // Guard against a wrong `initial_code`: the signal pre-value literals in
    // the transition relations would silently block edges, truncating the
    // encoded space.  The places-only fixpoint is the ground truth: every
    // reachable marking must appear in the encoded space with exactly one
    // code.
    let marking_space = stg.try_symbolic_state_space(reach_config).map_err(reachability_error)?;
    let markings = marking_space.state_count_f64();
    let coded_states = space.state_count_f64();
    let reachable = space.reachable();
    let num_manager_vars = space.manager().num_vars();
    let m = space.manager_mut();
    let coded_markings = {
        let marked_only = m.exists_many(reachable, &signal_vars);
        // `marked_only` depends on the current place copies only; every
        // other manager variable is free in the count.
        let free_vars = (num_manager_vars - num_places) as i32;
        m.sat_count_f64(marked_only) / 2f64.powi(free_vars)
    };
    let close = |a: f64, b: f64| (a - b).abs() <= (a.abs().max(b.abs())) * 1e-9 + 0.25;
    if !close(markings, coded_markings) || !close(coded_states, coded_markings) {
        let round = |v: f64| if v >= u128::MAX as f64 { u128::MAX } else { v.round() as u128 };
        return Err(LogicError::InitialCodeMismatch {
            markings: round(markings),
            coded_markings: round(coded_markings),
            coded_states: round(coded_states),
        });
    }
    let place_quant = m.quant_cube(&place_vars);

    if let Some(budget) = budget {
        budget.set_stage("isop");
    }
    let mut functions = Vec::new();
    for signal in stg.non_input_signals() {
        m.check_budget()?;
        let index = signal.index();
        let a = m.var(signal_vars[index]);
        // Excitation predicates per polarity: some transition of the signal
        // has its whole preset marked.
        let mut rise = m.bottom();
        let mut fall = m.bottom();
        let mut toggle = m.bottom();
        for t in stg.transitions_of_signal(signal) {
            let polarity = match stg.label(t) {
                TransitionLabel::Edge { polarity, .. } => polarity,
                TransitionLabel::Dummy => continue,
            };
            let lits: Vec<(VarId, bool)> =
                stg.net().preset(t).iter().map(|p| (place_vars[p.index()], true)).collect();
            let cube = m.cube_of(&lits);
            let bucket = match polarity {
                Polarity::Rise => &mut rise,
                Polarity::Fall => &mut fall,
                Polarity::Toggle => &mut toggle,
            };
            *bucket = m.or(*bucket, cube);
        }
        // next = 1 ⟺ rising ∨ toggling out of 0 ∨ (stable at 1: neither
        // falling nor toggling).
        let not_a = m.not(a);
        let toggle_up = m.and(toggle, not_a);
        let not_fall = m.not(fall);
        let not_toggle = m.not(toggle);
        let hold_high = {
            let quiet = m.and(not_fall, not_toggle);
            m.and(a, quiet)
        };
        let on_pred = {
            let excited = m.or(rise, toggle_up);
            m.or(excited, hold_high)
        };
        let on_states = m.and(reachable, on_pred);
        let off_states = m.and_not(reachable, on_pred);
        // Project away the marking: what remains are the code sets.
        let on_codes = m.exists_cube(on_states, place_quant);
        let off_codes = m.exists_cube(off_states, place_quant);
        let function = extract_function(
            m,
            signal,
            stg.signal(signal).name.clone(),
            on_codes,
            off_codes,
            num_signals,
            &|var| signal_of_var[var as usize],
        )?;
        functions.push(function);
    }
    let diagnostics = persistency_diagnostics(stg, m, reachable, &place_vars, &signal_vars);
    m.check_budget()?;
    let bdd_nodes = space.manager().num_nodes();
    Ok(SymbolicLogicReport {
        functions: NextStateFunctions {
            functions,
            num_variables: num_signals,
            strategy: LogicStrategy::Symbolic,
            bdd_nodes,
        },
        diagnostics,
        markings,
    })
}

/// Symbolic output-persistency check: a non-input edge `t` is violated when
/// some reachable state enables both `t` and another transition `u` whose
/// firing disables `t` — structurally, `u` consumes a token `t` needs
/// (`pre(t) ∩ (pre(u) ∖ post(u)) ≠ ∅`) or switches `t`'s own signal away
/// from the value `t` requires.  The structural filter keeps the pair scan
/// cheap; co-enabledness is decided exactly on the reachable set.
fn persistency_diagnostics(
    stg: &Stg,
    m: &mut BddManager,
    reachable: Bdd,
    place_vars: &[VarId],
    signal_vars: &[VarId],
) -> Vec<LogicDiagnostic> {
    let net = stg.net();
    struct TransInfo {
        enabled: Bdd,
        pre: Vec<usize>,
        consumed: Vec<usize>,
        edge: Option<(usize, Polarity)>,
    }
    let infos: Vec<TransInfo> = (0..net.num_transitions())
        .map(|t| {
            let t_id = petri::TransId::from(t);
            let pre: Vec<usize> = net.preset(t_id).iter().map(|p| p.index()).collect();
            let post: Vec<usize> = net.postset(t_id).iter().map(|p| p.index()).collect();
            let consumed: Vec<usize> = pre.iter().copied().filter(|p| !post.contains(p)).collect();
            let edge = match stg.label(t_id) {
                TransitionLabel::Edge { signal, polarity } => Some((signal.index(), polarity)),
                TransitionLabel::Dummy => None,
            };
            let mut lits: Vec<(VarId, bool)> = pre.iter().map(|&p| (place_vars[p], true)).collect();
            if let Some((s, polarity)) = edge {
                match polarity {
                    Polarity::Rise => lits.push((signal_vars[s], false)),
                    Polarity::Fall => lits.push((signal_vars[s], true)),
                    Polarity::Toggle => {}
                }
            }
            let enabled = m.cube_of(&lits);
            TransInfo { enabled, pre, consumed, edge }
        })
        .collect();

    // The value `t` requires on its own signal, and the value `u` leaves the
    // signal at (None = no constraint / value-independent).
    let required = |polarity: Polarity| match polarity {
        Polarity::Rise => Some(false),
        Polarity::Fall => Some(true),
        Polarity::Toggle => None,
    };
    let mut diagnostics = Vec::new();
    let mut reported: Vec<String> = Vec::new();
    for (t, t_info) in infos.iter().enumerate() {
        let Some((t_signal, t_polarity)) = t_info.edge else { continue };
        if !stg.signal(SignalId::from(t_signal)).kind.is_non_input() {
            continue;
        }
        let signal_name = &stg.signal(SignalId::from(t_signal)).name;
        if reported.contains(signal_name) {
            continue;
        }
        for (u, u_info) in infos.iter().enumerate() {
            if u == t {
                continue;
            }
            let steals_token = t_info.pre.iter().any(|p| u_info.consumed.contains(p));
            let flips_value = match (required(t_polarity), u_info.edge) {
                (Some(needed), Some((u_signal, u_polarity))) if u_signal == t_signal => {
                    match u_polarity {
                        Polarity::Rise => !needed,
                        Polarity::Fall => needed,
                        // A co-enabled toggle starts from the value `t`
                        // requires and always leaves the opposite one.
                        Polarity::Toggle => true,
                    }
                }
                _ => false,
            };
            if !steals_token && !flips_value {
                continue;
            }
            let both = m.and(t_info.enabled, u_info.enabled);
            let witness = m.and(reachable, both);
            if !witness.is_false() {
                reported.push(signal_name.clone());
                diagnostics.push(LogicDiagnostic::OutputNotPersistent {
                    signal: signal_name.clone(),
                    disabled_by: net.transition_name(petri::TransId::from(u)).to_owned(),
                });
                break;
            }
        }
    }
    diagnostics
}

/// Checks `on ∧ off = ∅`, extracts the exact ON/OFF covers and the
/// DC-absorbing minimized cover, and maps the ISOP literals back onto
/// signal indices via `signal_of_var`.
fn extract_function(
    m: &mut BddManager,
    signal: SignalId,
    name: String,
    on: Bdd,
    off: Bdd,
    num_signals: usize,
    signal_of_var: &dyn Fn(VarId) -> usize,
) -> Result<SignalFunction, LogicError> {
    let clash = m.and(on, off);
    if !clash.is_false() {
        return Err(LogicError::CscViolation {
            signal: name,
            code: clash_code(m, clash, num_signals, signal_of_var),
        });
    }
    let upper = m.not(off);
    let minimized_isop = m.isop(on, upper);
    let minimized = refine_cover(m, minimized_isop.cubes, on, off);
    let on_cover = m.isop(on, on).cubes;
    let off_cover = m.isop(off, off).cubes;
    Ok(SignalFunction {
        signal,
        name,
        on_set: cubes_to_cover(&on_cover, num_signals, signal_of_var),
        off_set: cubes_to_cover(&off_cover, num_signals, signal_of_var),
        minimized: cubes_to_cover(&minimized, num_signals, signal_of_var),
    })
}

/// A witness code from the `ON ∧ OFF` intersection, rendered most
/// significant signal first (unconstrained signals read as 0).
fn clash_code(
    m: &BddManager,
    clash: Bdd,
    num_signals: usize,
    signal_of_var: &dyn Fn(VarId) -> usize,
) -> String {
    let mut code_bits = vec![false; num_signals];
    if let Some(lits) = m.one_sat(clash) {
        for (var, value) in lits {
            let s = signal_of_var(var);
            if s < num_signals {
                code_bits[s] = value;
            }
        }
    }
    if num_signals <= 64 {
        let code = code_bits.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i));
        code_pattern(code, num_signals)
    } else {
        code_bits.iter().rev().map(|&b| if b { '1' } else { '0' }).collect()
    }
}

/// Polishes an ISOP cover with BDD-exact passes: greedily expand each cube
/// against the OFF-set (drop literals while the cube stays disjoint from
/// it, making the cube prime), then drop cubes whose ON contribution the
/// rest of the cover already provides.  Both passes only ever reduce the
/// literal count; correctness is maintained exactly because the checks run
/// on the ON/OFF BDDs, not on cube lists.
fn refine_cover(
    m: &mut BddManager,
    cubes: Vec<Vec<(VarId, bool)>>,
    on: Bdd,
    off: Bdd,
) -> Vec<Vec<(VarId, bool)>> {
    let mut expanded: Vec<Vec<(VarId, bool)>> = cubes
        .into_iter()
        .map(|mut lits| {
            let mut i = 0;
            while i < lits.len() {
                let mut trial = lits.clone();
                trial.remove(i);
                let cube = m.cube_of(&trial);
                let overlap = m.and(cube, off);
                if overlap.is_false() {
                    lits = trial;
                } else {
                    i += 1;
                }
            }
            lits
        })
        .collect();
    // Widest-first removal order, ties broken lexicographically, so the
    // result is deterministic.
    expanded.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    let mut alive = vec![true; expanded.len()];
    let mut alive_count = expanded.len();
    for i in 0..expanded.len() {
        if alive_count <= 1 {
            break;
        }
        let mut rest = m.bottom();
        for (j, lits) in expanded.iter().enumerate() {
            if j != i && alive[j] {
                let cube = m.cube_of(lits);
                rest = m.or(rest, cube);
            }
        }
        let cube = m.cube_of(&expanded[i]);
        let contribution = m.and(cube, on);
        if m.implies(contribution, rest) {
            alive[i] = false;
            alive_count -= 1;
        }
    }
    expanded.into_iter().zip(alive).filter_map(|(lits, keep)| keep.then_some(lits)).collect()
}

/// Maps manager-variable cubes onto [`Cube`]s over the signal space.
fn cubes_to_cover(
    cubes: &[Vec<(VarId, bool)>],
    num_signals: usize,
    signal_of_var: &dyn Fn(VarId) -> usize,
) -> Cover {
    cubes
        .iter()
        .map(|lits| {
            let mapped: Vec<(usize, bool)> = lits
                .iter()
                .map(|&(var, value)| {
                    let s = signal_of_var(var);
                    debug_assert!(s < num_signals, "cover literal on a non-signal variable");
                    (s, value)
                })
                .collect();
            Cube::from_literals(num_signals, &mapped)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive_next_state_functions_with;
    use stg::benchmarks;

    fn graph_of(model: &Stg) -> EncodedGraph {
        EncodedGraph::from_state_graph(&model.state_graph(1_000_000).unwrap())
    }

    /// Indicator equality of two covers over every code of a (small) space.
    fn same_semantics(a: &Cover, b: &Cover, num_signals: usize) -> bool {
        assert!(num_signals <= 16, "exhaustive check only for small spaces");
        (0..(1u64 << num_signals)).all(|code| a.contains_minterm(code) == b.contains_minterm(code))
    }

    #[test]
    fn stg_engine_matches_graph_engines_on_csc_holding_models() {
        for model in [
            benchmarks::handshake(),
            benchmarks::parallel_handshakes(3),
            benchmarks::parallelizer(3),
        ] {
            let graph = graph_of(&model);
            let initial_code = graph.code(graph.ts.initial());
            let explicit =
                derive_next_state_functions_with(&graph, LogicStrategy::Explicit).unwrap();
            let symbolic =
                derive_next_state_functions_with(&graph, LogicStrategy::Symbolic).unwrap();
            let from_stg = derive_from_stg(&model, initial_code, None).unwrap();
            for (e, (s, g)) in explicit
                .functions
                .iter()
                .zip(symbolic.functions.iter().zip(from_stg.functions.iter()))
            {
                assert_eq!(e.name, s.name, "{}", model.name());
                assert_eq!(e.name, g.name, "{}", model.name());
                let n = explicit.num_variables;
                assert!(same_semantics(&e.on_set, &s.on_set, n), "{} {}", model.name(), e.name);
                assert!(same_semantics(&e.off_set, &s.off_set, n), "{} {}", model.name(), e.name);
                assert!(same_semantics(&e.on_set, &g.on_set, n), "{} {}", model.name(), e.name);
                assert!(same_semantics(&e.off_set, &g.off_set, n), "{} {}", model.name(), e.name);
                assert!(
                    s.literals() <= e.literals(),
                    "{} {}: symbolic {} > explicit {}",
                    model.name(),
                    e.name,
                    s.literals(),
                    e.literals()
                );
            }
        }
    }

    /// A free choice between two outputs: `x+` releases one token that
    /// either `a+` or `b+` consumes, and each branch acknowledges through
    /// its own `x-` instance.  CSC holds (every state has a unique code),
    /// but firing either output disables the other — the canonical output
    /// persistency violation.
    fn output_choice() -> Stg {
        use stg::{SignalKind, StgBuilder};
        let mut bld = StgBuilder::new("choice");
        let x = bld.add_signal("x", SignalKind::Input);
        let a = bld.add_signal("a", SignalKind::Output);
        let b = bld.add_signal("b", SignalKind::Output);
        let xp = bld.add_edge(x, Polarity::Rise);
        let ap = bld.add_edge(a, Polarity::Rise);
        let xma = bld.add_edge(x, Polarity::Fall);
        let am = bld.add_edge(a, Polarity::Fall);
        let bp = bld.add_edge(b, Polarity::Rise);
        let xmb = bld.add_edge(x, Polarity::Fall);
        let bm = bld.add_edge(b, Polarity::Fall);
        let choice = bld.add_place("choice", false);
        bld.arc_transition_to_place(xp, choice);
        bld.arc_place_to_transition(choice, ap);
        bld.arc_place_to_transition(choice, bp);
        bld.connect(ap, xma, false);
        bld.connect(xma, am, false);
        bld.connect(bp, xmb, false);
        bld.connect(xmb, bm, false);
        let idle = bld.add_place("idle", true);
        bld.arc_transition_to_place(am, idle);
        bld.arc_transition_to_place(bm, idle);
        bld.arc_place_to_transition(idle, xp);
        bld.build().unwrap()
    }

    #[test]
    fn persistency_violations_surface_symbolically() {
        let model = output_choice();
        let sg = model.state_graph(1_000).unwrap();
        assert!(sg.complete_state_coding_holds(), "the choice must not hide a CSC conflict");
        // Ground truth from the explicit graph-level check.
        let graph = EncodedGraph::from_state_graph(&sg);
        let mut explicit: Vec<String> = crate::area::output_persistency_violations(&graph)
            .into_iter()
            .map(|d| match d {
                LogicDiagnostic::OutputNotPersistent { signal, .. } => signal,
                other => panic!("unexpected diagnostic {other:?}"),
            })
            .collect();
        explicit.sort();
        assert_eq!(explicit, ["a", "b"], "both outputs lose the race");
        // The fully symbolic analysis must find the same signals.
        let report = analyze_stg(&model, 0, None).unwrap();
        let mut symbolic: Vec<String> = report
            .diagnostics
            .into_iter()
            .map(|d| match d {
                LogicDiagnostic::OutputNotPersistent { signal, .. } => signal,
                other => panic!("unexpected diagnostic {other:?}"),
            })
            .collect();
        symbolic.sort();
        assert_eq!(symbolic, explicit);
        // Persistent models report nothing.
        let clean = analyze_stg(&benchmarks::parallel_handshakes(3), 0, None).unwrap();
        assert!(clean.diagnostics.is_empty());
    }

    #[test]
    fn stg_engine_detects_csc_violations() {
        let err = derive_from_stg(&benchmarks::pulser(), 0, None).unwrap_err();
        assert!(matches!(err, LogicError::CscViolation { .. }), "{err}");
        // vme_read's conflict also shows up without the explicit graph.
        let err = derive_from_stg(&benchmarks::vme_read(), 0, None).unwrap_err();
        assert!(matches!(err, LogicError::CscViolation { .. }), "{err}");
    }

    #[test]
    fn wrong_initial_code_is_rejected_not_mislabelled() {
        // The re-synthesized pulser starts with some signals at 1; seeding
        // the symbolic engine with all-zeros blocks edges and truncates the
        // space.  That must surface as InitialCodeMismatch, never as a
        // (wrong) function set.
        let solution =
            csc::solve_stg(&benchmarks::pulser(), &csc::SolverConfig::default()).unwrap();
        let encoded = solution.stg.expect("pulser re-synthesizes");
        let sg = encoded.state_graph(10_000).unwrap();
        let true_code = sg.code(sg.ts.initial());
        assert_ne!(true_code, 0, "the regression needs a non-zero initial code");
        let err = derive_from_stg(&encoded, 0, None).unwrap_err();
        assert!(matches!(err, LogicError::InitialCodeMismatch { .. }), "{err}");
        // With the correct seed the derivation agrees with the explicit
        // engine.
        let funcs = derive_from_stg(&encoded, true_code, None).unwrap();
        let graph = EncodedGraph::from_state_graph(&sg);
        let explicit = derive_next_state_functions_with(&graph, LogicStrategy::Explicit).unwrap();
        assert_eq!(funcs.total_literals(), explicit.total_literals());
        assert_eq!(funcs.total_cubes(), explicit.total_cubes());
    }

    #[test]
    fn stg_engine_reports_non_convergence() {
        let err = derive_from_stg(&benchmarks::parallel_handshakes(4), 0, Some(1)).unwrap_err();
        assert!(matches!(err, LogicError::ReachabilityNotConverged { iterations: 1 }), "{err}");
    }

    #[test]
    fn wide_designs_derive_past_64_signals() {
        // 40 independent handshakes: 80 signals, 4^40 states.  Every ack
        // follows its own request with a single literal.
        let model = benchmarks::parallel_handshakes(40);
        let funcs = derive_from_stg(&model, 0, None).unwrap();
        assert_eq!(funcs.num_variables, 80);
        assert_eq!(funcs.functions.len(), 40);
        for f in &funcs.functions {
            assert_eq!(f.literals(), 1, "{}: ack_i = req_i", f.name);
            assert_eq!(f.cubes(), 1, "{}", f.name);
        }
        assert_eq!(funcs.total_literals(), 40);
        assert!(funcs.bdd_nodes > 0);
    }

    #[test]
    fn minimized_covers_respect_dont_cares() {
        // The counter's code space is mostly unreachable; the minimized
        // covers must still separate ON from OFF exactly on the reachable
        // codes.
        let model = benchmarks::counter(2);
        // counter(2) violates CSC before solving, so use the solved graph.
        let solution = csc::solve_stg(&model, &csc::SolverConfig::default()).unwrap();
        let graph = solution.graph;
        let explicit = derive_next_state_functions_with(&graph, LogicStrategy::Explicit).unwrap();
        let symbolic = derive_next_state_functions_with(&graph, LogicStrategy::Symbolic).unwrap();
        let n = explicit.num_variables;
        for (e, s) in explicit.functions.iter().zip(&symbolic.functions) {
            for cube in e.on_set.cubes() {
                let bits = (0..n)
                    .filter(|&i| cube.literal(i) == crate::cube::Literal::One)
                    .fold(0u64, |acc, i| acc | (1 << i));
                assert!(s.minimized.contains_minterm(bits), "{}: ON code lost", e.name);
            }
            for cube in e.off_set.cubes() {
                let bits = (0..n)
                    .filter(|&i| cube.literal(i) == crate::cube::Literal::One)
                    .fold(0u64, |acc, i| acc | (1 << i));
                assert!(!s.minimized.contains_minterm(bits), "{}: OFF code covered", e.name);
            }
            assert!(s.literals() <= e.literals(), "{}", e.name);
        }
    }
}
