//! Area estimation and speed-independence (output persistency) checks,
//! reported through typed diagnostics.

use crate::nextstate::{
    derive_next_state_functions_with, LogicError, LogicStrategy, NextStateFunctions,
};
use csc::EncodedGraph;
use std::fmt;
use stg::SignalKind;
use ts::EventId;

/// Area of one signal's implementation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignalArea {
    /// Signal name.
    pub name: String,
    /// Literal count of the minimized next-state cover.
    pub literals: usize,
    /// Product-term count of the minimized cover.
    pub cubes: usize,
}

/// Literal-count area report for a whole state graph — the metric reported
/// in the "area" columns of Table 2.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AreaReport {
    /// Per-signal breakdown (non-input signals only).
    pub signals: Vec<SignalArea>,
    /// Sum of all literal counts.
    pub total_literals: usize,
    /// Sum of all product-term counts.
    pub total_cubes: usize,
    /// The derivation engine the estimate came from.
    pub strategy: LogicStrategy,
    /// Peak BDD node count of the derivation (0 for the explicit engine).
    pub bdd_nodes: usize,
}

/// One implementability problem found on an encoded graph, in the style of
/// `csc::VerifyDiagnostic`: a typed category that tests and reports can
/// match on instead of parsing strings.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum LogicDiagnostic {
    /// A non-input signal can be disabled while excited: no hazard-free
    /// speed-independent implementation exists.
    OutputNotPersistent {
        /// The non-persistent signal.
        signal: String,
        /// The event that disables it.
        disabled_by: String,
    },
    /// The signal's next-state function is ill-defined because two states
    /// share the reported code but demand different next values.
    NotImplementable {
        /// The signal whose function is ill-defined.
        signal: String,
        /// The conflicting code (binary, most significant signal first).
        code: String,
    },
    /// Next-state derivation failed before producing functions (e.g. a
    /// reachability fixpoint that did not converge).
    DerivationFailed {
        /// The underlying error, rendered.
        reason: String,
    },
}

impl fmt::Display for LogicDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicDiagnostic::OutputNotPersistent { signal, disabled_by } => {
                write!(f, "output '{signal}' is not persistent (disabled by {disabled_by})")
            }
            LogicDiagnostic::NotImplementable { signal, code } => {
                write!(f, "signal '{signal}' is not implementable: CSC conflict on code {code}")
            }
            LogicDiagnostic::DerivationFailed { reason } => {
                write!(f, "logic derivation failed: {reason}")
            }
        }
    }
}

/// Converts a derivation error into its diagnostic category.
impl From<&LogicError> for LogicDiagnostic {
    fn from(error: &LogicError) -> Self {
        match error {
            LogicError::CscViolation { signal, code } => {
                LogicDiagnostic::NotImplementable { signal: signal.clone(), code: code.clone() }
            }
            other => LogicDiagnostic::DerivationFailed { reason: other.to_string() },
        }
    }
}

/// Estimates the implementation area of a CSC-satisfying encoded graph as
/// the total literal count of the minimized next-state functions, using the
/// default (symbolic) strategy.
///
/// # Errors
///
/// Returns [`LogicError::CscViolation`] when the graph does not satisfy CSC.
pub fn estimate_area(graph: &EncodedGraph) -> Result<AreaReport, LogicError> {
    estimate_area_with(graph, LogicStrategy::default())
}

/// [`estimate_area`] with an explicit engine choice.
///
/// # Errors
///
/// Same as [`estimate_area`], plus [`LogicError::TooManySignals`] under
/// [`LogicStrategy::Explicit`].
pub fn estimate_area_with(
    graph: &EncodedGraph,
    strategy: LogicStrategy,
) -> Result<AreaReport, LogicError> {
    let functions = derive_next_state_functions_with(graph, strategy)?;
    Ok(area_of_functions(&functions))
}

/// Folds derived functions into an [`AreaReport`] (shared by the graph- and
/// STG-driven pipelines).
pub fn area_of_functions(functions: &NextStateFunctions) -> AreaReport {
    let signals: Vec<SignalArea> = functions
        .functions
        .iter()
        .map(|f| SignalArea { name: f.name.clone(), literals: f.literals(), cubes: f.cubes() })
        .collect();
    let total_literals = signals.iter().map(|s| s.literals).sum();
    let total_cubes = signals.iter().map(|s| s.cubes).sum();
    AreaReport {
        signals,
        total_literals,
        total_cubes,
        strategy: functions.strategy,
        bdd_nodes: functions.bdd_nodes,
    }
}

/// Returns one typed diagnostic per non-input signal that is not persistent
/// in the state graph: some other event can disable an excited output,
/// which makes a hazard-free speed-independent implementation impossible.
pub fn output_persistency_violations(graph: &EncodedGraph) -> Vec<LogicDiagnostic> {
    let mut violations = Vec::new();
    let mut seen: Vec<String> = Vec::new();
    for e in 0..graph.ts.num_events() {
        let event = EventId::from(e);
        let Some((signal, _)) = graph.event_edges[e] else { continue };
        if graph.signals[signal.index()].kind == SignalKind::Input {
            continue;
        }
        if let Some(violation) = graph.ts.persistency_violation(event) {
            let name = graph.signals[signal.index()].name.clone();
            if !seen.contains(&name) {
                seen.push(name.clone());
                violations.push(LogicDiagnostic::OutputNotPersistent {
                    signal: name,
                    disabled_by: graph.ts.event_name(violation.disabled_by).to_owned(),
                });
            }
        }
    }
    violations
}

/// All implementability diagnostics of an encoded graph: persistency
/// violations plus the derivation outcome under `strategy`.  An empty
/// result means the graph has hazard-free, well-defined logic.
pub fn logic_diagnostics(graph: &EncodedGraph, strategy: LogicStrategy) -> Vec<LogicDiagnostic> {
    let mut diagnostics = output_persistency_violations(graph);
    if let Err(error) = derive_next_state_functions_with(graph, strategy) {
        diagnostics.push(LogicDiagnostic::from(&error));
    }
    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;
    use csc::{solve_stg, SolverConfig};
    use stg::benchmarks;

    #[test]
    fn handshake_area_is_minimal() {
        let graph =
            EncodedGraph::from_state_graph(&benchmarks::handshake().state_graph(100).unwrap());
        for strategy in [LogicStrategy::Explicit, LogicStrategy::Symbolic] {
            let report = estimate_area_with(&graph, strategy).unwrap();
            assert_eq!(report.total_literals, 1);
            assert_eq!(report.signals.len(), 1);
            assert_eq!(report.signals[0].name, "ack");
            assert_eq!(report.strategy, strategy);
        }
        assert!(output_persistency_violations(&graph).is_empty());
        assert!(logic_diagnostics(&graph, LogicStrategy::default()).is_empty());
    }

    #[test]
    fn area_grows_with_problem_size() {
        let config = SolverConfig::default();
        let small = estimate_area(&solve_stg(&benchmarks::sequencer(2), &config).unwrap().graph)
            .unwrap()
            .total_literals;
        let large = estimate_area(&solve_stg(&benchmarks::sequencer(5), &config).unwrap().graph)
            .unwrap()
            .total_literals;
        assert!(large > small, "seq5 ({large}) must need more literals than seq2 ({small})");
    }

    #[test]
    fn unsolved_graph_cannot_be_estimated() {
        let graph =
            EncodedGraph::from_state_graph(&benchmarks::vme_read().state_graph(10_000).unwrap());
        assert!(estimate_area(&graph).is_err());
        // The failure surfaces as a typed NotImplementable diagnostic.
        let diagnostics = logic_diagnostics(&graph, LogicStrategy::default());
        assert!(
            diagnostics.iter().any(|d| matches!(d, LogicDiagnostic::NotImplementable { .. })),
            "{diagnostics:?}"
        );
        for d in &diagnostics {
            assert!(!d.to_string().is_empty());
        }
    }

    #[test]
    fn solved_graphs_are_output_persistent() {
        let config = SolverConfig::default();
        for model in [benchmarks::pulser(), benchmarks::vme_read()] {
            let solution = solve_stg(&model, &config).unwrap();
            assert!(
                output_persistency_violations(&solution.graph).is_empty(),
                "{} lost output persistency",
                model.name()
            );
        }
    }
}
