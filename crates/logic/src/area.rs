//! Area estimation and speed-independence (output persistency) checks.

use crate::nextstate::{derive_next_state_functions, LogicError};
use csc::EncodedGraph;
use stg::SignalKind;
use ts::EventId;

/// Area of one signal's implementation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignalArea {
    /// Signal name.
    pub name: String,
    /// Literal count of the minimized next-state cover.
    pub literals: usize,
    /// Product-term count of the minimized cover.
    pub cubes: usize,
}

/// Literal-count area report for a whole state graph — the metric reported
/// in the "area" columns of Table 2.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AreaReport {
    /// Per-signal breakdown (non-input signals only).
    pub signals: Vec<SignalArea>,
    /// Sum of all literal counts.
    pub total_literals: usize,
    /// Sum of all product-term counts.
    pub total_cubes: usize,
}

/// Estimates the implementation area of a CSC-satisfying encoded graph as
/// the total literal count of the minimized next-state functions.
///
/// # Errors
///
/// Returns [`LogicError::CscViolation`] when the graph does not satisfy CSC.
pub fn estimate_area(graph: &EncodedGraph) -> Result<AreaReport, LogicError> {
    let functions = derive_next_state_functions(graph)?;
    let signals: Vec<SignalArea> = functions
        .functions
        .iter()
        .map(|f| SignalArea { name: f.name.clone(), literals: f.literals(), cubes: f.cubes() })
        .collect();
    let total_literals = signals.iter().map(|s| s.literals).sum();
    let total_cubes = signals.iter().map(|s| s.cubes).sum();
    Ok(AreaReport { signals, total_literals, total_cubes })
}

/// Returns the names of non-input signals that are not persistent in the
/// state graph: some other event can disable an excited output, which makes
/// a hazard-free speed-independent implementation impossible.
pub fn output_persistency_violations(graph: &EncodedGraph) -> Vec<String> {
    let mut violations = Vec::new();
    for e in 0..graph.ts.num_events() {
        let event = EventId::from(e);
        let Some((signal, _)) = graph.event_edges[e] else { continue };
        if graph.signals[signal.index()].kind == SignalKind::Input {
            continue;
        }
        if graph.ts.persistency_violation(event).is_some() {
            let name = graph.signals[signal.index()].name.clone();
            if !violations.contains(&name) {
                violations.push(name);
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use csc::{solve_stg, SolverConfig};
    use stg::benchmarks;

    #[test]
    fn handshake_area_is_minimal() {
        let graph =
            EncodedGraph::from_state_graph(&benchmarks::handshake().state_graph(100).unwrap());
        let report = estimate_area(&graph).unwrap();
        assert_eq!(report.total_literals, 1);
        assert_eq!(report.signals.len(), 1);
        assert_eq!(report.signals[0].name, "ack");
        assert!(output_persistency_violations(&graph).is_empty());
    }

    #[test]
    fn area_grows_with_problem_size() {
        let config = SolverConfig::default();
        let small = estimate_area(&solve_stg(&benchmarks::sequencer(2), &config).unwrap().graph)
            .unwrap()
            .total_literals;
        let large = estimate_area(&solve_stg(&benchmarks::sequencer(5), &config).unwrap().graph)
            .unwrap()
            .total_literals;
        assert!(large > small, "seq5 ({large}) must need more literals than seq2 ({small})");
    }

    #[test]
    fn unsolved_graph_cannot_be_estimated() {
        let graph =
            EncodedGraph::from_state_graph(&benchmarks::vme_read().state_graph(10_000).unwrap());
        assert!(estimate_area(&graph).is_err());
    }

    #[test]
    fn solved_graphs_are_output_persistent() {
        let config = SolverConfig::default();
        for model in [benchmarks::pulser(), benchmarks::vme_read()] {
            let solution = solve_stg(&model, &config).unwrap();
            assert!(
                output_persistency_violations(&solution.graph).is_empty(),
                "{} lost output persistency",
                model.name()
            );
        }
    }
}
