//! A compact two-level minimizer (expand + irredundant).
//!
//! The minimizer follows the classical espresso recipe in reduced form:
//! every ON-set cube is greedily *expanded* (literals are dropped while the
//! cube stays disjoint from the OFF-set, so don't-care minterms are absorbed
//! implicitly), then an *irredundant* pass removes cubes whose minterms are
//! already covered by the rest of the cover.  The result is a valid cover of
//! the ON-set that never intersects the OFF-set; it is not guaranteed to be
//! globally minimum, which matches the paper's use of literal counts as an
//! area *estimate*.

use crate::cube::{Cover, Cube, Literal};

/// Minimizes `on_set` against `off_set`.
///
/// Every minterm of `on_set` remains covered; no cube of the result
/// intersects `off_set`; everything else (the don't-care space) may be
/// absorbed freely.
///
/// # Panics
///
/// Panics if a cube of `on_set` intersects `off_set` (the caller guarantees
/// disjointness — for next-state functions that is exactly the CSC
/// property).
pub fn minimize_cover(on_set: &Cover, off_set: &Cover) -> Cover {
    for cube in on_set.cubes() {
        assert!(
            !off_set.intersects_cube(cube),
            "ON-set cube {cube} intersects the OFF-set; the function is ill-defined"
        );
    }

    // Expansion: drop literals greedily, preferring the literal whose removal
    // keeps the cube disjoint from the OFF-set.
    let mut expanded: Vec<Cube> = Vec::with_capacity(on_set.len());
    for cube in on_set.cubes() {
        let mut current = cube.clone();
        let num_vars = current.num_vars();
        loop {
            let mut dropped_any = false;
            for var in 0..num_vars {
                if current.literal(var) == Literal::DontCare {
                    continue;
                }
                let mut trial = current.clone();
                trial.set_literal(var, Literal::DontCare);
                if !off_set.intersects_cube(&trial) {
                    current = trial;
                    dropped_any = true;
                }
            }
            if !dropped_any {
                break;
            }
        }
        expanded.push(current);
    }

    // Deduplicate and drop cubes covered by another single cube.
    expanded.sort_by_key(|c| std::cmp::Reverse(c.literal_count()));
    let mut kept: Vec<Cube> = Vec::new();
    for cube in expanded.into_iter() {
        if !kept.iter().any(|k| k.covers(&cube)) {
            kept.push(cube);
        }
    }

    // Irredundant pass: remove cubes all of whose ON-set minterms are covered
    // by the remaining cubes.  Checking against the original ON-set keeps the
    // pass exact without enumerating the cube's full minterm set.
    let mut result: Vec<Cube> = kept.clone();
    let mut index = 0;
    while index < result.len() {
        let candidate = result[index].clone();
        let others: Vec<&Cube> =
            result.iter().enumerate().filter(|&(i, _)| i != index).map(|(_, c)| c).collect();
        let still_covered = on_set.cubes().iter().all(|on_cube| {
            if !candidate.intersects(on_cube) {
                return true;
            }
            // Every ON-set cube that the candidate helps cover must already be
            // covered by some other cube entirely (ON-set cubes are minterms
            // or small cubes here, so whole-cube coverage is the right test).
            others.iter().any(|o| o.covers(on_cube))
        });
        if still_covered && result.len() > 1 {
            result.remove(index);
        } else {
            index += 1;
        }
    }

    Cover::from_cubes(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minterms(n: usize, bits: &[u64]) -> Cover {
        bits.iter().map(|&b| Cube::minterm(n, b)).collect()
    }

    #[test]
    fn xor_cannot_be_compressed() {
        let on = minterms(2, &[0b01, 0b10]);
        let off = minterms(2, &[0b00, 0b11]);
        let min = minimize_cover(&on, &off);
        assert_eq!(min.len(), 2);
        assert_eq!(min.literal_count(), 4);
    }

    #[test]
    fn single_variable_function_collapses_to_one_literal() {
        // f = a over variables (a, b): ON = {10, 11}, OFF = {00, 01}.
        let on = minterms(2, &[0b01, 0b11]);
        let off = minterms(2, &[0b00, 0b10]);
        let min = minimize_cover(&on, &off);
        assert_eq!(min.len(), 1);
        assert_eq!(min.literal_count(), 1);
        assert!(min.contains_minterm(0b01));
        assert!(min.contains_minterm(0b11));
        assert!(!min.contains_minterm(0b00));
    }

    #[test]
    fn dont_cares_are_absorbed() {
        // Three variables; ON = {000}, OFF = {111}; everything else is DC.
        let on = minterms(3, &[0b000]);
        let off = minterms(3, &[0b111]);
        let min = minimize_cover(&on, &off);
        assert_eq!(min.len(), 1);
        assert!(min.literal_count() <= 1, "a single literal separates ON from OFF");
        assert!(min.contains_minterm(0b000));
        assert!(!min.contains_minterm(0b111));
    }

    #[test]
    fn cover_remains_correct_on_random_functions() {
        // SplitMix64 keeps the test dependency-free and deterministic.
        let mut state = 7u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        for _ in 0..20 {
            let n = 4;
            let mut on_bits = Vec::new();
            let mut off_bits = Vec::new();
            for m in 0..(1u64 << n) {
                match next() % 3 {
                    0 => on_bits.push(m),
                    1 => off_bits.push(m),
                    _ => {}
                }
            }
            if on_bits.is_empty() {
                continue;
            }
            let on = minterms(n, &on_bits);
            let off = minterms(n, &off_bits);
            let min = minimize_cover(&on, &off);
            for &m in &on_bits {
                assert!(min.contains_minterm(m), "ON minterm {m:b} lost");
            }
            for &m in &off_bits {
                assert!(!min.contains_minterm(m), "OFF minterm {m:b} covered");
            }
            assert!(min.literal_count() <= on.literal_count());
        }
    }

    #[test]
    #[should_panic(expected = "intersects the OFF-set")]
    fn overlapping_on_and_off_sets_panic() {
        let on = minterms(2, &[0b01]);
        let off = minterms(2, &[0b01]);
        let _ = minimize_cover(&on, &off);
    }

    #[test]
    fn empty_on_set_gives_constant_zero() {
        let min = minimize_cover(&Cover::empty(), &minterms(2, &[0b00]));
        assert!(min.is_empty());
        assert_eq!(min.literal_count(), 0);
    }
}
