//! A compact two-level minimizer (expand + irredundant).
//!
//! The minimizer follows the classical espresso recipe in reduced form:
//! every ON-set cube is greedily *expanded* (literals are dropped while the
//! cube stays disjoint from the OFF-set, so don't-care minterms are absorbed
//! implicitly), then an *irredundant* pass removes cubes whose minterms are
//! already covered by the rest of the cover.  The result is a valid cover of
//! the ON-set that never intersects the OFF-set; it is not guaranteed to be
//! globally minimum, which matches the paper's use of literal counts as an
//! area *estimate*.
//!
//! Both passes run over shared indexes instead of quadratic rescans:
//!
//! * **Expansion** keeps, per OFF-set cube, the set of variables on which it
//!   conflicts with the cube being expanded (the disjointness witnesses).
//!   Dropping a literal is legal exactly when no OFF cube would lose its
//!   last witness, so each candidate drop is a constant-time counter check
//!   plus an incidence-list update — not a fresh cube-against-cover scan.
//!   Because a growing cube only ever *loses* witnesses, one pass over the
//!   variables reaches the same fixpoint the old retry loop did.
//! * **Irredundancy** builds the ON-cube ↔ cover-cube incidence once
//!   (which cover cubes fully cover each ON cube, which ON cubes each cover
//!   cube touches) and then decides each removal from per-ON-cube cover
//!   counters maintained across removals.

use crate::cube::{Cover, Cube, Literal};

/// Minimizes `on_set` against `off_set`.
///
/// Every minterm of `on_set` remains covered; no cube of the result
/// intersects `off_set`; everything else (the don't-care space) may be
/// absorbed freely.
///
/// # Panics
///
/// Panics if a cube of `on_set` intersects `off_set` (the caller guarantees
/// disjointness — for next-state functions that is exactly the CSC
/// property).
pub fn minimize_cover(on_set: &Cover, off_set: &Cover) -> Cover {
    for cube in on_set.cubes() {
        assert!(
            !off_set.intersects_cube(cube),
            "ON-set cube {cube} intersects the OFF-set; the function is ill-defined"
        );
    }

    // --- Expansion over the conflict index -------------------------------
    let mut expanded: Vec<Cube> = Vec::with_capacity(on_set.len());
    let num_vars = on_set.cubes().first().map_or(0, Cube::num_vars);
    // Reused per ON cube: off-cube → number of conflict variables left, and
    // variable → off-cubes witnessed only through it.
    let mut witness_count: Vec<usize> = Vec::new();
    let mut off_at_var: Vec<Vec<usize>> = vec![Vec::new(); num_vars];
    for cube in on_set.cubes() {
        witness_count.clear();
        witness_count.resize(off_set.len(), 0);
        for list in &mut off_at_var {
            list.clear();
        }
        for (j, off) in off_set.cubes().iter().enumerate() {
            let vars = cube.conflict_vars(off);
            debug_assert!(!vars.is_empty(), "disjointness was asserted above");
            witness_count[j] = vars.len();
            for v in vars {
                off_at_var[v].push(j);
            }
        }
        let mut current = cube.clone();
        for (var, witnesses) in off_at_var.iter_mut().enumerate() {
            if current.literal(var) == Literal::DontCare {
                continue;
            }
            // Dropping `var` is sound iff every OFF cube witnessed at `var`
            // keeps at least one other witness.
            if witnesses.iter().all(|&j| witness_count[j] >= 2) {
                for &j in witnesses.iter() {
                    witness_count[j] -= 1;
                }
                witnesses.clear();
                current.set_literal(var, Literal::DontCare);
            }
        }
        expanded.push(current);
    }

    // Deduplicate and drop cubes covered by another single cube.
    expanded.sort_by_key(|c| std::cmp::Reverse(c.literal_count()));
    let mut kept: Vec<Cube> = Vec::new();
    for cube in expanded.into_iter() {
        if !kept.iter().any(|k| k.covers(&cube)) {
            kept.push(cube);
        }
    }

    // --- Irredundant pass over the containment index ---------------------
    //
    // A cube is redundant when every ON-set cube it intersects is entirely
    // covered by some other remaining cube (ON-set cubes are minterms or
    // small cubes here, so whole-cube coverage is the right test).  Build
    // the incidence once; maintain per-ON-cube cover counters as cubes are
    // removed.
    let mut cover_count: Vec<usize> = vec![0; on_set.len()];
    let mut covers: Vec<Vec<usize>> = Vec::with_capacity(kept.len());
    let mut touches: Vec<Vec<usize>> = Vec::with_capacity(kept.len());
    for cube in &kept {
        let mut covered = Vec::new();
        let mut touched = Vec::new();
        for (o, on_cube) in on_set.cubes().iter().enumerate() {
            if cube.intersects(on_cube) {
                touched.push(o);
                if cube.covers(on_cube) {
                    covered.push(o);
                    cover_count[o] += 1;
                }
            }
        }
        covers.push(covered);
        touches.push(touched);
    }
    let mut alive = vec![true; kept.len()];
    let mut alive_count = kept.len();
    for i in 0..kept.len() {
        if alive_count <= 1 {
            break;
        }
        let fully_covers = |o: usize| covers[i].binary_search(&o).is_ok();
        let removable =
            touches[i].iter().all(|&o| cover_count[o] - usize::from(fully_covers(o)) >= 1);
        if removable {
            alive[i] = false;
            alive_count -= 1;
            for &o in &covers[i] {
                cover_count[o] -= 1;
            }
        }
    }

    Cover::from_cubes(
        kept.into_iter().zip(alive).filter_map(|(c, keep)| keep.then_some(c)).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minterms(n: usize, bits: &[u64]) -> Cover {
        bits.iter().map(|&b| Cube::minterm(n, b)).collect()
    }

    #[test]
    fn xor_cannot_be_compressed() {
        let on = minterms(2, &[0b01, 0b10]);
        let off = minterms(2, &[0b00, 0b11]);
        let min = minimize_cover(&on, &off);
        assert_eq!(min.len(), 2);
        assert_eq!(min.literal_count(), 4);
    }

    #[test]
    fn single_variable_function_collapses_to_one_literal() {
        // f = a over variables (a, b): ON = {10, 11}, OFF = {00, 01}.
        let on = minterms(2, &[0b01, 0b11]);
        let off = minterms(2, &[0b00, 0b10]);
        let min = minimize_cover(&on, &off);
        assert_eq!(min.len(), 1);
        assert_eq!(min.literal_count(), 1);
        assert!(min.contains_minterm(0b01));
        assert!(min.contains_minterm(0b11));
        assert!(!min.contains_minterm(0b00));
    }

    #[test]
    fn dont_cares_are_absorbed() {
        // Three variables; ON = {000}, OFF = {111}; everything else is DC.
        let on = minterms(3, &[0b000]);
        let off = minterms(3, &[0b111]);
        let min = minimize_cover(&on, &off);
        assert_eq!(min.len(), 1);
        assert!(min.literal_count() <= 1, "a single literal separates ON from OFF");
        assert!(min.contains_minterm(0b000));
        assert!(!min.contains_minterm(0b111));
    }

    /// SplitMix64 keeps the tests dependency-free and deterministic.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn cover_remains_correct_on_random_functions() {
        let mut rng = Rng(7);
        for _ in 0..20 {
            let n = 4;
            let mut on_bits = Vec::new();
            let mut off_bits = Vec::new();
            for m in 0..(1u64 << n) {
                match rng.next() % 3 {
                    0 => on_bits.push(m),
                    1 => off_bits.push(m),
                    _ => {}
                }
            }
            if on_bits.is_empty() {
                continue;
            }
            let on = minterms(n, &on_bits);
            let off = minterms(n, &off_bits);
            let min = minimize_cover(&on, &off);
            for &m in &on_bits {
                assert!(min.contains_minterm(m), "ON minterm {m:b} lost");
            }
            for &m in &off_bits {
                assert!(!min.contains_minterm(m), "OFF minterm {m:b} covered");
            }
            assert!(min.literal_count() <= on.literal_count());
        }
    }

    /// The truth-table oracle required by the property-test checklist: on
    /// random functions of up to 10 variables, every ON minterm stays
    /// covered, no OFF minterm is covered, and the result never has more
    /// literals than the input.
    #[test]
    fn truth_table_oracle_on_up_to_ten_variables() {
        for seed in 0..30u64 {
            let mut rng = Rng(seed);
            let n = 3 + (rng.next() % 8) as usize; // 3..=10 variables
                                                   // Sparse ON/OFF samples keep the oracle loop fast at 10 vars.
            let universe = 1u64 << n;
            let picks = 6 + (rng.next() % 40) as usize;
            let mut on_bits = Vec::new();
            let mut off_bits = Vec::new();
            for _ in 0..picks {
                let m = rng.next() % universe;
                match rng.next() % 2 {
                    0 if !off_bits.contains(&m) && !on_bits.contains(&m) => on_bits.push(m),
                    1 if !on_bits.contains(&m) && !off_bits.contains(&m) => off_bits.push(m),
                    _ => {}
                }
            }
            if on_bits.is_empty() {
                continue;
            }
            let on = minterms(n, &on_bits);
            let off = minterms(n, &off_bits);
            let min = minimize_cover(&on, &off);
            // Oracle: evaluate the minimized cover on every relevant minterm.
            for &m in &on_bits {
                assert!(min.contains_minterm(m), "seed {seed}: ON minterm {m:b} lost");
            }
            for &m in &off_bits {
                assert!(!min.contains_minterm(m), "seed {seed}: OFF minterm {m:b} covered");
            }
            assert!(
                min.literal_count() <= on.literal_count(),
                "seed {seed}: minimization increased the literal count"
            );
            assert!(min.len() <= on.len(), "seed {seed}: minimization added cubes");
        }
    }

    #[test]
    #[should_panic(expected = "intersects the OFF-set")]
    fn overlapping_on_and_off_sets_panic() {
        let on = minterms(2, &[0b01]);
        let off = minterms(2, &[0b01]);
        let _ = minimize_cover(&on, &off);
    }

    #[test]
    #[should_panic(expected = "intersects the OFF-set")]
    fn overlapping_cubes_panic_even_when_wide() {
        // Regression for the ON ∩ OFF panic path on the word-array layer:
        // the overlap sits past the first word (variable 80).
        let n = 96;
        let mut on_cube = Cube::universe(n);
        on_cube.set_literal(80, Literal::One);
        let mut off_cube = Cube::universe(n);
        off_cube.set_literal(80, Literal::One);
        off_cube.set_literal(81, Literal::Zero);
        let _ =
            minimize_cover(&Cover::from_cubes(vec![on_cube]), &Cover::from_cubes(vec![off_cube]));
    }

    #[test]
    fn empty_on_set_gives_constant_zero() {
        let min = minimize_cover(&Cover::empty(), &minterms(2, &[0b00]));
        assert!(min.is_empty());
        assert_eq!(min.literal_count(), 0);
    }

    #[test]
    fn wide_functions_minimize_past_64_variables() {
        // f = x_70 over 100 variables: ON/OFF described by cubes rather than
        // minterm enumeration.
        let n = 100;
        let mut on_cube = Cube::universe(n);
        on_cube.set_literal(70, Literal::One);
        on_cube.set_literal(3, Literal::One);
        let mut off_cube = Cube::universe(n);
        off_cube.set_literal(70, Literal::Zero);
        let on = Cover::from_cubes(vec![on_cube]);
        let off = Cover::from_cubes(vec![off_cube]);
        let min = minimize_cover(&on, &off);
        assert_eq!(min.len(), 1);
        assert_eq!(min.literal_count(), 1, "only the x70 literal separates ON from OFF");
        assert_eq!(min.cubes()[0].literal(70), Literal::One);
    }
}
