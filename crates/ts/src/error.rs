//! Error type for transition-system construction.

use std::error::Error;
use std::fmt;

/// Errors raised while building or transforming a transition system.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TsError {
    /// The system has no states.
    EmptySystem,
    /// A state index referenced by a transition or the initial state does not
    /// exist.
    UnknownState {
        /// The offending index.
        index: usize,
        /// Number of states actually present.
        num_states: usize,
    },
    /// An event label was empty.
    EmptyEventName,
    /// An insertion set was empty or covered the whole state space, so no
    /// meaningful event insertion is possible.
    DegenerateInsertionSet,
}

impl fmt::Display for TsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsError::EmptySystem => write!(f, "transition system has no states"),
            TsError::UnknownState { index, num_states } => {
                write!(f, "state index {index} out of range for a system with {num_states} states")
            }
            TsError::EmptyEventName => write!(f, "event label must not be empty"),
            TsError::DegenerateInsertionSet => {
                write!(f, "insertion set must be a non-empty strict subset of the states")
            }
        }
    }
}

impl Error for TsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let msg = TsError::UnknownState { index: 9, num_states: 3 }.to_string();
        assert!(msg.contains("9"));
        assert!(msg.contains("3"));
        assert_eq!(TsError::EmptySystem.to_string(), "transition system has no states");
    }

    #[test]
    fn error_trait_is_implemented() {
        let err: Box<dyn Error> = Box::new(TsError::EmptyEventName);
        assert!(err.to_string().contains("event label"));
    }
}
