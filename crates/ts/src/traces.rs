//! Trace-equivalence utilities.
//!
//! State-signal insertion must not change the observable behaviour of the
//! specification: hiding the inserted events, the old and new transition
//! systems must accept exactly the same traces (paper §1, requirement (1)).
//! This module implements an exact check based on the subset construction:
//! both systems are determinised on the fly with the hidden events treated
//! as silent, and the product is explored until a mismatch in the enabled
//! observable labels is found.

use crate::{EventId, StateId, StateSet, TransitionSystem};
use std::collections::{BTreeSet, HashSet, VecDeque};

/// A macro-state of the subset construction: a set of states closed under
/// silent transitions.
type Macro = BTreeSet<StateId>;

fn silent_closure(ts: &TransitionSystem, seed: &Macro, hidden: &[EventId]) -> Macro {
    let mut closure = seed.clone();
    let mut queue: VecDeque<StateId> = seed.iter().copied().collect();
    while let Some(s) = queue.pop_front() {
        for &(e, t) in ts.successors(s) {
            if hidden.contains(&e) && closure.insert(t) {
                queue.push_back(t);
            }
        }
    }
    closure
}

fn observable_step(
    ts: &TransitionSystem,
    current: &Macro,
    label: &str,
    hidden: &[EventId],
) -> Macro {
    let mut next = Macro::new();
    for &s in current {
        for &(e, t) in ts.successors(s) {
            if !hidden.contains(&e) && ts.event_name(e) == label {
                next.insert(t);
            }
        }
    }
    silent_closure(ts, &next, hidden)
}

fn observable_labels(
    ts: &TransitionSystem,
    current: &Macro,
    hidden: &[EventId],
) -> BTreeSet<String> {
    let mut labels = BTreeSet::new();
    for &s in current {
        for &(e, _) in ts.successors(s) {
            if !hidden.contains(&e) {
                labels.insert(ts.event_name(e).to_owned());
            }
        }
    }
    labels
}

fn hidden_ids(ts: &TransitionSystem, hidden_labels: &[&str]) -> Vec<EventId> {
    hidden_labels.iter().filter_map(|l| ts.event_id(l)).collect()
}

/// Checks whether `left` and `right` have the same observable traces after
/// hiding the events whose labels appear in `hidden_labels`.
///
/// Events are matched across the two systems *by label*.  The check is exact
/// (it explores the determinised product), so it is intended for
/// specification-sized systems — validating insertions, unit tests and the
/// CSC walkthrough examples — not for the huge benchmark state graphs.
///
/// # Example
///
/// ```
/// use ts::{TransitionSystemBuilder, traces::projected_trace_equivalent};
///
/// let mut b = TransitionSystemBuilder::new();
/// let p = b.add_state("p");
/// let q = b.add_state("q");
/// b.add_transition(p, "a", q);
/// let left = b.build(p)?;
///
/// let mut b = TransitionSystemBuilder::new();
/// let p = b.add_state("p");
/// let m = b.add_state("m");
/// let q = b.add_state("q");
/// b.add_transition(p, "tau", m);
/// b.add_transition(m, "a", q);
/// let right = b.build(p)?;
///
/// assert!(projected_trace_equivalent(&left, &right, &["tau"]));
/// # Ok::<(), ts::TsError>(())
/// ```
pub fn projected_trace_equivalent(
    left: &TransitionSystem,
    right: &TransitionSystem,
    hidden_labels: &[&str],
) -> bool {
    trace_inclusion_witness(left, right, hidden_labels).is_none()
        && trace_inclusion_witness(right, left, hidden_labels).is_none()
}

/// Returns a trace accepted by `left` (after hiding) that `right` cannot
/// perform, or `None` if every observable trace of `left` is also a trace of
/// `right`.
pub fn trace_inclusion_witness(
    left: &TransitionSystem,
    right: &TransitionSystem,
    hidden_labels: &[&str],
) -> Option<Vec<String>> {
    let hidden_left = hidden_ids(left, hidden_labels);
    let hidden_right = hidden_ids(right, hidden_labels);

    let start_left = silent_closure(left, &Macro::from([left.initial()]), &hidden_left);
    let start_right = silent_closure(right, &Macro::from([right.initial()]), &hidden_right);

    let mut visited: HashSet<(Macro, Macro)> = HashSet::new();
    let mut queue: VecDeque<(Macro, Macro, Vec<String>)> = VecDeque::new();
    visited.insert((start_left.clone(), start_right.clone()));
    queue.push_back((start_left, start_right, Vec::new()));

    while let Some((ml, mr, trace)) = queue.pop_front() {
        let labels_left = observable_labels(left, &ml, &hidden_left);
        for label in labels_left {
            let next_left = observable_step(left, &ml, &label, &hidden_left);
            let next_right = observable_step(right, &mr, &label, &hidden_right);
            let mut next_trace = trace.clone();
            next_trace.push(label);
            if next_right.is_empty() {
                return Some(next_trace);
            }
            let key = (next_left.clone(), next_right.clone());
            if visited.insert(key) {
                queue.push_back((next_left, next_right, next_trace));
            }
        }
    }
    None
}

/// Enumerates every observable trace of `ts` up to length `depth`, hiding
/// the given labels.  Intended for small systems and tests.
pub fn traces_up_to(
    ts: &TransitionSystem,
    depth: usize,
    hidden_labels: &[&str],
) -> BTreeSet<Vec<String>> {
    let hidden = hidden_ids(ts, hidden_labels);
    let mut result = BTreeSet::new();
    result.insert(Vec::new());
    let start = silent_closure(ts, &Macro::from([ts.initial()]), &hidden);
    let mut frontier: Vec<(Macro, Vec<String>)> = vec![(start, Vec::new())];
    for _ in 0..depth {
        let mut next_frontier = Vec::new();
        for (m, trace) in frontier {
            for label in observable_labels(ts, &m, &hidden) {
                let next = observable_step(ts, &m, &label, &hidden);
                let mut t = trace.clone();
                t.push(label);
                result.insert(t.clone());
                next_frontier.push((next, t));
            }
        }
        frontier = next_frontier;
        if frontier.is_empty() {
            break;
        }
    }
    result
}

/// Returns the set of states of `ts` that can be reached by some trace whose
/// observable projection equals `trace`.
pub fn states_after_trace(
    ts: &TransitionSystem,
    trace: &[&str],
    hidden_labels: &[&str],
) -> StateSet {
    let hidden = hidden_ids(ts, hidden_labels);
    let mut current = silent_closure(ts, &Macro::from([ts.initial()]), &hidden);
    for label in trace {
        current = observable_step(ts, &current, label, &hidden);
    }
    StateSet::from_states(ts.num_states(), current.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransitionSystemBuilder;

    fn ab_then_c() -> TransitionSystem {
        let mut b = TransitionSystemBuilder::new();
        let s0 = b.add_state("s0");
        let sa = b.add_state("sa");
        let sb = b.add_state("sb");
        let s1 = b.add_state("s1");
        let s2 = b.add_state("s2");
        b.add_transition(s0, "a", sa);
        b.add_transition(s0, "b", sb);
        b.add_transition(sa, "b", s1);
        b.add_transition(sb, "a", s1);
        b.add_transition(s1, "c", s2);
        b.build(s0).unwrap()
    }

    fn ab_then_c_with_tau() -> TransitionSystem {
        let mut b = TransitionSystemBuilder::new();
        let s0 = b.add_state("t0");
        let sa = b.add_state("ta");
        let sa2 = b.add_state("ta2");
        let sb = b.add_state("tb");
        let s1 = b.add_state("t1");
        let s2 = b.add_state("t2");
        b.add_transition(s0, "a", sa);
        b.add_transition(sa, "tau", sa2);
        b.add_transition(s0, "b", sb);
        b.add_transition(sa2, "b", s1);
        b.add_transition(sb, "a", s1);
        b.add_transition(s1, "c", s2);
        b.build(s0).unwrap()
    }

    #[test]
    fn equivalence_modulo_hidden_event() {
        let plain = ab_then_c();
        let with_tau = ab_then_c_with_tau();
        assert!(projected_trace_equivalent(&plain, &with_tau, &["tau"]));
        // Without hiding tau the traces differ.
        assert!(!projected_trace_equivalent(&plain, &with_tau, &[]));
    }

    #[test]
    fn inclusion_witness_reports_a_missing_trace() {
        let plain = ab_then_c();
        let mut b = TransitionSystemBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        b.add_transition(s0, "a", s1);
        let only_a = b.build(s0).unwrap();
        let witness = trace_inclusion_witness(&plain, &only_a, &[]).unwrap();
        assert!(
            witness == vec!["b".to_string()] || witness == vec!["a".to_string(), "b".to_string()]
        );
        assert!(trace_inclusion_witness(&only_a, &plain, &[]).is_none());
    }

    #[test]
    fn traces_up_to_enumerates_interleavings() {
        let plain = ab_then_c();
        let traces = traces_up_to(&plain, 3, &[]);
        assert!(traces.contains(&vec!["a".to_string(), "b".to_string(), "c".to_string()]));
        assert!(traces.contains(&vec!["b".to_string(), "a".to_string(), "c".to_string()]));
        assert!(traces.contains(&Vec::new()));
        assert!(!traces.contains(&vec!["c".to_string()]));
    }

    #[test]
    fn states_after_trace_tracks_hidden_moves() {
        let with_tau = ab_then_c_with_tau();
        let after_a = states_after_trace(&with_tau, &["a"], &["tau"]);
        // After "a" (hiding tau) we may be in ta or ta2.
        assert_eq!(after_a.len(), 2);
        let after_ab = states_after_trace(&with_tau, &["a", "b"], &["tau"]);
        assert_eq!(after_ab.len(), 1);
        assert!(after_ab.contains(with_tau.state_id("t1").unwrap()));
    }

    #[test]
    fn cyclic_systems_terminate() {
        let mut b = TransitionSystemBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        b.add_transition(s0, "a", s1);
        b.add_transition(s1, "b", s0);
        let cycle = b.build(s0).unwrap();
        assert!(projected_trace_equivalent(&cycle, &cycle, &[]));
        let traces = traces_up_to(&cycle, 4, &[]);
        assert!(traces.contains(&vec![
            "a".to_string(),
            "b".to_string(),
            "a".to_string(),
            "b".to_string()
        ]));
    }
}
