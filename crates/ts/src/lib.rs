//! Labelled transition systems for asynchronous circuit synthesis.
//!
//! A *transition system* (TS) is an arc-labelled directed graph
//! `A = (S, E, T, s_in)` with a finite set of states `S`, a finite alphabet
//! of events `E`, a transition relation `T ⊆ S × E × S` and an initial state
//! `s_in`.  Transition systems are the semantic domain on which the theory
//! of regions and the Complete State Coding (CSC) algorithms of
//! Cortadella et al. (DAC'96) operate: the reachability graph of a Petri
//! net / Signal Transition Graph is a TS, regions are subsets of its states,
//! and state-signal insertion is a transformation of the TS.
//!
//! This crate provides:
//!
//! * [`TransitionSystem`] — a compact adjacency representation with
//!   forward/backward indices,
//! * [`StateSet`] — a dense bit-set over states used pervasively by the
//!   region machinery,
//! * excitation and switching regions ([`TransitionSystem::excitation_regions`]),
//! * the behavioural predicates required for speed-independence
//!   (determinism, commutativity, event persistency),
//! * the property-preserving event-insertion scheme of Fig. 2 of the paper
//!   ([`insertion::insert_event`]),
//! * trace-equivalence utilities used to validate insertions
//!   ([`traces::projected_trace_equivalent`]).
//!
//! # Example
//!
//! ```
//! use ts::TransitionSystemBuilder;
//!
//! // The transition system of Fig. 1(a) of the DAC'96 paper.
//! let mut b = TransitionSystemBuilder::new();
//! let (s1, s2, s3, s4, s5, s6, s7) = (
//!     b.add_state("s1"), b.add_state("s2"), b.add_state("s3"),
//!     b.add_state("s4"), b.add_state("s5"), b.add_state("s6"),
//!     b.add_state("s7"),
//! );
//! b.add_transition(s1, "a", s2);
//! b.add_transition(s1, "b", s3);
//! b.add_transition(s2, "b", s4);
//! b.add_transition(s3, "a", s4);
//! b.add_transition(s4, "c", s5);
//! b.add_transition(s5, "a", s6);
//! b.add_transition(s5, "b", s7);
//! let ts = b.build(s1).expect("well-formed transition system");
//!
//! assert_eq!(ts.num_states(), 7);
//! assert!(ts.is_deterministic());
//! assert!(ts.is_commutative());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod ids;
pub mod insertion;
mod properties;
mod state_set;
mod system;
pub mod traces;

pub use builder::TransitionSystemBuilder;
pub use error::TsError;
pub use ids::{EventId, StateId};
pub use insertion::{insert_event, InsertionOutcome, InsertionStyle};
pub use properties::{CommutativityViolation, DeterminismViolation, PersistencyViolation};
pub use state_set::{SetDedup, StateSet};
pub use system::{Transition, TransitionSystem};
