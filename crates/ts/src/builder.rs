//! Incremental construction of transition systems.

use crate::{EventId, StateId, Transition, TransitionSystem, TsError};
use std::collections::HashMap;

/// Builder for [`TransitionSystem`].
///
/// States and events are interned by name; transitions may be added in any
/// order.  [`TransitionSystemBuilder::build`] validates the result.
///
/// # Example
///
/// ```
/// use ts::TransitionSystemBuilder;
///
/// let mut b = TransitionSystemBuilder::new();
/// let p = b.add_state("p");
/// let q = b.add_state("q");
/// b.add_transition(p, "go", q);
/// let ts = b.build(p)?;
/// assert_eq!(ts.num_transitions(), 1);
/// # Ok::<(), ts::TsError>(())
/// ```
#[derive(Default, Debug, Clone)]
pub struct TransitionSystemBuilder {
    state_names: Vec<String>,
    state_index: HashMap<String, StateId>,
    event_names: Vec<String>,
    event_index: HashMap<String, EventId>,
    transitions: Vec<Transition>,
}

impl TransitionSystemBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or looks up) a state by name and returns its id.
    pub fn add_state(&mut self, name: impl Into<String>) -> StateId {
        let name = name.into();
        if let Some(&id) = self.state_index.get(&name) {
            return id;
        }
        let id = StateId::from(self.state_names.len());
        self.state_index.insert(name.clone(), id);
        self.state_names.push(name);
        id
    }

    /// Adds (or looks up) an event label and returns its id.
    pub fn add_event(&mut self, name: impl Into<String>) -> EventId {
        let name = name.into();
        if let Some(&id) = self.event_index.get(&name) {
            return id;
        }
        let id = EventId::from(self.event_names.len());
        self.event_index.insert(name.clone(), id);
        self.event_names.push(name);
        id
    }

    /// Adds a transition labelled with `event` (interned by name).
    pub fn add_transition(&mut self, source: StateId, event: impl Into<String>, target: StateId) {
        let event = self.add_event(event);
        self.transitions.push(Transition { source, event, target });
    }

    /// Adds a transition using an already-interned event id.
    pub fn add_transition_by_id(&mut self, source: StateId, event: EventId, target: StateId) {
        self.transitions.push(Transition { source, event, target });
    }

    /// Number of states added so far.
    pub fn num_states(&self) -> usize {
        self.state_names.len()
    }

    /// Number of events added so far.
    pub fn num_events(&self) -> usize {
        self.event_names.len()
    }

    /// Finalises the system with the given initial state.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::EmptySystem`] if no state was added,
    /// [`TsError::UnknownState`] if `initial` or any transition endpoint is
    /// out of range, and [`TsError::EmptyEventName`] if an event label is
    /// empty.
    pub fn build(self, initial: StateId) -> Result<TransitionSystem, TsError> {
        if self.event_names.iter().any(|n| n.is_empty()) {
            return Err(TsError::EmptyEventName);
        }
        TransitionSystem::from_parts(self.state_names, self.event_names, self.transitions, initial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_reuses_ids() {
        let mut b = TransitionSystemBuilder::new();
        let a1 = b.add_state("a");
        let a2 = b.add_state("a");
        assert_eq!(a1, a2);
        let e1 = b.add_event("x");
        let e2 = b.add_event("x");
        assert_eq!(e1, e2);
        assert_eq!(b.num_states(), 1);
        assert_eq!(b.num_events(), 1);
    }

    #[test]
    fn build_rejects_empty_system() {
        let b = TransitionSystemBuilder::new();
        assert_eq!(b.build(StateId(0)).unwrap_err(), TsError::EmptySystem);
    }

    #[test]
    fn build_rejects_bad_initial() {
        let mut b = TransitionSystemBuilder::new();
        b.add_state("only");
        let err = b.build(StateId(3)).unwrap_err();
        assert_eq!(err, TsError::UnknownState { index: 3, num_states: 1 });
    }

    #[test]
    fn build_rejects_empty_event_name() {
        let mut b = TransitionSystemBuilder::new();
        let s = b.add_state("s");
        b.add_transition(s, "", s);
        assert_eq!(b.build(s).unwrap_err(), TsError::EmptyEventName);
    }

    #[test]
    fn transition_by_id_works() {
        let mut b = TransitionSystemBuilder::new();
        let s = b.add_state("s");
        let t = b.add_state("t");
        let e = b.add_event("ev");
        b.add_transition_by_id(s, e, t);
        let ts = b.build(s).unwrap();
        assert_eq!(ts.successor(s, e), Some(t));
    }
}
