//! Property-preserving event insertion (paper §3, Fig. 2).
//!
//! Inserting an event `x` with insertion set `ER(x)` splits every state of
//! the set into two copies — one before and one after `x` fires — and
//! redirects transitions so that:
//!
//! * transitions *entering* `ER(x)` lead to the pre-`x` copy,
//! * transitions *exiting* `ER(x)` leave from the post-`x` copy,
//! * transitions *inside* `ER(x)` are duplicated in both copies (so that
//!   `x` is concurrent with them), and
//! * every pre-`x` copy has an `x` transition to its post-`x` copy.
//!
//! When the insertion set is a speed-independence-preserving (SIP) set —
//! e.g. a region, or an excitation region of a persistent event, or an
//! intersection of pre-regions of the same event (Property 3.1) — the
//! resulting system is again deterministic, commutative and persistent for
//! all previously persistent events, and is trace-equivalent to the original
//! system once `x` is hidden.

use crate::{EventId, StateId, StateSet, Transition, TransitionSystem, TsError};

/// How transitions internal to the insertion set are treated.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum InsertionStyle {
    /// The scheme of Fig. 2: internal transitions are duplicated before and
    /// after the new event, making the new event concurrent with them.
    #[default]
    Concurrent,
    /// Internal transitions only exist after the new event, forcing the new
    /// event to fire as soon as the insertion set is entered (lower
    /// concurrency, possibly faster logic for the other signals).
    Early,
}

/// Result of inserting a new event into a transition system.
#[derive(Clone, Debug)]
pub struct InsertionOutcome {
    /// The transformed system.
    pub ts: TransitionSystem,
    /// The id of the inserted event in the new system.
    pub event: EventId,
    /// For every new state, the original state it was derived from.
    pub origin: Vec<StateId>,
    /// For every new state, `true` if it is a post-event copy (the new event
    /// has already fired on every path reaching it through the split).
    pub after_event: Vec<bool>,
    /// For every original state, its pre-event copy in the new system.
    pub pre_copy: Vec<StateId>,
    /// For every original state, its post-event copy (only for states of the
    /// insertion set).
    pub post_copy: Vec<Option<StateId>>,
}

impl InsertionOutcome {
    /// Number of states that were split (size of the insertion set).
    pub fn split_count(&self) -> usize {
        self.post_copy.iter().filter(|c| c.is_some()).count()
    }
}

/// Inserts a new event `label` with insertion set `er` into `ts`.
///
/// # Errors
///
/// Returns [`TsError::DegenerateInsertionSet`] if `er` is empty or contains
/// every state, and [`TsError::EmptyEventName`] if `label` is empty.
///
/// # Example
///
/// ```
/// use ts::{insert_event, InsertionStyle, StateSet, TransitionSystemBuilder};
///
/// let mut b = TransitionSystemBuilder::new();
/// let s0 = b.add_state("s0");
/// let s1 = b.add_state("s1");
/// let s2 = b.add_state("s2");
/// b.add_transition(s0, "a", s1);
/// b.add_transition(s1, "b", s2);
/// let ts = b.build(s0)?;
///
/// let er = StateSet::from_states(ts.num_states(), [s1]);
/// let out = insert_event(&ts, &er, "x", InsertionStyle::Concurrent)?;
/// assert_eq!(out.ts.num_states(), 4);
/// assert!(out.ts.event_id("x").is_some());
/// # Ok::<(), ts::TsError>(())
/// ```
pub fn insert_event(
    ts: &TransitionSystem,
    er: &StateSet,
    label: &str,
    style: InsertionStyle,
) -> Result<InsertionOutcome, TsError> {
    if label.is_empty() {
        return Err(TsError::EmptyEventName);
    }
    if er.is_empty() || er.len() == ts.num_states() {
        return Err(TsError::DegenerateInsertionSet);
    }

    let n = ts.num_states();
    let mut state_names: Vec<String> = Vec::with_capacity(n + er.len());
    let mut origin: Vec<StateId> = Vec::with_capacity(n + er.len());
    let mut after_event: Vec<bool> = Vec::with_capacity(n + er.len());
    let mut pre_copy: Vec<StateId> = Vec::with_capacity(n);
    let mut post_copy: Vec<Option<StateId>> = vec![None; n];

    // Pre-event copies keep the original names and occupy indices 0..n so
    // that callers can correlate codes cheaply.
    for i in 0..n {
        let old = StateId::from(i);
        pre_copy.push(StateId::from(state_names.len()));
        state_names.push(ts.state_name(old).to_owned());
        origin.push(old);
        after_event.push(false);
    }
    for s in er.iter() {
        post_copy[s.index()] = Some(StateId::from(state_names.len()));
        state_names.push(format!("{}~{}", ts.state_name(s), label));
        origin.push(s);
        after_event.push(true);
    }

    let mut event_names: Vec<String> = ts.event_names().to_vec();
    let new_event = EventId::from(event_names.len());
    event_names.push(label.to_owned());

    let mut transitions: Vec<Transition> = Vec::with_capacity(ts.num_transitions() * 2 + er.len());
    for t in ts.transitions() {
        let src_in = er.contains(t.source);
        let dst_in = er.contains(t.target);
        match (src_in, dst_in) {
            (false, false) | (false, true) => {
                // Stays outside or enters the set: route to the pre-copy.
                transitions.push(Transition {
                    source: pre_copy[t.source.index()],
                    event: t.event,
                    target: pre_copy[t.target.index()],
                });
            }
            (true, false) => {
                // Exits the set: only possible after the new event fired.
                transitions.push(Transition {
                    source: post_copy[t.source.index()].expect("source is in the insertion set"),
                    event: t.event,
                    target: pre_copy[t.target.index()],
                });
            }
            (true, true) => {
                let post_src = post_copy[t.source.index()].expect("source in set");
                let post_dst = post_copy[t.target.index()].expect("target in set");
                if style == InsertionStyle::Concurrent {
                    transitions.push(Transition {
                        source: pre_copy[t.source.index()],
                        event: t.event,
                        target: pre_copy[t.target.index()],
                    });
                }
                transitions.push(Transition { source: post_src, event: t.event, target: post_dst });
            }
        }
    }
    for s in er.iter() {
        transitions.push(Transition {
            source: pre_copy[s.index()],
            event: new_event,
            target: post_copy[s.index()].expect("member of the insertion set"),
        });
    }

    let initial = pre_copy[ts.initial().index()];
    let new_ts = TransitionSystem::from_parts(state_names, event_names, transitions, initial)?;
    Ok(InsertionOutcome { ts: new_ts, event: new_event, origin, after_event, pre_copy, post_copy })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::projected_trace_equivalent;
    use crate::TransitionSystemBuilder;

    /// Linear pipeline s0 -a-> s1 -b-> s2 -c-> s3.
    fn chain() -> TransitionSystem {
        let mut b = TransitionSystemBuilder::new();
        let s: Vec<StateId> = (0..4).map(|i| b.add_state(format!("s{i}"))).collect();
        b.add_transition(s[0], "a", s[1]);
        b.add_transition(s[1], "b", s[2]);
        b.add_transition(s[2], "c", s[3]);
        b.build(s[0]).unwrap()
    }

    /// Cyclic system with a concurrent diamond in the middle.
    fn diamond_cycle() -> TransitionSystem {
        let mut b = TransitionSystemBuilder::new();
        let s0 = b.add_state("s0");
        let sa = b.add_state("sa");
        let sb = b.add_state("sb");
        let s1 = b.add_state("s1");
        b.add_transition(s0, "a", sa);
        b.add_transition(s0, "b", sb);
        b.add_transition(sa, "b", s1);
        b.add_transition(sb, "a", s1);
        b.add_transition(s1, "r", s0);
        b.build(s0).unwrap()
    }

    #[test]
    fn insertion_into_a_single_state_splits_it() {
        let ts = chain();
        let s1 = ts.state_id("s1").unwrap();
        let er = StateSet::from_states(ts.num_states(), [s1]);
        let out = insert_event(&ts, &er, "x", InsertionStyle::Concurrent).unwrap();
        assert_eq!(out.ts.num_states(), 5);
        assert_eq!(out.split_count(), 1);
        // a leads to the pre-copy, x to the post-copy, b leaves from the
        // post-copy.
        let x = out.ts.event_id("x").unwrap();
        let b = out.ts.event_id("b").unwrap();
        let pre = out.pre_copy[s1.index()];
        let post = out.post_copy[s1.index()].unwrap();
        assert_eq!(out.ts.successor(pre, x), Some(post));
        assert_eq!(out.ts.successor(pre, b), None, "b must wait for x");
        assert!(out.ts.successor(post, b).is_some());
    }

    #[test]
    fn insertion_preserves_determinism_and_traces() {
        let ts = chain();
        let s1 = ts.state_id("s1").unwrap();
        let s2 = ts.state_id("s2").unwrap();
        let er = StateSet::from_states(ts.num_states(), [s1, s2]);
        let out = insert_event(&ts, &er, "x", InsertionStyle::Concurrent).unwrap();
        assert!(out.ts.is_deterministic());
        assert!(out.ts.is_commutative());
        assert!(projected_trace_equivalent(&ts, &out.ts, &["x"]));
    }

    #[test]
    fn concurrent_insertion_into_region_preserves_persistency() {
        let ts = diamond_cycle();
        // {sa, s1} is a region for this system? It is at least a connected
        // set; what we check here is the mechanical property of the scheme:
        // determinism/commutativity and hidden-trace equivalence.
        let sa = ts.state_id("sa").unwrap();
        let s1 = ts.state_id("s1").unwrap();
        let er = StateSet::from_states(ts.num_states(), [sa, s1]);
        let out = insert_event(&ts, &er, "csc0", InsertionStyle::Concurrent).unwrap();
        assert!(out.ts.is_deterministic());
        assert!(projected_trace_equivalent(&ts, &out.ts, &["csc0"]));
    }

    #[test]
    fn early_style_forces_event_before_internal_transitions() {
        let ts = chain();
        let s1 = ts.state_id("s1").unwrap();
        let s2 = ts.state_id("s2").unwrap();
        let er = StateSet::from_states(ts.num_states(), [s1, s2]);
        let out = insert_event(&ts, &er, "x", InsertionStyle::Early).unwrap();
        // In the early style, the pre-copy of s1 has only the x transition.
        let pre = out.pre_copy[s1.index()];
        assert_eq!(out.ts.successors(pre).len(), 1);
        assert_eq!(out.ts.event_name(out.ts.successors(pre)[0].0), "x");
        // Trace equivalence still holds after hiding x.
        assert!(projected_trace_equivalent(&ts, &out.ts, &["x"]));
    }

    #[test]
    fn degenerate_sets_are_rejected() {
        let ts = chain();
        let empty = StateSet::new(ts.num_states());
        assert_eq!(
            insert_event(&ts, &empty, "x", InsertionStyle::Concurrent).unwrap_err(),
            TsError::DegenerateInsertionSet
        );
        let full = StateSet::full(ts.num_states());
        assert_eq!(
            insert_event(&ts, &full, "x", InsertionStyle::Concurrent).unwrap_err(),
            TsError::DegenerateInsertionSet
        );
        let some = StateSet::from_states(ts.num_states(), [ts.state_id("s1").unwrap()]);
        assert_eq!(
            insert_event(&ts, &some, "", InsertionStyle::Concurrent).unwrap_err(),
            TsError::EmptyEventName
        );
    }

    #[test]
    fn initial_state_inside_the_set_starts_before_the_event() {
        let ts = chain();
        let s0 = ts.state_id("s0").unwrap();
        let er = StateSet::from_states(ts.num_states(), [s0]);
        let out = insert_event(&ts, &er, "x", InsertionStyle::Concurrent).unwrap();
        assert_eq!(out.ts.initial(), out.pre_copy[s0.index()]);
        assert!(!out.after_event[out.ts.initial().index()]);
        let x = out.ts.event_id("x").unwrap();
        assert!(out.ts.is_enabled(out.ts.initial(), x));
    }

    #[test]
    fn origin_mapping_is_consistent() {
        let ts = diamond_cycle();
        let sa = ts.state_id("sa").unwrap();
        let er = StateSet::from_states(ts.num_states(), [sa]);
        let out = insert_event(&ts, &er, "x", InsertionStyle::Concurrent).unwrap();
        for (new_idx, old) in out.origin.iter().enumerate() {
            let new_state = StateId::from(new_idx);
            if out.after_event[new_idx] {
                assert_eq!(out.post_copy[old.index()], Some(new_state));
            } else {
                assert_eq!(out.pre_copy[old.index()], new_state);
            }
        }
    }
}
