//! The core transition-system representation.

use crate::{EventId, StateId, StateSet, TsError};
use std::collections::VecDeque;
use std::fmt;

/// A single labelled transition `source --event--> target`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Transition {
    /// Source state.
    pub source: StateId,
    /// Event labelling the arc.
    pub event: EventId,
    /// Target state.
    pub target: StateId,
}

/// A finite, arc-labelled transition system `A = (S, E, T, s_in)`.
///
/// The structure is immutable once built (use [`crate::TransitionSystemBuilder`]);
/// transformations such as event insertion produce new systems.
///
/// Successor and predecessor adjacency as well as a per-event transition
/// index are precomputed so that region and border computations are linear
/// scans over packed vectors.
#[derive(Clone)]
pub struct TransitionSystem {
    state_names: Vec<String>,
    event_names: Vec<String>,
    transitions: Vec<Transition>,
    initial: StateId,
    succ: Vec<Vec<(EventId, StateId)>>,
    pred: Vec<Vec<(EventId, StateId)>>,
    by_event: Vec<Vec<(StateId, StateId)>>,
}

impl TransitionSystem {
    pub(crate) fn from_parts(
        state_names: Vec<String>,
        event_names: Vec<String>,
        mut transitions: Vec<Transition>,
        initial: StateId,
    ) -> Result<Self, TsError> {
        if state_names.is_empty() {
            return Err(TsError::EmptySystem);
        }
        let n = state_names.len();
        if initial.index() >= n {
            return Err(TsError::UnknownState { index: initial.index(), num_states: n });
        }
        for t in &transitions {
            for idx in [t.source.index(), t.target.index()] {
                if idx >= n {
                    return Err(TsError::UnknownState { index: idx, num_states: n });
                }
            }
        }
        transitions.sort_by_key(|t| (t.source, t.event, t.target));
        transitions.dedup();

        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        let mut by_event = vec![Vec::new(); event_names.len()];
        for t in &transitions {
            succ[t.source.index()].push((t.event, t.target));
            pred[t.target.index()].push((t.event, t.source));
            by_event[t.event.index()].push((t.source, t.target));
        }

        Ok(TransitionSystem {
            state_names,
            event_names,
            transitions,
            initial,
            succ,
            pred,
            by_event,
        })
    }

    /// Number of states.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.state_names.len()
    }

    /// Number of distinct event labels.
    #[inline]
    pub fn num_events(&self) -> usize {
        self.event_names.len()
    }

    /// The initial state.
    #[inline]
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// All transitions, sorted by `(source, event, target)`.
    #[inline]
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Name of a state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn state_name(&self, state: StateId) -> &str {
        &self.state_names[state.index()]
    }

    /// Name of an event.
    ///
    /// # Panics
    ///
    /// Panics if `event` is out of range.
    pub fn event_name(&self, event: EventId) -> &str {
        &self.event_names[event.index()]
    }

    /// All event names, indexed by [`EventId`].
    pub fn event_names(&self) -> &[String] {
        &self.event_names
    }

    /// All state names, indexed by [`StateId`].
    pub fn state_names(&self) -> &[String] {
        &self.state_names
    }

    /// Looks up an event by its label.
    pub fn event_id(&self, name: &str) -> Option<EventId> {
        self.event_names.iter().position(|n| n == name).map(EventId::from)
    }

    /// Looks up a state by its name.
    pub fn state_id(&self, name: &str) -> Option<StateId> {
        self.state_names.iter().position(|n| n == name).map(StateId::from)
    }

    /// Outgoing `(event, target)` pairs of `state`.
    #[inline]
    pub fn successors(&self, state: StateId) -> &[(EventId, StateId)] {
        &self.succ[state.index()]
    }

    /// Incoming `(event, source)` pairs of `state`.
    #[inline]
    pub fn predecessors(&self, state: StateId) -> &[(EventId, StateId)] {
        &self.pred[state.index()]
    }

    /// All `(source, target)` pairs labelled with `event`.
    #[inline]
    pub fn transitions_of(&self, event: EventId) -> &[(StateId, StateId)] {
        &self.by_event[event.index()]
    }

    /// Returns `true` if `event` is enabled at `state`.
    pub fn is_enabled(&self, state: StateId, event: EventId) -> bool {
        self.succ[state.index()].iter().any(|&(e, _)| e == event)
    }

    /// Events enabled at `state`, in increasing id order (may contain
    /// duplicates only if the system is non-deterministic).
    pub fn enabled_events(&self, state: StateId) -> Vec<EventId> {
        let mut events: Vec<EventId> = self.succ[state.index()].iter().map(|&(e, _)| e).collect();
        events.sort();
        events.dedup();
        events
    }

    /// The unique successor of `state` under `event`, if the system is
    /// deterministic for that pair.  Returns the first match otherwise.
    pub fn successor(&self, state: StateId, event: EventId) -> Option<StateId> {
        self.succ[state.index()].iter().find(|&&(e, _)| e == event).map(|&(_, t)| t)
    }

    /// Set of all states where `event` is enabled (the *excitation set*).
    pub fn excitation_set(&self, event: EventId) -> StateSet {
        let mut set = StateSet::new(self.num_states());
        for &(s, _) in &self.by_event[event.index()] {
            set.insert(s);
        }
        set
    }

    /// Set of all states entered by an occurrence of `event` (the *switching
    /// set*).
    pub fn switching_set(&self, event: EventId) -> StateSet {
        let mut set = StateSet::new(self.num_states());
        for &(_, t) in &self.by_event[event.index()] {
            set.insert(t);
        }
        set
    }

    /// Excitation regions of `event`: maximal *connected* sets of states in
    /// which `event` is enabled (paper §2.2).  Connectivity is taken over the
    /// underlying undirected graph restricted to the excitation set.
    pub fn excitation_regions(&self, event: EventId) -> Vec<StateSet> {
        self.connected_components(&self.excitation_set(event))
    }

    /// Switching regions of `event`: connected sets of states reached
    /// immediately after an occurrence of `event`.
    pub fn switching_regions(&self, event: EventId) -> Vec<StateSet> {
        self.connected_components(&self.switching_set(event))
    }

    /// Splits `set` into connected components of the underlying undirected
    /// graph restricted to `set`.
    pub fn connected_components(&self, set: &StateSet) -> Vec<StateSet> {
        let mut remaining = set.clone();
        let mut components = Vec::new();
        while let Some(seed) = remaining.first() {
            let mut component = StateSet::new(self.num_states());
            let mut queue = VecDeque::new();
            queue.push_back(seed);
            component.insert(seed);
            remaining.remove(seed);
            while let Some(s) = queue.pop_front() {
                let neighbours = self.succ[s.index()]
                    .iter()
                    .map(|&(_, t)| t)
                    .chain(self.pred[s.index()].iter().map(|&(_, p)| p));
                for n in neighbours {
                    if remaining.contains(n) {
                        remaining.remove(n);
                        component.insert(n);
                        queue.push_back(n);
                    }
                }
            }
            components.push(component);
        }
        components
    }

    /// States reachable from the initial state.
    pub fn reachable_states(&self) -> StateSet {
        self.reachable_from(self.initial)
    }

    /// States reachable from `start` (including `start`).
    pub fn reachable_from(&self, start: StateId) -> StateSet {
        let mut seen = StateSet::new(self.num_states());
        let mut queue = VecDeque::new();
        seen.insert(start);
        queue.push_back(start);
        while let Some(s) = queue.pop_front() {
            for &(_, t) in &self.succ[s.index()] {
                if seen.insert(t) {
                    queue.push_back(t);
                }
            }
        }
        seen
    }

    /// States of `set` that have at least one transition to a state outside
    /// `set` — the *exit border* `EB(set)` of the paper.
    pub fn exit_border(&self, set: &StateSet) -> StateSet {
        let mut border = StateSet::new(self.num_states());
        for s in set.iter() {
            if self.succ[s.index()].iter().any(|&(_, t)| !set.contains(t)) {
                border.insert(s);
            }
        }
        border
    }

    /// States of `set` that have at least one incoming transition from a
    /// state outside `set` — the *entry border*.
    pub fn entry_border(&self, set: &StateSet) -> StateSet {
        let mut border = StateSet::new(self.num_states());
        for s in set.iter() {
            if self.pred[s.index()].iter().any(|&(_, p)| !set.contains(p)) {
                border.insert(s);
            }
        }
        border
    }

    /// Returns a copy of the system restricted to the states reachable from
    /// the initial state.  State ids are renumbered densely; the mapping from
    /// new ids to old ids is returned alongside.
    pub fn restricted_to_reachable(&self) -> (TransitionSystem, Vec<StateId>) {
        let reachable = self.reachable_states();
        let mut old_of_new = Vec::with_capacity(reachable.len());
        let mut new_of_old = vec![None; self.num_states()];
        for old in reachable.iter() {
            new_of_old[old.index()] = Some(StateId::from(old_of_new.len()));
            old_of_new.push(old);
        }
        let state_names =
            old_of_new.iter().map(|&old| self.state_names[old.index()].clone()).collect();
        let transitions = self
            .transitions
            .iter()
            .filter_map(|t| {
                let source = new_of_old[t.source.index()]?;
                let target = new_of_old[t.target.index()]?;
                Some(Transition { source, event: t.event, target })
            })
            .collect();
        let initial = new_of_old[self.initial.index()].expect("initial state is always reachable");
        let ts = TransitionSystem::from_parts(
            state_names,
            self.event_names.clone(),
            transitions,
            initial,
        )
        .expect("restriction of a valid system is valid");
        (ts, old_of_new)
    }

    /// Total number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Returns the set of states with no outgoing transitions (deadlocks).
    pub fn deadlock_states(&self) -> StateSet {
        let mut set = StateSet::new(self.num_states());
        for i in 0..self.num_states() {
            if self.succ[i].is_empty() {
                set.insert(StateId::from(i));
            }
        }
        set
    }
}

impl fmt::Debug for TransitionSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TransitionSystem")
            .field("states", &self.num_states())
            .field("events", &self.num_events())
            .field("transitions", &self.transitions.len())
            .field("initial", &self.initial)
            .finish()
    }
}

impl fmt::Display for TransitionSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TS with {} states, {} events, {} transitions; initial {}",
            self.num_states(),
            self.num_events(),
            self.transitions.len(),
            self.state_names[self.initial.index()]
        )?;
        for t in &self.transitions {
            writeln!(
                f,
                "  {} --{}--> {}",
                self.state_names[t.source.index()],
                self.event_names[t.event.index()],
                self.state_names[t.target.index()]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::TransitionSystemBuilder;
    use crate::{StateId, StateSet};

    /// Builds the transition system of Fig. 1(a) of the paper.
    pub(crate) fn fig1_ts() -> crate::TransitionSystem {
        let mut b = TransitionSystemBuilder::new();
        let s: Vec<StateId> = (1..=7).map(|i| b.add_state(format!("s{i}"))).collect();
        b.add_transition(s[0], "a", s[1]);
        b.add_transition(s[0], "b", s[2]);
        b.add_transition(s[1], "b", s[3]);
        b.add_transition(s[2], "a", s[3]);
        b.add_transition(s[3], "c", s[4]);
        b.add_transition(s[4], "a", s[5]);
        b.add_transition(s[4], "b", s[6]);
        b.build(s[0]).expect("fig1 is well-formed")
    }

    #[test]
    fn basic_queries() {
        let ts = fig1_ts();
        assert_eq!(ts.num_states(), 7);
        assert_eq!(ts.num_events(), 3);
        assert_eq!(ts.num_transitions(), 7);
        assert_eq!(ts.state_name(ts.initial()), "s1");
        let a = ts.event_id("a").unwrap();
        assert_eq!(ts.event_name(a), "a");
        assert!(ts.event_id("zz").is_none());
        assert_eq!(ts.state_id("s4"), Some(StateId(3)));
    }

    #[test]
    fn successor_and_enabled() {
        let ts = fig1_ts();
        let a = ts.event_id("a").unwrap();
        let b = ts.event_id("b").unwrap();
        let s1 = ts.state_id("s1").unwrap();
        assert!(ts.is_enabled(s1, a));
        assert!(ts.is_enabled(s1, b));
        assert_eq!(ts.enabled_events(s1), vec![a, b]);
        let s2 = ts.state_id("s2").unwrap();
        assert_eq!(ts.successor(s1, a), Some(s2));
        let c = ts.event_id("c").unwrap();
        assert_eq!(ts.successor(s1, c), None);
    }

    #[test]
    fn excitation_regions_of_fig1() {
        // Event a is enabled in s1, s3 and s5.  s1 and s3 are adjacent via
        // the b-transition s1 -> s3, so they form one connected excitation
        // region; s5 forms the second (the paper reports two ERs for a).
        let ts = fig1_ts();
        let a = ts.event_id("a").unwrap();
        let mut ers = ts.excitation_regions(a);
        ers.sort_by_key(|set| set.len());
        assert_eq!(ers.len(), 2);
        assert_eq!(ers[0].len(), 1);
        assert!(ers[0].contains(ts.state_id("s5").unwrap()));
        assert_eq!(ers[1].len(), 2);
        assert!(ers[1].contains(ts.state_id("s1").unwrap()));
        assert!(ers[1].contains(ts.state_id("s3").unwrap()));
    }

    #[test]
    fn region_r3_of_fig1_is_exit_border_free() {
        // r3 = {s3, s4, s7} in paper numbering corresponds to the set of
        // states entered by b.  Check switching set machinery.
        let ts = fig1_ts();
        let b = ts.event_id("b").unwrap();
        let sw = ts.switching_set(b);
        assert_eq!(sw.len(), 3);
        assert!(sw.contains(ts.state_id("s3").unwrap()));
        assert!(sw.contains(ts.state_id("s4").unwrap()));
        assert!(sw.contains(ts.state_id("s7").unwrap()));
    }

    #[test]
    fn reachability_and_deadlocks() {
        let ts = fig1_ts();
        assert_eq!(ts.reachable_states().len(), 7);
        let dead = ts.deadlock_states();
        assert_eq!(dead.len(), 2, "s6 and s7 have no successors");
    }

    #[test]
    fn exit_and_entry_borders() {
        let ts = fig1_ts();
        let set = StateSet::from_states(
            ts.num_states(),
            ["s2", "s3", "s4"].iter().map(|n| ts.state_id(n).unwrap()),
        );
        let eb = ts.exit_border(&set);
        assert_eq!(eb.len(), 1);
        assert!(eb.contains(ts.state_id("s4").unwrap()));
        let ent = ts.entry_border(&set);
        assert_eq!(ent.len(), 2);
        assert!(ent.contains(ts.state_id("s2").unwrap()));
        assert!(ent.contains(ts.state_id("s3").unwrap()));
    }

    #[test]
    fn connected_components_of_disconnected_set() {
        let ts = fig1_ts();
        let set = StateSet::from_states(
            ts.num_states(),
            ["s1", "s6"].iter().map(|n| ts.state_id(n).unwrap()),
        );
        let comps = ts.connected_components(&set);
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn restriction_to_reachable_is_identity_for_connected_systems() {
        let ts = fig1_ts();
        let (r, map) = ts.restricted_to_reachable();
        assert_eq!(r.num_states(), ts.num_states());
        assert_eq!(map.len(), 7);
        assert_eq!(r.num_transitions(), ts.num_transitions());
    }

    #[test]
    fn restriction_drops_unreachable_states() {
        let mut b = TransitionSystemBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let orphan = b.add_state("orphan");
        let s2 = b.add_state("s2");
        b.add_transition(s0, "x", s1);
        b.add_transition(s1, "y", s2);
        b.add_transition(orphan, "x", s2);
        let ts = b.build(s0).unwrap();
        let (r, map) = ts.restricted_to_reachable();
        assert_eq!(r.num_states(), 3);
        assert!(map.iter().all(|old| ts.state_name(*old) != "orphan"));
        assert_eq!(r.num_transitions(), 2);
    }

    #[test]
    fn duplicate_transitions_are_deduplicated() {
        let mut b = TransitionSystemBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        b.add_transition(s0, "x", s1);
        b.add_transition(s0, "x", s1);
        let ts = b.build(s0).unwrap();
        assert_eq!(ts.num_transitions(), 1);
    }

    #[test]
    fn display_contains_arrows() {
        let ts = fig1_ts();
        let text = format!("{ts}");
        assert!(text.contains("s1 --a--> s2"));
        assert!(text.contains("7 states"));
    }
}
