//! Index newtypes for states and events.

use std::fmt;

/// Identifier of a state inside a [`crate::TransitionSystem`].
///
/// State ids are dense indices in `0..num_states`; they are only meaningful
/// relative to the transition system that produced them.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StateId(pub u32);

/// Identifier of an event (arc label) inside a [`crate::TransitionSystem`].
///
/// Event ids are dense indices in `0..num_events`.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EventId(pub u32);

impl StateId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EventId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for StateId {
    fn from(value: usize) -> Self {
        StateId(value as u32)
    }
}

impl From<usize> for EventId {
    fn from(value: usize) -> Self {
        EventId(value as u32)
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Debug for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_id_roundtrip() {
        let s = StateId::from(42usize);
        assert_eq!(s.index(), 42);
        assert_eq!(format!("{s}"), "s42");
        assert_eq!(format!("{s:?}"), "s42");
    }

    #[test]
    fn event_id_roundtrip() {
        let e = EventId::from(7usize);
        assert_eq!(e.index(), 7);
        assert_eq!(format!("{e}"), "e7");
        assert_eq!(format!("{e:?}"), "e7");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(StateId(1) < StateId(2));
        assert!(EventId(0) < EventId(9));
    }
}
