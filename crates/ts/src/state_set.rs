//! Dense bit-sets over the states of a transition system.

use crate::StateId;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

const WORD_BITS: usize = 64;

/// A dense bit-set over state indices `0..capacity`.
///
/// All region-theoretic computations (crossing relations, exit borders,
/// brick unions, …) manipulate sets of states; representing them as packed
/// bit vectors keeps these operations word-parallel.
///
/// # Example
///
/// ```
/// use ts::{StateSet, StateId};
///
/// let mut a = StateSet::new(10);
/// a.insert(StateId(1));
/// a.insert(StateId(4));
/// let mut b = StateSet::new(10);
/// b.insert(StateId(4));
/// b.insert(StateId(9));
///
/// let inter = a.intersection(&b);
/// assert_eq!(inter.len(), 1);
/// assert!(inter.contains(StateId(4)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct StateSet {
    words: Vec<u64>,
    capacity: usize,
}

impl StateSet {
    /// Creates an empty set able to hold states `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        StateSet { words: vec![0; capacity.div_ceil(WORD_BITS)], capacity }
    }

    /// Creates a set containing every state in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut set = StateSet::new(capacity);
        for word in set.words.iter_mut() {
            *word = u64::MAX;
        }
        set.trim();
        set
    }

    /// Creates a set from an iterator of states.
    ///
    /// # Panics
    ///
    /// Panics if any state index is `>= capacity`.
    pub fn from_states<I: IntoIterator<Item = StateId>>(capacity: usize, states: I) -> Self {
        let mut set = StateSet::new(capacity);
        for s in states {
            set.insert(s);
        }
        set
    }

    /// Number of states this set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of states currently in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set contains no states.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns `true` if `state` is in the set.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[inline]
    pub fn contains(&self, state: StateId) -> bool {
        let i = state.index();
        assert!(i < self.capacity, "state {state} out of range {}", self.capacity);
        self.words[i / WORD_BITS] & (1 << (i % WORD_BITS)) != 0
    }

    /// Inserts `state`; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[inline]
    pub fn insert(&mut self, state: StateId) -> bool {
        let i = state.index();
        assert!(i < self.capacity, "state {state} out of range {}", self.capacity);
        let word = &mut self.words[i / WORD_BITS];
        let mask = 1 << (i % WORD_BITS);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Removes `state`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[inline]
    pub fn remove(&mut self, state: StateId) -> bool {
        let i = state.index();
        assert!(i < self.capacity, "state {state} out of range {}", self.capacity);
        let word = &mut self.words[i / WORD_BITS];
        let mask = 1 << (i % WORD_BITS);
        let present = *word & mask != 0;
        *word &= !mask;
        present
    }

    /// Removes all states from the set.
    pub fn clear(&mut self) {
        for word in self.words.iter_mut() {
            *word = 0;
        }
    }

    /// Set union, out of place.
    pub fn union(&self, other: &StateSet) -> StateSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Set union, in place.
    pub fn union_with(&mut self, other: &StateSet) {
        self.check_compat(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Set intersection, out of place.
    pub fn intersection(&self, other: &StateSet) -> StateSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Set intersection, in place.
    pub fn intersect_with(&mut self, other: &StateSet) {
        self.check_compat(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Set difference `self \ other`, out of place.
    pub fn difference(&self, other: &StateSet) -> StateSet {
        let mut out = self.clone();
        out.subtract(other);
        out
    }

    /// Set difference `self \ other`, in place.
    pub fn subtract(&mut self, other: &StateSet) {
        self.check_compat(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Complement with respect to the full state universe.
    pub fn complement(&self) -> StateSet {
        let mut out = StateSet::full(self.capacity);
        out.subtract(self);
        out
    }

    /// Returns `true` if `self` and `other` have no common state.
    pub fn is_disjoint(&self, other: &StateSet) -> bool {
        self.check_compat(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Returns `true` if `self` and `other` share at least one state.
    ///
    /// Word-parallel; short-circuits on the first overlapping word, so it is
    /// the preferred form of `!a.is_disjoint(&b)` on hot paths.
    #[inline]
    pub fn intersects(&self, other: &StateSet) -> bool {
        self.check_compat(other);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// `|self ∩ other|` without materialising the intersection.
    pub fn intersection_count(&self, other: &StateSet) -> usize {
        self.check_compat(other);
        self.words.iter().zip(&other.words).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }

    /// `|self \ other|` without materialising the difference.
    pub fn difference_count(&self, other: &StateSet) -> usize {
        self.check_compat(other);
        self.words.iter().zip(&other.words).map(|(a, b)| (a & !b).count_ones() as usize).sum()
    }

    /// `|self ∪ other|` without materialising the union.
    pub fn union_count(&self, other: &StateSet) -> usize {
        self.check_compat(other);
        self.words.iter().zip(&other.words).map(|(a, b)| (a | b).count_ones() as usize).sum()
    }

    /// Complements the set in place with respect to the full state universe.
    pub fn complement_in_place(&mut self) {
        for word in self.words.iter_mut() {
            *word = !*word;
        }
        self.trim();
    }

    /// A 64-bit content fingerprint (FxHash-style word fold).
    ///
    /// Two equal sets always have equal fingerprints; the converse holds up
    /// to hash collisions, so deduplication layers use the fingerprint as a
    /// bucket key and confirm with `==`.  Folding the words directly is much
    /// cheaper than feeding them through a streaming `Hasher`.
    ///
    /// The canonical definition of this fold is `bdd::hash::fx_combine`;
    /// it is restated here because `ts` sits below `bdd` in the dependency
    /// order — keep the two in sync.
    pub fn fingerprint(&self) -> u64 {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        let mut hash = self.capacity as u64;
        for &word in &self.words {
            hash = (hash.rotate_left(5) ^ word).wrapping_mul(SEED);
        }
        hash
    }

    /// Returns `true` if every state of `self` is in `other`.
    pub fn is_subset(&self, other: &StateSet) -> bool {
        self.check_compat(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// Returns `true` if `self` is a strict subset of `other`.
    pub fn is_strict_subset(&self, other: &StateSet) -> bool {
        self.is_subset(other) && self != other
    }

    /// Iterates over the states in the set in increasing index order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { set: self, word_index: 0, current: self.words.first().copied().unwrap_or(0) }
    }

    /// Returns an arbitrary state of the set (the smallest index), if any.
    pub fn first(&self) -> Option<StateId> {
        self.iter().next()
    }

    fn check_compat(&self, other: &StateSet) {
        assert_eq!(
            self.capacity, other.capacity,
            "state sets over different universes ({} vs {})",
            self.capacity, other.capacity
        );
    }

    fn trim(&mut self) {
        let rem = self.capacity % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

/// Hasher that passes a single `u64` through unchanged — for maps whose
/// keys are already well-mixed hashes (like [`StateSet::fingerprint`]).
#[derive(Default)]
struct PassThroughHasher(u64);

impl Hasher for PassThroughHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("PassThroughHasher only accepts u64 keys");
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

/// Deduplicates state sets by their precomputed [`StateSet::fingerprint`].
///
/// Region and search layers generate thousands of candidate sets, most of
/// them repeats.  The bit vector is folded into a 64-bit key once per
/// candidate instead of being re-hashed on every table probe, and equality
/// inside a bucket confirms, so a fingerprint collision costs one
/// comparison and can never drop a genuinely new set.  Candidates are only
/// cloned once known to be new.
#[derive(Default)]
pub struct SetDedup {
    buckets: HashMap<u64, Vec<StateSet>, BuildHasherDefault<PassThroughHasher>>,
}

impl SetDedup {
    /// Creates an empty deduplicator.
    pub fn new() -> Self {
        SetDedup::default()
    }

    /// Records `set`; returns `true` when it was not seen before.
    pub fn insert(&mut self, set: &StateSet) -> bool {
        let bucket = self.buckets.entry(set.fingerprint()).or_default();
        if bucket.iter().any(|seen| seen == set) {
            return false;
        }
        bucket.push(set.clone());
        true
    }
}

impl fmt::Debug for StateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for StateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, s) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<StateId> for StateSet {
    /// Builds a set whose capacity is one larger than the maximum index seen.
    fn from_iter<I: IntoIterator<Item = StateId>>(iter: I) -> Self {
        let states: Vec<StateId> = iter.into_iter().collect();
        let capacity = states.iter().map(|s| s.index() + 1).max().unwrap_or(0);
        StateSet::from_states(capacity, states)
    }
}

impl Extend<StateId> for StateSet {
    fn extend<I: IntoIterator<Item = StateId>>(&mut self, iter: I) {
        for s in iter {
            self.insert(s);
        }
    }
}

/// Iterator over the members of a [`StateSet`].
pub struct Iter<'a> {
    set: &'a StateSet,
    word_index: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = StateId;

    fn next(&mut self) -> Option<StateId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(StateId((self.word_index * WORD_BITS + bit) as u32));
            }
            self.word_index += 1;
            if self.word_index >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_index];
        }
    }
}

impl<'a> IntoIterator for &'a StateSet {
    type Item = StateId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(capacity: usize, members: &[u32]) -> StateSet {
        StateSet::from_states(capacity, members.iter().map(|&i| StateId(i)))
    }

    #[test]
    fn empty_and_full() {
        let e = StateSet::new(70);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let f = StateSet::full(70);
        assert_eq!(f.len(), 70);
        assert!(!f.is_empty());
        assert!(e.is_subset(&f));
        assert!(!f.is_subset(&e));
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = StateSet::new(130);
        assert!(s.insert(StateId(0)));
        assert!(s.insert(StateId(64)));
        assert!(s.insert(StateId(129)));
        assert!(!s.insert(StateId(64)));
        assert_eq!(s.len(), 3);
        assert!(s.contains(StateId(129)));
        assert!(s.remove(StateId(64)));
        assert!(!s.remove(StateId(64)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let s = StateSet::new(4);
        s.contains(StateId(4));
    }

    #[test]
    fn boolean_algebra() {
        let a = set(200, &[1, 5, 100, 150]);
        let b = set(200, &[5, 150, 199]);
        assert_eq!(a.union(&b).len(), 5);
        assert_eq!(a.intersection(&b).len(), 2);
        assert_eq!(a.difference(&b).len(), 2);
        assert!(a.intersection(&b).is_subset(&a));
        assert!(a.intersection(&b).is_subset(&b));
        assert!(a.is_disjoint(&set(200, &[0, 2, 3])));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn complement_involution() {
        let a = set(67, &[0, 1, 2, 33, 66]);
        assert_eq!(a.complement().complement(), a);
        assert_eq!(a.complement().len(), 67 - a.len());
        assert!(a.is_disjoint(&a.complement()));
    }

    #[test]
    fn strict_subset() {
        let a = set(10, &[1, 2]);
        let b = set(10, &[1, 2, 3]);
        assert!(a.is_strict_subset(&b));
        assert!(!b.is_strict_subset(&a));
        assert!(!a.is_strict_subset(&a));
    }

    #[test]
    fn iteration_order() {
        let a = set(300, &[299, 0, 64, 65, 128]);
        let collected: Vec<u32> = a.iter().map(|s| s.0).collect();
        assert_eq!(collected, vec![0, 64, 65, 128, 299]);
        assert_eq!(a.first(), Some(StateId(0)));
    }

    #[test]
    fn from_iterator_sizes_capacity() {
        let s: StateSet = [StateId(3), StateId(7)].into_iter().collect();
        assert_eq!(s.capacity(), 8);
        assert!(s.contains(StateId(7)));
    }

    #[test]
    fn display_formats_members() {
        let s = set(10, &[1, 3]);
        assert_eq!(format!("{s}"), "{s1, s3}");
    }

    #[test]
    fn capacity_zero_is_a_valid_empty_universe() {
        let e = StateSet::new(0);
        let f = StateSet::full(0);
        assert_eq!(e, f, "the empty universe has exactly one set");
        assert!(e.is_empty());
        assert_eq!(f.len(), 0);
        assert_eq!(e.union(&f), e);
        assert_eq!(e.complement(), e);
        assert!(e.is_subset(&f));
        assert!(!e.intersects(&f));
        assert_eq!(e.iter().count(), 0);
        assert_eq!(e.first(), None);
        assert_eq!(e.intersection_count(&f), 0);
    }

    #[test]
    fn full_trims_tail_bits_on_unaligned_capacities() {
        // One bit shy of a word boundary, one bit past it, and mid-word.
        for capacity in [1, 63, 64, 65, 127, 128, 129, 190] {
            let f = StateSet::full(capacity);
            assert_eq!(f.len(), capacity, "capacity {capacity}");
            // The tail bits beyond `capacity` must be zero, otherwise word
            // counts and equality would silently diverge.
            assert!(f.iter().all(|s| s.index() < capacity), "capacity {capacity}");
            assert_eq!(f.iter().count(), capacity, "capacity {capacity}");
            // Complement of full is empty — only true with a trimmed tail.
            assert!(f.complement().is_empty(), "capacity {capacity}");
            assert_eq!(f, f.complement().complement(), "capacity {capacity}");
        }
    }

    #[test]
    fn complement_in_place_matches_out_of_place() {
        for capacity in [0, 1, 65, 100] {
            let members: Vec<u32> = (0..capacity as u32).step_by(3).collect();
            let a = set(capacity, &members);
            let mut b = a.clone();
            b.complement_in_place();
            assert_eq!(b, a.complement(), "capacity {capacity}");
            b.complement_in_place();
            assert_eq!(b, a, "involution at capacity {capacity}");
        }
    }

    #[test]
    fn counting_ops_agree_with_materialised_sets() {
        let a = set(130, &[0, 63, 64, 65, 128, 129]);
        let b = set(130, &[63, 65, 70, 129]);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection_count(&b), a.intersection(&b).len());
        assert_eq!(a.difference_count(&b), a.difference(&b).len());
        assert_eq!(b.difference_count(&a), b.difference(&a).len());
        assert_eq!(a.union_count(&b), a.union(&b).len());
        let disjoint = set(130, &[1, 2]);
        assert!(!a.intersects(&disjoint));
        assert_eq!(a.difference_count(&disjoint), a.len());
    }

    #[test]
    fn fingerprints_track_content_not_identity() {
        let a = set(100, &[5, 50, 99]);
        let b = set(100, &[5, 50, 99]);
        let c = set(100, &[5, 50]);
        assert_eq!(a.fingerprint(), b.fingerprint(), "equal sets, equal fingerprints");
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Same bit pattern over a different universe is a different set.
        let d = set(101, &[5, 50, 99]);
        assert_ne!(a.fingerprint(), d.fingerprint());
        let mut e = a.clone();
        e.remove(StateId(99));
        assert_eq!(e.fingerprint(), c.fingerprint());
    }
}
