//! Behavioural predicates required for speed-independence.
//!
//! A binary-encoded transition system is implementable as a
//! speed-independent circuit if it is deterministic, commutative and all
//! output events are persistent (paper §3).  The methods in this module
//! check these predicates and report the first counterexample found, which
//! is invaluable when an insertion candidate is rejected.

use crate::{EventId, StateId, StateSet, TransitionSystem};

/// Counterexample to determinism: a state with two transitions for the same
/// event that lead to different targets.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DeterminismViolation {
    /// The branching state.
    pub state: StateId,
    /// The event that is ambiguous.
    pub event: EventId,
    /// First target.
    pub target_a: StateId,
    /// Second, different target.
    pub target_b: StateId,
}

/// Counterexample to commutativity: two events enabled in `state` whose two
/// interleavings end in different states.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CommutativityViolation {
    /// The state where both interleavings start.
    pub state: StateId,
    /// First event.
    pub event_a: EventId,
    /// Second event.
    pub event_b: EventId,
    /// End state of the `a;b` interleaving.
    pub end_ab: StateId,
    /// End state of the `b;a` interleaving.
    pub end_ba: StateId,
}

/// Counterexample to persistency of `event`: it was enabled in `state` but
/// firing `disabled_by` leads to `successor` where it is no longer enabled.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PersistencyViolation {
    /// The event whose enabling is lost.
    pub event: EventId,
    /// State where `event` was enabled.
    pub state: StateId,
    /// The interfering event.
    pub disabled_by: EventId,
    /// State reached by `disabled_by` in which `event` is disabled.
    pub successor: StateId,
}

impl TransitionSystem {
    /// Returns `true` if for every state and event there is at most one
    /// successor.
    pub fn is_deterministic(&self) -> bool {
        self.determinism_violation().is_none()
    }

    /// Returns the first determinism violation, if any.
    pub fn determinism_violation(&self) -> Option<DeterminismViolation> {
        for s in 0..self.num_states() {
            let state = StateId::from(s);
            let succ = self.successors(state);
            for i in 0..succ.len() {
                for j in (i + 1)..succ.len() {
                    if succ[i].0 == succ[j].0 && succ[i].1 != succ[j].1 {
                        return Some(DeterminismViolation {
                            state,
                            event: succ[i].0,
                            target_a: succ[i].1,
                            target_b: succ[j].1,
                        });
                    }
                }
            }
        }
        None
    }

    /// Returns `true` if whenever two events can be executed from a state in
    /// either order, both orders reach the same state.
    ///
    /// The check only constrains pairs for which *both* interleavings exist;
    /// it does not require the second interleaving to exist (that is the job
    /// of persistency / the local confluence of the underlying net).
    pub fn is_commutative(&self) -> bool {
        self.commutativity_violation().is_none()
    }

    /// Returns the first commutativity violation, if any.
    pub fn commutativity_violation(&self) -> Option<CommutativityViolation> {
        for s in 0..self.num_states() {
            let state = StateId::from(s);
            let succ = self.successors(state);
            for &(ea, ta) in succ {
                for &(eb, tb) in succ {
                    if ea >= eb {
                        continue;
                    }
                    // a then b
                    let Some(end_ab) = self.successor(ta, eb) else { continue };
                    // b then a
                    let Some(end_ba) = self.successor(tb, ea) else { continue };
                    if end_ab != end_ba {
                        return Some(CommutativityViolation {
                            state,
                            event_a: ea,
                            event_b: eb,
                            end_ab,
                            end_ba,
                        });
                    }
                }
            }
        }
        None
    }

    /// Returns `true` if `event` is persistent in the whole state space:
    /// once enabled it stays enabled until it fires.
    pub fn is_persistent(&self, event: EventId) -> bool {
        self.persistency_violation(event).is_none()
    }

    /// Returns `true` if `event` is persistent *within* the given subset of
    /// states: for every `s` in `subset` where `event` is enabled, firing any
    /// other event from `s` that stays in the system keeps `event` enabled.
    pub fn is_persistent_in(&self, event: EventId, subset: &StateSet) -> bool {
        for s in subset.iter() {
            if !self.is_enabled(s, event) {
                continue;
            }
            for &(other, target) in self.successors(s) {
                if other == event {
                    continue;
                }
                if !self.is_enabled(target, event) {
                    return false;
                }
            }
        }
        true
    }

    /// Returns the first persistency violation of `event`, if any.
    pub fn persistency_violation(&self, event: EventId) -> Option<PersistencyViolation> {
        for &(s, _) in self.transitions_of(event) {
            for &(other, target) in self.successors(s) {
                if other == event {
                    continue;
                }
                if !self.is_enabled(target, event) {
                    return Some(PersistencyViolation {
                        event,
                        state: s,
                        disabled_by: other,
                        successor: target,
                    });
                }
            }
        }
        None
    }

    /// All events that are persistent in the whole system.
    pub fn persistent_events(&self) -> Vec<EventId> {
        (0..self.num_events()).map(EventId::from).filter(|&e| self.is_persistent(e)).collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::{StateSet, TransitionSystemBuilder};

    fn diamond() -> crate::TransitionSystem {
        // A commuting diamond: a and b concurrent.
        let mut builder = TransitionSystemBuilder::new();
        let s0 = builder.add_state("s0");
        let sa = builder.add_state("sa");
        let sb = builder.add_state("sb");
        let s1 = builder.add_state("s1");
        builder.add_transition(s0, "a", sa);
        builder.add_transition(s0, "b", sb);
        builder.add_transition(sa, "b", s1);
        builder.add_transition(sb, "a", s1);
        builder.build(s0).unwrap()
    }

    #[test]
    fn diamond_is_deterministic_commutative_persistent() {
        let ts = diamond();
        assert!(ts.is_deterministic());
        assert!(ts.is_commutative());
        let a = ts.event_id("a").unwrap();
        let b = ts.event_id("b").unwrap();
        assert!(ts.is_persistent(a));
        assert!(ts.is_persistent(b));
        assert_eq!(ts.persistent_events().len(), 2);
    }

    #[test]
    fn nondeterminism_is_detected() {
        let mut builder = TransitionSystemBuilder::new();
        let s0 = builder.add_state("s0");
        let s1 = builder.add_state("s1");
        let s2 = builder.add_state("s2");
        builder.add_transition(s0, "a", s1);
        builder.add_transition(s0, "a", s2);
        let ts = builder.build(s0).unwrap();
        assert!(!ts.is_deterministic());
        let v = ts.determinism_violation().unwrap();
        assert_eq!(v.state, s0);
        assert_ne!(v.target_a, v.target_b);
    }

    #[test]
    fn broken_diamond_violates_commutativity() {
        let mut builder = TransitionSystemBuilder::new();
        let s0 = builder.add_state("s0");
        let sa = builder.add_state("sa");
        let sb = builder.add_state("sb");
        let s1 = builder.add_state("s1");
        let s2 = builder.add_state("s2");
        builder.add_transition(s0, "a", sa);
        builder.add_transition(s0, "b", sb);
        builder.add_transition(sa, "b", s1);
        builder.add_transition(sb, "a", s2); // different corner
        let ts = builder.build(s0).unwrap();
        assert!(!ts.is_commutative());
        let v = ts.commutativity_violation().unwrap();
        assert_eq!(v.state, s0);
        assert_ne!(v.end_ab, v.end_ba);
    }

    #[test]
    fn choice_violates_persistency() {
        // a and b in free choice: firing one disables the other.
        let mut builder = TransitionSystemBuilder::new();
        let s0 = builder.add_state("s0");
        let s1 = builder.add_state("s1");
        let s2 = builder.add_state("s2");
        builder.add_transition(s0, "a", s1);
        builder.add_transition(s0, "b", s2);
        let ts = builder.build(s0).unwrap();
        let a = ts.event_id("a").unwrap();
        let b = ts.event_id("b").unwrap();
        assert!(!ts.is_persistent(a));
        assert!(!ts.is_persistent(b));
        let v = ts.persistency_violation(a).unwrap();
        assert_eq!(v.state, s0);
        assert_eq!(v.disabled_by, b);
        assert!(ts.is_commutative(), "choice without diamonds is vacuously commutative");
    }

    #[test]
    fn persistency_within_a_subset() {
        let ts = diamond();
        let a = ts.event_id("a").unwrap();
        let subset = StateSet::from_states(ts.num_states(), [ts.state_id("sb").unwrap()]);
        assert!(ts.is_persistent_in(a, &subset));
        // In a free-choice system persistency fails on the choice state but
        // holds on subsets that exclude it.
        let mut builder = TransitionSystemBuilder::new();
        let s0 = builder.add_state("s0");
        let s1 = builder.add_state("s1");
        let s2 = builder.add_state("s2");
        builder.add_transition(s0, "a", s1);
        builder.add_transition(s0, "b", s2);
        builder.add_transition(s1, "a", s2);
        let choice = builder.build(s0).unwrap();
        let a = choice.event_id("a").unwrap();
        let whole = StateSet::full(choice.num_states());
        assert!(!choice.is_persistent_in(a, &whole));
        let tail = StateSet::from_states(choice.num_states(), [choice.state_id("s1").unwrap()]);
        assert!(choice.is_persistent_in(a, &tail));
    }
}
