//! Experiment harnesses that regenerate the paper's evaluation artifacts.
//!
//! * [`table1_rows`] — "Results for STGs with a large number of states"
//!   (Table 1): places / transitions / signals / reachable states / CPU for
//!   workloads with exploding state spaces, using the symbolic engine for
//!   the state counts and the explicit solver where feasible.
//! * [`table2_rows`] — "Experimental results compared with ASSASSIN"
//!   (Table 2): per-benchmark area (literal count) and CPU for the
//!   region-based method and the excitation-region baseline.
//! * [`frontier_width_sweep`] — ablation of the `FW` quality/time knob.
//! * [`concurrency_enlargement_comparison`] — ablation of step 4 of the
//!   algorithm (greedy ER enlargement).
//!
//! Each function returns plain data; the `table1`/`table2`/`ablation_*`
//! binaries print them as aligned text tables and the wall-clock benches
//! (built on the in-repo [`harness`] module) measure the underlying
//! runtimes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use csc::{solve_stg, SolverConfig};
use logic::estimate_area;
use std::time::Instant;
use stg::Stg;

/// One row of the Table 1 reproduction.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: String,
    /// Places of the STG.
    pub places: usize,
    /// Transitions of the STG.
    pub transitions: usize,
    /// Signals of the STG.
    pub signals: usize,
    /// Reachable states (symbolic count, exact).
    pub states: f64,
    /// BDD nodes representing the reachable set.
    pub bdd_nodes: usize,
    /// Whether the specification needs state signals at all (`None` when the
    /// symbolic CSC check was skipped because the variable count is large).
    pub has_csc_conflicts: Option<bool>,
    /// State signals inserted by the explicit solver (`None` when the state
    /// space was too large for the explicit pass).
    pub inserted_signals: Option<usize>,
    /// Wall-clock seconds of the whole row (symbolic + explicit pass).
    pub cpu_seconds: f64,
}

/// One row of the Table 2 reproduction.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// Reachable states.
    pub states: usize,
    /// Area (literals) and CPU of the region-based method, when it solved
    /// the benchmark.
    pub region: Option<(usize, f64)>,
    /// Area (literals) and CPU of the excitation-region baseline, when it
    /// solved the benchmark.
    pub baseline: Option<(usize, f64)>,
}

/// The workloads of the Table 1 reproduction: wide concurrency (the `parN`
/// and `pipeN` classes) and concurrent conflict-rich banks (the
/// `master-read`/`adfast` class), at sizes whose *symbolic* analysis is
/// immediate while explicit enumeration ranges from easy to impossible.
pub fn table1_workloads() -> Vec<(Stg, usize)> {
    vec![
        (stg::benchmarks::parallel_handshakes(8), 200_000),
        (stg::benchmarks::parallel_handshakes(12), 0),
        (stg::benchmarks::parallel_handshakes(16), 0),
        (stg::benchmarks::parallelizer(12), 20_000),
        (stg::benchmarks::parallelizer(16), 0),
        (stg::benchmarks::pulser_bank(3), 20_000),
        (stg::benchmarks::pulser_bank(6), 0),
        (stg::benchmarks::master_read_like(), 20_000),
        (stg::benchmarks::vme_read(), 20_000),
    ]
}

/// Runs the Table 1 experiment on the default workloads.
pub fn table1_rows() -> Vec<Table1Row> {
    table1_rows_for(table1_workloads())
}

/// Runs the Table 1 experiment on a caller-supplied workload list (each
/// entry is a model plus the explicit-state budget, 0 = symbolic only).
pub fn table1_rows_for(workloads: Vec<(Stg, usize)>) -> Vec<Table1Row> {
    workloads
        .into_iter()
        .map(|(model, explicit_limit)| {
            let start = Instant::now();
            let (places, transitions, signals) = model.stats();
            let space = model.symbolic_state_space(None);
            // The per-signal symbolic CSC check is only run while the
            // variable count stays moderate; the huge pure-concurrency
            // workloads are conflict-free by construction anyway.
            let has_conflicts =
                if places + signals <= 48 { Some(model.symbolic_csc_violation(0)) } else { None };
            let inserted_signals = if explicit_limit > 0 {
                let config = SolverConfig { max_states: explicit_limit, ..SolverConfig::default() };
                solve_stg(&model, &config).ok().map(|s| s.inserted_signals.len())
            } else {
                None
            };
            Table1Row {
                name: model.name().to_owned(),
                places,
                transitions,
                signals,
                states: space.state_count_f64(),
                bdd_nodes: space.bdd_size(),
                has_csc_conflicts: has_conflicts,
                inserted_signals,
                cpu_seconds: start.elapsed().as_secs_f64(),
            }
        })
        .collect()
}

/// Renders Table 1 as aligned text.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>7} {:>7} {:>8} {:>14} {:>10} {:>9} {:>8} {:>9}\n",
        "benchmark",
        "places",
        "trans.",
        "signals",
        "states",
        "bdd nodes",
        "csc?",
        "inserted",
        "cpu[s]"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>7} {:>7} {:>8} {:>14.6e} {:>10} {:>9} {:>8} {:>9.3}\n",
            r.name,
            r.places,
            r.transitions,
            r.signals,
            r.states,
            r.bdd_nodes,
            match r.has_csc_conflicts {
                Some(true) => "conflict",
                Some(false) => "ok",
                None => "n/a",
            },
            r.inserted_signals.map_or_else(|| "-".to_owned(), |n| n.to_string()),
            r.cpu_seconds
        ));
    }
    out
}

/// Runs the Table 2 experiment (region-based method vs. the ASSASSIN-style
/// excitation-region baseline) over the named benchmark suite.
pub fn table2_rows() -> Vec<Table2Row> {
    stg::benchmarks::table2_suite()
        .into_iter()
        .map(|(name, model, _)| {
            let states = model.state_graph(1_000_000).map(|sg| sg.num_states()).unwrap_or_default();
            let region = measure(&model, &SolverConfig::default());
            let baseline = measure(&model, &SolverConfig::excitation_region_baseline());
            Table2Row { name: name.to_owned(), states, region, baseline }
        })
        .collect()
}

fn measure(model: &Stg, config: &SolverConfig) -> Option<(usize, f64)> {
    let start = Instant::now();
    let solution = solve_stg(model, config).ok()?;
    let area = estimate_area(&solution.graph).ok()?;
    Some((area.total_literals, start.elapsed().as_secs_f64()))
}

/// Renders Table 2 as aligned text.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>7} | {:>10} {:>9} | {:>10} {:>9}\n",
        "benchmark", "states", "base area", "base cpu", "regn area", "regn cpu"
    ));
    let fmt = |cell: &Option<(usize, f64)>| match cell {
        Some((area, cpu)) => (area.to_string(), format!("{cpu:.3}")),
        None => ("fail".to_owned(), "-".to_owned()),
    };
    let mut totals = (0usize, 0f64, 0usize, 0f64);
    for r in rows {
        let (ba, bc) = fmt(&r.baseline);
        let (ra, rc) = fmt(&r.region);
        out.push_str(&format!(
            "{:<18} {:>7} | {:>10} {:>9} | {:>10} {:>9}\n",
            r.name, r.states, ba, bc, ra, rc
        ));
        if let Some((a, c)) = r.baseline {
            totals.0 += a;
            totals.1 += c;
        }
        if let Some((a, c)) = r.region {
            totals.2 += a;
            totals.3 += c;
        }
    }
    out.push_str(&format!(
        "{:<18} {:>7} | {:>10} {:>9.3} | {:>10} {:>9.3}\n",
        "total", "", totals.0, totals.1, totals.2, totals.3
    ));
    out
}

/// Ablation A: solution quality and runtime as a function of the frontier
/// width `FW`.  Returns `(fw, inserted signals, literals, seconds)` rows for
/// the given model.
pub fn frontier_width_sweep(model: &Stg, widths: &[usize]) -> Vec<(usize, usize, usize, f64)> {
    widths
        .iter()
        .filter_map(|&fw| {
            let config = SolverConfig { frontier_width: fw, ..SolverConfig::default() };
            let start = Instant::now();
            let solution = solve_stg(model, &config).ok()?;
            let literals = estimate_area(&solution.graph).ok()?.total_literals;
            Some((fw, solution.inserted_signals.len(), literals, start.elapsed().as_secs_f64()))
        })
        .collect()
}

/// Ablation B: effect of greedy concurrency enlargement (step 4) on the
/// number of inserted signals and the literal count.
/// Returns `(enlarged, inserted signals, literals, seconds)`.
pub fn concurrency_enlargement_comparison(model: &Stg) -> Vec<(bool, usize, usize, f64)> {
    [false, true]
        .into_iter()
        .filter_map(|enlarge| {
            let config = SolverConfig { enlarge_concurrency: enlarge, ..SolverConfig::default() };
            let start = Instant::now();
            let solution = solve_stg(model, &config).ok()?;
            let literals = estimate_area(&solution.graph).ok()?.total_literals;
            Some((
                enlarge,
                solution.inserted_signals.len(),
                literals,
                start.elapsed().as_secs_f64(),
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_cover_the_whole_suite() {
        let rows = table2_rows();
        assert_eq!(rows.len(), stg::benchmarks::table2_suite().len());
        // The region-based method must solve every benchmark of the suite.
        for row in &rows {
            assert!(row.region.is_some(), "{} not solved by the region method", row.name);
            assert!(row.states > 0);
        }
        let text = render_table2(&rows);
        assert!(text.contains("vme_read"));
        assert!(text.contains("total"));
    }

    #[test]
    fn table1_rows_report_huge_state_counts() {
        // A trimmed workload list keeps the debug-mode test fast; the full
        // list is exercised by the `table1` binary and Criterion bench.
        let rows = table1_rows_for(vec![
            (stg::benchmarks::parallel_handshakes(16), 0),
            (stg::benchmarks::vme_read(), 20_000),
        ]);
        let par16 = rows.iter().find(|r| r.name == "par_hs16").unwrap();
        assert!(par16.states > 4e9, "4^16 markings expected, got {}", par16.states);
        let small = rows.iter().find(|r| r.name == "vme_read").unwrap();
        assert!(small.inserted_signals.unwrap_or(0) >= 1);
        assert_eq!(small.has_csc_conflicts, Some(true));
        let text = render_table1(&rows);
        assert!(text.contains("par_hs16"));
    }

    #[test]
    fn frontier_sweep_and_enlargement_run() {
        let model = stg::benchmarks::sequencer(3);
        let sweep = frontier_width_sweep(&model, &[1, 4]);
        assert_eq!(sweep.len(), 2);
        for (_, signals, literals, _) in &sweep {
            assert!(*signals >= 1);
            assert!(*literals > 0);
        }
        let enlargement = concurrency_enlargement_comparison(&model);
        assert_eq!(enlargement.len(), 2);
    }
}
