//! A minimal wall-clock benchmarking harness with a Criterion-flavoured API.
//!
//! The container this repository builds in has no network access, so the
//! real Criterion crate cannot be fetched; this std-only stand-in keeps the
//! bench sources close to their original shape (`benchmark_group`,
//! `bench_function`, `Bencher::iter`, `black_box`) while adding the one
//! thing the project needs from a harness: machine-readable baselines.
//! Setting `BENCH_OUT=<path>` writes every recorded statistic as a JSON
//! array so successive PRs have a perf trajectory to compare against.
//!
//! Two environment overrides support CI smoke runs: `BENCH_SAMPLE_SIZE`
//! and `BENCH_MEASUREMENT_MS` replace every group's sampling parameters,
//! so a pipeline can execute the full bench surface in seconds just to
//! prove the harness still runs.  Benchmarks may also attach gauge
//! metrics (BDD node counts, cache hit rates, …) to their most recent
//! result via [`BenchmarkGroup::attach_metrics`]; metrics are printed and
//! serialised alongside the timing columns.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Prints a one-line warning (and returns `true`) when a `jobs > 1`
/// benchmark row is about to be recorded on a host with a single hardware
/// thread: there the row measures thread-scheduling overhead, not parallel
/// speedup, and must be read together with its `hardware_threads` column.
pub fn warn_if_single_core_jobs(jobs: usize) -> bool {
    let hardware = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    if jobs > 1 && hardware == 1 {
        eprintln!(
            "warning: jobs={jobs} row recorded on a single-hardware-thread host — \
             the timing measures scheduling overhead, not parallel speedup"
        );
        true
    } else {
        false
    }
}

/// Statistics of one benchmark id, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct SampleStats {
    /// `group/function` identifier.
    pub id: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Median (robust central estimate).
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Gauge metrics attached after timing (name → value), e.g. BDD node
    /// counts.  Serialised as extra JSON fields next to the timing columns.
    pub metrics: Vec<(String, f64)>,
}

/// Top-level collector of benchmark results.
pub struct Criterion {
    results: Vec<SampleStats>,
    sample_size_override: Option<usize>,
    measurement_time_override: Option<Duration>,
}

impl Default for Criterion {
    /// Same as [`Criterion::new`] — the environment overrides apply however
    /// the collector is constructed.
    fn default() -> Self {
        Criterion::new()
    }
}

impl Criterion {
    /// Creates an empty collector, honouring the `BENCH_SAMPLE_SIZE` and
    /// `BENCH_MEASUREMENT_MS` environment overrides.
    pub fn new() -> Self {
        let parse = |name: &str| std::env::var(name).ok().and_then(|v| v.parse::<u64>().ok());
        Criterion {
            results: Vec::new(),
            sample_size_override: parse("BENCH_SAMPLE_SIZE").map(|n| n.max(1) as usize),
            measurement_time_override: parse("BENCH_MEASUREMENT_MS").map(Duration::from_millis),
        }
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size_override.unwrap_or(10);
        let measurement_time = self.measurement_time_override.unwrap_or(Duration::from_secs(3));
        BenchmarkGroup { criterion: self, name: name.into(), sample_size, measurement_time }
    }

    /// Prints the summary table and, when `BENCH_OUT` is set, writes the
    /// results as JSON to that path.
    pub fn finish(self) {
        println!("\n{:<40} {:>12} {:>12} {:>12} {:>8}", "benchmark", "median", "mean", "min", "n");
        for r in &self.results {
            println!(
                "{:<40} {:>12} {:>12} {:>12} {:>8}",
                r.id,
                format_ns(r.median_ns),
                format_ns(r.mean_ns),
                format_ns(r.min_ns),
                r.samples
            );
            if !r.metrics.is_empty() {
                let rendered: Vec<String> =
                    r.metrics.iter().map(|(k, v)| format!("{k}={v:.0}")).collect();
                println!("{:<40}   {}", "", rendered.join("  "));
            }
        }
        if let Ok(path) = std::env::var("BENCH_OUT") {
            match std::fs::write(&path, results_to_json(&self.results)) {
                Ok(()) => println!("\nresults written to {path}"),
                Err(e) => eprintln!("\ncould not write {path}: {e}"),
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn results_to_json(results: &[SampleStats]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let mut metrics = String::new();
        for (name, value) in &r.metrics {
            metrics.push_str(&format!(", \"{}\": {:.1}", name.replace('"', "\\\""), value));
        }
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"samples\": {}, \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \
             \"min_ns\": {:.1}, \"max_ns\": {:.1}{}}}{}\n",
            r.id.replace('"', "\\\""),
            r.samples,
            r.mean_ns,
            r.median_ns,
            r.min_ns,
            r.max_ns,
            metrics,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

/// A named group sharing sampling parameters.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (ignored when the
    /// `BENCH_SAMPLE_SIZE` environment override is active).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if self.criterion.sample_size_override.is_none() {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Sets the soft time budget per benchmark; sampling stops early when it
    /// is exhausted (at least one sample is always taken).  Ignored when the
    /// `BENCH_MEASUREMENT_MS` environment override is active.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        if self.criterion.measurement_time_override.is_none() {
            self.measurement_time = d;
        }
        self
    }

    /// Attaches gauge metrics (name → value) to the most recently recorded
    /// benchmark of *this group*.  Panics if the group has not recorded a
    /// benchmark yet, so metrics can never silently land on another
    /// group's row.
    pub fn attach_metrics(&mut self, metrics: &[(&str, f64)]) {
        let prefix = format!("{}/", self.name);
        let last = self
            .criterion
            .results
            .last_mut()
            .filter(|r| r.id.starts_with(&prefix))
            .expect("attach_metrics requires a benchmark recorded by this group");
        last.metrics.extend(metrics.iter().map(|&(k, v)| (k.to_owned(), v)));
    }

    /// Times `f` (which must drive a [`Bencher`]) and records the result.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let full_id = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher { samples: Vec::new() };
        // One untimed warmup pass populates caches and allocators.
        f(&mut bencher);
        bencher.samples.clear();
        let budget = Instant::now();
        loop {
            f(&mut bencher);
            if bencher.samples.len() >= self.sample_size
                || budget.elapsed() >= self.measurement_time
            {
                break;
            }
        }
        assert!(
            !bencher.samples.is_empty(),
            "bench function '{full_id}' must call Bencher::iter at least once"
        );
        let mut ns: Vec<f64> = bencher.samples.iter().map(|d| d.as_secs_f64() * 1e9).collect();
        ns.sort_by(|a, b| a.total_cmp(b));
        let samples = ns.len();
        let mean_ns = ns.iter().sum::<f64>() / samples as f64;
        let median_ns = if samples % 2 == 1 {
            ns[samples / 2]
        } else {
            (ns[samples / 2 - 1] + ns[samples / 2]) / 2.0
        };
        let stats = SampleStats {
            id: full_id,
            samples,
            mean_ns,
            median_ns,
            min_ns: ns[0],
            max_ns: ns[samples - 1],
            metrics: Vec::new(),
        };
        println!("{:<40} {:>12} (n={})", stats.id, format_ns(stats.median_ns), stats.samples);
        self.criterion.results.push(stats);
    }

    /// Ends the group (kept for API parity; recording happens eagerly).
    pub fn finish(self) {}
}

/// Times individual iterations inside one `bench_function` call.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once, timed; the routine records one sample per call.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_requested_samples() {
        let mut c = Criterion::new();
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(5).measurement_time(Duration::from_secs(1));
            g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            g.finish();
        }
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].samples, 5);
        assert!(c.results[0].min_ns <= c.results[0].median_ns);
        assert!(c.results[0].median_ns <= c.results[0].max_ns);
    }

    #[test]
    fn single_core_warning_only_fires_for_parallel_rows() {
        // jobs=1 rows are always fine, whatever the host.
        assert!(!warn_if_single_core_jobs(1));
        assert!(!warn_if_single_core_jobs(0));
        // jobs>1 warns exactly on single-hardware-thread hosts.
        let hardware = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
        assert_eq!(warn_if_single_core_jobs(4), hardware == 1);
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let stats = SampleStats {
            id: "g/f".to_owned(),
            samples: 3,
            mean_ns: 10.0,
            median_ns: 9.0,
            min_ns: 8.0,
            max_ns: 13.0,
            metrics: vec![("bdd_nodes".to_owned(), 42.0)],
        };
        let json = results_to_json(&[stats]);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"id\": \"g/f\""));
        assert!(json.contains("\"bdd_nodes\": 42.0"));
        assert!(!json.contains("},\n]"), "no trailing comma");
    }

    #[test]
    #[should_panic(expected = "recorded by this group")]
    fn metrics_cannot_attach_across_groups() {
        let mut c = Criterion::new();
        {
            let mut g = c.benchmark_group("first");
            g.sample_size(1).measurement_time(Duration::from_secs(1));
            g.bench_function("bench", |b| b.iter(|| black_box(1)));
            g.finish();
        }
        // A fresh group with no recorded benchmark must not be able to tag
        // the previous group's row.
        let mut g = c.benchmark_group("second");
        g.attach_metrics(&[("nodes", 1.0)]);
    }

    #[test]
    fn metrics_attach_to_the_most_recent_result() {
        let mut c = Criterion::new();
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(2).measurement_time(Duration::from_secs(1));
            g.bench_function("first", |b| b.iter(|| black_box(1)));
            g.bench_function("second", |b| b.iter(|| black_box(2)));
            g.attach_metrics(&[("nodes", 7.0), ("peak", 9.0)]);
            g.finish();
        }
        assert!(c.results[0].metrics.is_empty());
        assert_eq!(c.results[1].metrics, vec![("nodes".to_owned(), 7.0), ("peak".to_owned(), 9.0)]);
    }
}
