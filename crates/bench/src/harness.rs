//! A minimal wall-clock benchmarking harness with a Criterion-flavoured API.
//!
//! The container this repository builds in has no network access, so the
//! real Criterion crate cannot be fetched; this std-only stand-in keeps the
//! bench sources close to their original shape (`benchmark_group`,
//! `bench_function`, `Bencher::iter`, `black_box`) while adding the one
//! thing the project needs from a harness: machine-readable baselines.
//! Setting `BENCH_OUT=<path>` writes every recorded statistic as a JSON
//! array so successive PRs have a perf trajectory to compare against.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Statistics of one benchmark id, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct SampleStats {
    /// `group/function` identifier.
    pub id: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Median (robust central estimate).
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
}

/// Top-level collector of benchmark results.
#[derive(Default)]
pub struct Criterion {
    results: Vec<SampleStats>,
}

impl Criterion {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Prints the summary table and, when `BENCH_OUT` is set, writes the
    /// results as JSON to that path.
    pub fn finish(self) {
        println!("\n{:<40} {:>12} {:>12} {:>12} {:>8}", "benchmark", "median", "mean", "min", "n");
        for r in &self.results {
            println!(
                "{:<40} {:>12} {:>12} {:>12} {:>8}",
                r.id,
                format_ns(r.median_ns),
                format_ns(r.mean_ns),
                format_ns(r.min_ns),
                r.samples
            );
        }
        if let Ok(path) = std::env::var("BENCH_OUT") {
            match std::fs::write(&path, results_to_json(&self.results)) {
                Ok(()) => println!("\nresults written to {path}"),
                Err(e) => eprintln!("\ncould not write {path}: {e}"),
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn results_to_json(results: &[SampleStats]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"samples\": {}, \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \
             \"min_ns\": {:.1}, \"max_ns\": {:.1}}}{}\n",
            r.id.replace('"', "\\\""),
            r.samples,
            r.mean_ns,
            r.median_ns,
            r.min_ns,
            r.max_ns,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

/// A named group sharing sampling parameters.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the soft time budget per benchmark; sampling stops early when it
    /// is exhausted (at least one sample is always taken).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Times `f` (which must drive a [`Bencher`]) and records the result.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let full_id = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher { samples: Vec::new() };
        // One untimed warmup pass populates caches and allocators.
        f(&mut bencher);
        bencher.samples.clear();
        let budget = Instant::now();
        loop {
            f(&mut bencher);
            if bencher.samples.len() >= self.sample_size
                || budget.elapsed() >= self.measurement_time
            {
                break;
            }
        }
        assert!(
            !bencher.samples.is_empty(),
            "bench function '{full_id}' must call Bencher::iter at least once"
        );
        let mut ns: Vec<f64> = bencher.samples.iter().map(|d| d.as_secs_f64() * 1e9).collect();
        ns.sort_by(|a, b| a.total_cmp(b));
        let samples = ns.len();
        let mean_ns = ns.iter().sum::<f64>() / samples as f64;
        let median_ns = if samples % 2 == 1 {
            ns[samples / 2]
        } else {
            (ns[samples / 2 - 1] + ns[samples / 2]) / 2.0
        };
        let stats = SampleStats {
            id: full_id,
            samples,
            mean_ns,
            median_ns,
            min_ns: ns[0],
            max_ns: ns[samples - 1],
        };
        println!("{:<40} {:>12} (n={})", stats.id, format_ns(stats.median_ns), stats.samples);
        self.criterion.results.push(stats);
    }

    /// Ends the group (kept for API parity; recording happens eagerly).
    pub fn finish(self) {}
}

/// Times individual iterations inside one `bench_function` call.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once, timed; the routine records one sample per call.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_requested_samples() {
        let mut c = Criterion::new();
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(5).measurement_time(Duration::from_secs(1));
            g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            g.finish();
        }
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].samples, 5);
        assert!(c.results[0].min_ns <= c.results[0].median_ns);
        assert!(c.results[0].median_ns <= c.results[0].max_ns);
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let stats = SampleStats {
            id: "g/f".to_owned(),
            samples: 3,
            mean_ns: 10.0,
            median_ns: 9.0,
            min_ns: 8.0,
            max_ns: 13.0,
        };
        let json = results_to_json(&[stats]);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"id\": \"g/f\""));
        assert!(!json.contains("},\n]"), "no trailing comma");
    }
}
