//! Ablation B: greedy concurrency enlargement of the inserted signal
//! (step 4 of the algorithm) on vs. off.

fn main() {
    println!("Ablation B — concurrency enlargement\n");
    for model in
        [stg::benchmarks::vme_read(), stg::benchmarks::pulser(), stg::benchmarks::sequencer(4)]
    {
        println!("{}", model.name());
        println!("  {:>9} {:>9} {:>9} {:>9}", "enlarge", "signals", "literals", "cpu[s]");
        for (enlarge, signals, literals, cpu) in bench::concurrency_enlargement_comparison(&model) {
            println!(
                "  {:>9} {signals:>9} {literals:>9} {cpu:>9.3}",
                if enlarge { "on" } else { "off" }
            );
        }
    }
}
