//! Regenerates Table 2: region-based method vs. the excitation-region
//! (ASSASSIN-style) baseline — area in literals and CPU seconds.

fn main() {
    println!(
        "Table 2 — area (literals) and CPU: excitation-region baseline vs. region-based method\n"
    );
    let rows = bench::table2_rows();
    println!("{}", bench::render_table2(&rows));
}
