//! Ablation A: frontier width (FW) vs. solution quality and runtime.

fn main() {
    println!("Ablation A — frontier width sweep\n");
    for model in
        [stg::benchmarks::vme_read(), stg::benchmarks::sequencer(4), stg::benchmarks::counter(2)]
    {
        println!("{}", model.name());
        println!("  {:>4} {:>9} {:>9} {:>9}", "FW", "signals", "literals", "cpu[s]");
        for (fw, signals, literals, cpu) in bench::frontier_width_sweep(&model, &[1, 2, 4, 8, 16]) {
            println!("  {fw:>4} {signals:>9} {literals:>9} {cpu:>9.3}");
        }
    }
}
