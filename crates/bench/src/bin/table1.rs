//! Regenerates Table 1: "Results for STGs with a large number of states".

fn main() {
    println!("Table 1 — STGs with a large number of states (symbolic counts, explicit solve where feasible)\n");
    let rows = bench::table1_rows();
    println!("{}", bench::render_table1(&rows));
}
