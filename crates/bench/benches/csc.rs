//! CSC solver pipeline bench: per-family solve times plus the parallel
//! candidate-evaluation scaling of the staged `SolverContext`.
//!
//! Run with `cargo bench -p bench --bench csc`; set `BENCH_OUT=BENCH_csc.json`
//! to record the machine-readable baseline tracked at the repository root.
//!
//! The `csc/solver` group times `solve_state_graph` (re-synthesis disabled,
//! state graph pre-built) over the sequencer / counter / parallel-handshake
//! families.  The `csc/jobs` group re-times the largest model at several
//! `SolverConfig::jobs` values; the harness asserts the solutions are
//! byte-identical across thread counts before recording, and attaches the
//! host's available parallelism so single-core baselines (where `jobs > 1`
//! can only add scheduling overhead) are interpretable.

use bench::harness::{black_box, warn_if_single_core_jobs, Criterion};
use csc::{solve_state_graph, CscSolution, SolverConfig};
use std::time::Duration;
use stg::benchmarks;

fn solve_config(jobs: usize) -> SolverConfig {
    // Re-synthesis and area estimation are separate pipelines with their own
    // benches; this harness isolates the solver.
    SolverConfig { resynthesize: false, jobs, ..SolverConfig::default() }
}

fn assert_identical(name: &str, a: &CscSolution, b: &CscSolution) {
    assert_eq!(a.inserted_signals, b.inserted_signals, "{name}: inserted signals differ");
    assert_eq!(a.graph.codes, b.graph.codes, "{name}: state codes differ");
    assert_eq!(
        a.graph.ts.transitions(),
        b.graph.ts.transitions(),
        "{name}: transition systems differ"
    );
}

fn solver_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("csc/solver");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let models = [
        ("seq6", benchmarks::sequencer(6)),
        ("seq10", benchmarks::sequencer(10)),
        ("counter3", benchmarks::counter(3)),
        ("counter4", benchmarks::counter(4)),
        ("par_hs4", benchmarks::parallel_handshakes(4)),
        ("par_hs6", benchmarks::parallel_handshakes(6)),
    ];
    let config = solve_config(1);
    for (name, model) in models {
        let sg = model.state_graph(2_000_000).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| black_box(solve_state_graph(&sg, &config).unwrap().inserted_signals.len()))
        });
        // One untimed pass records the shape/pipeline columns next to the
        // timing row.
        let solution = solve_state_graph(&sg, &config).unwrap();
        group.attach_metrics(&[
            ("initial_states", solution.stats.initial_states as f64),
            ("final_states", solution.stats.final_states as f64),
            ("initial_conflicts", solution.stats.initial_conflicts as f64),
            ("signals_inserted", solution.inserted_signals.len() as f64),
            ("candidates_evaluated", solution.stats.stage.candidates_evaluated as f64),
            ("candidates_pruned", solution.stats.stage.candidates_pruned as f64),
        ]);
    }
    group.finish();
}

fn parallel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("csc/jobs");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    // The largest solver workload of the suite: the search stage dominates
    // (thousands of candidate evaluations per insertion).
    let model = benchmarks::sequencer(16);
    let sg = model.state_graph(2_000_000).unwrap();
    let reference = solve_state_graph(&sg, &solve_config(1)).unwrap();
    let hardware = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    for jobs in [1usize, 2, 4] {
        let config = solve_config(jobs);
        // Single-core hosts (like the recorded-baseline container) cannot
        // show a speedup on these rows; flag them loudly.
        warn_if_single_core_jobs(jobs);
        // Parallel evaluation must not change the answer: proven here on the
        // bench model itself, every time the baseline is recorded.
        assert_identical("seq16", &reference, &solve_state_graph(&sg, &config).unwrap());
        group.bench_function(format!("seq16/jobs{jobs}"), |b| {
            b.iter(|| black_box(solve_state_graph(&sg, &config).unwrap().inserted_signals.len()))
        });
        group.attach_metrics(&[
            ("jobs", jobs as f64),
            ("hardware_threads", hardware as f64),
            ("signals_inserted", reference.inserted_signals.len() as f64),
        ]);
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::new();
    solver_families(&mut c);
    parallel_scaling(&mut c);
    c.finish();
}
