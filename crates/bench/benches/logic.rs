//! Logic back-end bench: explicit vs symbolic derivation on solved graphs,
//! plus the fully symbolic STG pipeline at widths the explicit path cannot
//! reach.
//!
//! Run with `cargo bench -p bench --bench logic`; set
//! `BENCH_OUT=BENCH_logic.json` to record the machine-readable baseline
//! tracked at the repository root.
//!
//! The `logic/derive` group times `derive_next_state_functions_with` under
//! both strategies over solved sequencer / counter / parallel-handshake
//! graphs, attaching literal/cube counts so quality regressions show up
//! next to timing regressions (the symbolic engine must never need more
//! literals).  The `logic/symbolic` group times the STG-driven pipeline
//! (`derive_next_state_functions_stg`) on state spaces with up to `4^40`
//! states and 80 signals — no explicit enumeration happens at all there;
//! the explicit engine cannot represent those workloads (u64 codes, per-
//! state loops), which is the point of the baseline.

use bench::harness::{black_box, Criterion};
use csc::{solve_stg, SolverConfig};
use logic::{derive_next_state_functions_stg, derive_next_state_functions_with, LogicStrategy};
use std::time::Duration;
use stg::benchmarks;

fn derive_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("logic/derive");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let config = SolverConfig { resynthesize: false, ..SolverConfig::default() };
    let models = [
        ("seq10", benchmarks::sequencer(10)),
        ("counter4", benchmarks::counter(4)),
        ("par_hs6", benchmarks::parallel_handshakes(6)),
    ];
    for (name, model) in models {
        let solution = solve_stg(&model, &config).unwrap();
        let graph = solution.graph;
        for strategy in [LogicStrategy::Explicit, LogicStrategy::Symbolic] {
            group.bench_function(format!("{name}/{strategy}"), |b| {
                b.iter(|| {
                    black_box(
                        derive_next_state_functions_with(&graph, strategy)
                            .unwrap()
                            .total_literals(),
                    )
                })
            });
            let funcs = derive_next_state_functions_with(&graph, strategy).unwrap();
            group.attach_metrics(&[
                ("literals", funcs.total_literals() as f64),
                ("cubes", funcs.total_cubes() as f64),
                ("bdd_nodes", funcs.bdd_nodes as f64),
                ("signals", graph.num_signals() as f64),
            ]);
        }
        // The quality invariant is asserted every time the baseline is
        // recorded, not just in the test suite.
        let explicit = derive_next_state_functions_with(&graph, LogicStrategy::Explicit).unwrap();
        let symbolic = derive_next_state_functions_with(&graph, LogicStrategy::Symbolic).unwrap();
        assert!(
            symbolic.total_literals() <= explicit.total_literals(),
            "{name}: symbolic regressed to {} literals (explicit {})",
            symbolic.total_literals(),
            explicit.total_literals()
        );
    }
    group.finish();
}

fn symbolic_stg_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("logic/symbolic");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    // Widths far beyond the explicit path: par_hs16 has 4^16 ≈ 4.3·10⁹
    // states, par_hs40 has 80 signals (> the u64 code width) and 4^40
    // states.
    for n in [16usize, 24, 40] {
        let model = benchmarks::parallel_handshakes(n);
        group.bench_function(format!("par_hs{n}"), |b| {
            b.iter(|| {
                black_box(
                    derive_next_state_functions_stg(&model, 0, None).unwrap().total_literals(),
                )
            })
        });
        let funcs = derive_next_state_functions_stg(&model, 0, None).unwrap();
        assert_eq!(funcs.total_literals(), n, "par_hs{n}: every ack is one req literal");
        group.attach_metrics(&[
            ("literals", funcs.total_literals() as f64),
            ("cubes", funcs.total_cubes() as f64),
            ("bdd_nodes", funcs.bdd_nodes as f64),
            ("signals", (2 * n) as f64),
        ]);
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::new();
    derive_strategies(&mut c);
    symbolic_stg_scale(&mut c);
    c.finish();
}
