//! Gate-level back-end bench: cover → gate synthesis, `.eqn` emission and
//! re-parsing, and the symbolic closed-loop circuit verification.
//!
//! Run with `cargo bench -p bench --bench netlist`; set
//! `BENCH_OUT=BENCH_netlist.json` to record the machine-readable baseline
//! tracked at the repository root.
//!
//! The `netlist/synthesize` group times `netlist::synthesize` on encoded
//! (CSC-solved) models, attaching gate/C-element/literal counts so quality
//! regressions show up next to timing regressions.  The `netlist/roundtrip`
//! group times `.eqn` emission plus re-parsing plus the BDD-canonical
//! equivalence check — the full serialization oracle.  The
//! `netlist/verify` group times the closed-loop checker (circuit
//! transition model vs STG reachable space) and asserts the verdict every
//! time the baseline is recorded.

use bench::harness::{black_box, Criterion};
use csc::{solve_stg_symbolic, SolverConfig};
use logic::derive_next_state_functions_stg;
use std::time::Duration;
use stg::benchmarks;
use stg::ReachabilityConfig;

/// The bench corpus: encoded (conflict-free) STGs with their derived
/// covers and synthesized circuits.
fn prepared() -> Vec<(String, stg::Stg, logic::NextStateFunctions, netlist::Netlist)> {
    let config = SolverConfig::default();
    let mut out = Vec::new();
    for model in [
        benchmarks::vme_read(),
        benchmarks::counter(4),
        benchmarks::pipeline_4ph(3),
        benchmarks::mixed_handshake(),
    ] {
        let solved = solve_stg_symbolic(&model, &config).expect("bench models solve").stg;
        let functions = derive_next_state_functions_stg(&solved, 0, None).expect("covers derive");
        let circuit = netlist::synthesize(&solved, &functions).expect("synthesis succeeds");
        out.push((model.name().to_owned(), solved, functions, circuit));
    }
    for model in [benchmarks::pipeline_2ph(8), benchmarks::parallel_handshakes(6)] {
        let functions = derive_next_state_functions_stg(&model, 0, None).expect("covers derive");
        let circuit = netlist::synthesize(&model, &functions).expect("synthesis succeeds");
        out.push((model.name().to_owned(), model, functions, circuit));
    }
    out
}

fn synthesize(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist/synthesize");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    for (name, stg, functions, circuit) in prepared() {
        group.bench_function(&name, |b| {
            b.iter(|| black_box(netlist::synthesize(&stg, &functions).unwrap().literals()))
        });
        group.attach_metrics(&[
            ("gates", circuit.gates.len() as f64),
            ("c_elements", circuit.c_elements() as f64),
            ("literals", circuit.literals() as f64),
        ]);
    }
    group.finish();
}

fn roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist/roundtrip");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    for (name, _, _, circuit) in prepared() {
        group.bench_function(&name, |b| {
            b.iter(|| {
                let eqn = circuit.to_eqn();
                let reparsed = netlist::parse_eqn(&eqn).unwrap();
                black_box(netlist::equivalent(&circuit, &reparsed).unwrap())
            })
        });
        // Recording the baseline re-proves the oracle on every model.
        let reparsed = netlist::parse_eqn(&circuit.to_eqn()).unwrap();
        assert!(netlist::equivalent(&circuit, &reparsed).unwrap(), "{name}: round-trip");
        group.attach_metrics(&[("eqn_bytes", circuit.to_eqn().len() as f64)]);
    }
    group.finish();
}

fn verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist/verify");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let config = ReachabilityConfig::default();
    for (name, stg, _, circuit) in prepared() {
        group.bench_function(&name, |b| {
            b.iter(|| {
                let verification = netlist::verify(&stg, &circuit, 0, &config).unwrap();
                black_box(verification.states_f64)
            })
        });
        let verification = netlist::verify(&stg, &circuit, 0, &config).unwrap();
        assert!(verification.passed(), "{name}: the encoded bench models must verify");
        group.attach_metrics(&[("states", verification.states_f64)]);
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::new();
    synthesize(&mut c);
    roundtrip(&mut c);
    verify(&mut c);
    c.finish();
}
