//! Ablation C: explicit vs. BDD-symbolic reachability on the same models.
//!
//! Run with `cargo bench -p bench --bench symbolic`; set
//! `BENCH_OUT=BENCH_symbolic.json` to record a machine-readable baseline.
//! Each `symbolic_only` entry also records node-count and cache columns
//! from [`bdd::BddManager::stats`] (via the reachability result), so the
//! baseline tracks memory behaviour alongside wall-clock time.

use bench::harness::{black_box, Criterion};
use std::time::Duration;

fn explicit_vs_symbolic(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_c/reachability");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [4usize, 6] {
        let model = stg::benchmarks::parallel_handshakes(n);
        group.bench_function(format!("explicit/par_hs{n}"), |b| {
            b.iter(|| black_box(model.state_graph(2_000_000).unwrap().num_states()))
        });
        group.bench_function(format!("symbolic/par_hs{n}"), |b| {
            b.iter(|| black_box(model.symbolic_state_space(None).state_count()))
        });
    }
    group.finish();
}

fn symbolic_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_c/symbolic_only");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [12usize, 16, 24] {
        let model = stg::benchmarks::parallel_handshakes(n);
        group.bench_function(format!("par_hs{n}"), |b| {
            b.iter(|| black_box(model.symbolic_state_space(None).state_count_f64()))
        });
        // One untimed pass records the space/memory columns next to the
        // timing row.
        let space = model.symbolic_state_space(None);
        let stats = space.manager_stats();
        group.attach_metrics(&[
            ("reachable_bdd_nodes", space.bdd_size() as f64),
            ("manager_nodes", stats.num_nodes as f64),
            ("peak_nodes", stats.peak_nodes as f64),
            ("cache_hits", stats.cache_hits as f64),
            ("cache_misses", stats.cache_misses as f64),
        ]);
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::new();
    explicit_vs_symbolic(&mut c);
    symbolic_scaling(&mut c);
    c.finish();
}
