//! Ablation C: explicit vs. BDD-symbolic reachability on the same models.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn explicit_vs_symbolic(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_c/reachability");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [4usize, 6] {
        let model = stg::benchmarks::parallel_handshakes(n);
        group.bench_function(format!("explicit/par_hs{n}"), |b| {
            b.iter(|| criterion::black_box(model.state_graph(2_000_000).unwrap().num_states()))
        });
        group.bench_function(format!("symbolic/par_hs{n}"), |b| {
            b.iter(|| criterion::black_box(model.symbolic_state_space(None).state_count()))
        });
    }
    group.finish();
}

criterion_group!(benches, explicit_vs_symbolic);
criterion_main!(benches);
