//! Symbolic CSC solver bench: end-to-end state-signal insertion on BDDs,
//! from the Table 2 models up to a conflicted design beyond the explicit
//! solver's 64-signal representation limit.
//!
//! Run with `cargo bench -p bench --bench csc_symbolic`; set
//! `BENCH_OUT=BENCH_csc_symbolic.json` to record the machine-readable
//! baseline tracked at the repository root.
//!
//! The `csc_symbolic/solver` group times [`csc::solve_stg_symbolic`] on
//! conflicted models the explicit solver also handles, attaching the
//! inserted-signal counts of *both* solvers so the baseline documents the
//! quality parity (symbolic never inserts more on these rows).  The
//! `csc_symbolic/wide` group times the `wide_conflict` family — a CSC
//! conflict embedded in a wide product of handshakes — whose ≥64-signal
//! row cannot be attempted by the explicit pipeline at all.

use bench::harness::{black_box, Criterion};
use csc::{solve_stg, solve_stg_symbolic, SolverConfig};
use std::time::Duration;
use stg::benchmarks;

fn solver_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("csc_symbolic/solver");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let models = [
        ("pulser", benchmarks::pulser()),
        ("vme_read", benchmarks::vme_read()),
        ("master_read_like", benchmarks::master_read_like()),
        ("seq8", benchmarks::sequencer(8)),
        ("counter2", benchmarks::counter(2)),
        ("pulser_bank2", benchmarks::pulser_bank(2)),
    ];
    let config = SolverConfig::default();
    for (name, model) in models {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(solve_stg_symbolic(&model, &config).unwrap().inserted_signals.len())
            })
        });
        // One untimed pass of each solver records the quality columns next
        // to the timing row; the symbolic count must never exceed the
        // explicit one on these tracked models.
        let symbolic = solve_stg_symbolic(&model, &config).unwrap();
        let explicit = solve_stg(&model, &config).unwrap();
        assert!(
            symbolic.inserted_signals.len() <= explicit.inserted_signals.len(),
            "{name}: symbolic {} > explicit {}",
            symbolic.inserted_signals.len(),
            explicit.inserted_signals.len()
        );
        group.attach_metrics(&[
            ("signals_inserted", symbolic.inserted_signals.len() as f64),
            ("signals_explicit", explicit.inserted_signals.len() as f64),
            ("final_states", symbolic.stats.final_states as f64),
            ("candidates_evaluated", symbolic.stats.stage.candidates_evaluated as f64),
        ]);
    }
    group.finish();
}

fn wide_designs(c: &mut Criterion) {
    let mut group = c.benchmark_group("csc_symbolic/wide");
    // One sample per row: each solve runs several reachability analyses of
    // a huge product space, and the measurement is dominated by those, not
    // by sampling noise.
    group.sample_size(1).measurement_time(Duration::from_millis(1));
    let config = SolverConfig::default();
    // `BENCH_WIDE_MAX` caps the family for smoke runs (the 66-signal row
    // alone costs a few minutes of reachability analyses).
    let wide_max: usize =
        std::env::var("BENCH_WIDE_MAX").ok().and_then(|v| v.parse().ok()).unwrap_or(32);
    for n in [8usize, 16, 32].into_iter().filter(|&n| n <= wide_max) {
        let model = benchmarks::wide_conflict(n);
        let signals = model.num_signals();
        // The timed closure keeps its last solution so the metrics pass
        // below never re-solves (each wide solve costs minutes of
        // reachability analyses on the 66-signal row).
        let last = std::cell::RefCell::new(None);
        group.bench_function(format!("wide_conflict{n}"), |b| {
            b.iter(|| {
                let solution = solve_stg_symbolic(&model, &config).unwrap();
                let inserted = solution.inserted_signals.len();
                *last.borrow_mut() = Some(solution);
                black_box(inserted)
            })
        });
        let solution = last.borrow_mut().take().expect("the bench ran at least once");
        assert!(!solution.stg.symbolic_csc_violation(0), "wide_conflict{n}: CSC must hold");
        let explicit_possible = signals <= 64;
        group.attach_metrics(&[
            ("signals", signals as f64),
            ("signals_inserted", solution.inserted_signals.len() as f64),
            // 6 · 4^n reachable states — far beyond explicit enumeration.
            ("states", 6.0 * 4f64.powi(n as i32)),
            ("explicit_possible", f64::from(u8::from(explicit_possible))),
        ]);
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::new();
    solver_families(&mut c);
    wide_designs(&mut c);
    c.finish();
}
