//! Benchmark behind Table 1: symbolic reachability and explicit CSC solving
//! on the state-explosion workloads.

use bench::harness::{black_box, Criterion};
use std::time::Duration;

fn symbolic_state_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/symbolic");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [8usize, 12, 16] {
        let model = stg::benchmarks::parallel_handshakes(n);
        group.bench_function(format!("par_hs{n}"), |b| {
            b.iter(|| {
                let space = model.symbolic_state_space(None);
                black_box(space.state_count_f64())
            })
        });
    }
    group.finish();
}

fn explicit_csc_on_banks(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/explicit_solve");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    for n in [2usize, 3] {
        let model = stg::benchmarks::pulser_bank(n);
        group.bench_function(format!("pulser_bank{n}"), |b| {
            b.iter(|| {
                let solution =
                    csc::solve_stg(&model, &csc::SolverConfig::default()).expect("solvable");
                black_box(solution.inserted_signals.len())
            })
        });
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::new();
    symbolic_state_counts(&mut c);
    explicit_csc_on_banks(&mut c);
    c.finish();
}
