//! Robustness bench: the governed flow under deliberately tight budgets.
//!
//! Run with `cargo bench -p bench --bench robustness`; set
//! `BENCH_OUT=BENCH_robustness.json` to record the machine-readable
//! baseline tracked at the repository root.
//!
//! Each row times [`synthkit::run_flow`] with a resource budget chosen to
//! force part of the fallback ladder, then attaches the degradation
//! columns of one untimed pass: the rung the flow ended on, the number of
//! degradation events, and the BDD nodes and wall-clock milliseconds the
//! shared budget had absorbed when each stage was abandoned.  The headline
//! row is `wide_conflict32` — 66 signals, beyond the explicit
//! representation limit — under a node ceiling that trips reachability
//! almost immediately, so the flow must descend the whole ladder and
//! still terminate inside its deadline with a partial report.

use bench::harness::{black_box, Criterion};
use std::time::{Duration, Instant};
use stg::benchmarks;
use stg::Stg;
use synthkit::{run_flow, FlowOptions, FlowReport, FlowRung};

/// Extra wall-clock allowance on top of a configured deadline: one BDD
/// check interval plus bookkeeping between rungs (same contract as the
/// fuzz harness).
const DEADLINE_SLACK_MS: u64 = 2_000;

/// Numeric encoding of the rung a flow ended on, for the metrics column:
/// the ladder position, counted from the top.
fn rung_index(rung: FlowRung) -> f64 {
    match rung {
        FlowRung::Symbolic => 0.0,
        FlowRung::SymbolicRestricted => 1.0,
        FlowRung::Explicit => 2.0,
        FlowRung::PartialReport => 3.0,
    }
}

/// The degradation columns of one report: final rung, event count, CSC
/// outcome, and per-stage budget spend at each abandonment point.
fn degradation_metrics(report: &FlowReport) -> Vec<(String, f64)> {
    let mut metrics = vec![
        ("rung".to_string(), rung_index(report.rung)),
        ("degradations".to_string(), report.degradations.len() as f64),
        ("csc_satisfied".to_string(), report.csc_satisfied as u8 as f64),
        ("signals_inserted".to_string(), report.inserted_signals as f64),
    ];
    // Key the per-stage spend by the rung being abandoned: monotone
    // descent guarantees each rung appears at most once in the trail, so
    // the columns stay unique even when two rungs trip in the same stage.
    for event in &report.degradations {
        metrics.push((format!("nodes_leaving_{}", event.from), event.nodes_spent as f64));
        metrics.push((format!("ms_leaving_{}", event.from), event.elapsed_ms as f64));
    }
    metrics
}

/// One governed row: time the flow, then attach the degradation columns
/// of an untimed pass, asserting the run honours its own deadline.
fn governed_row(
    group: &mut bench::harness::BenchmarkGroup<'_>,
    name: &str,
    model: &Stg,
    options: &FlowOptions,
    expect_rung: FlowRung,
) {
    group.bench_function(name, |b| b.iter(|| black_box(run_flow(model, options).map(|r| r.rung))));
    let start = Instant::now();
    let report = run_flow(model, options)
        .unwrap_or_else(|e| panic!("{name}: governed flow returned an error: {e}"));
    let elapsed = start.elapsed().as_millis() as u64;
    if let Some(timeout) = options.timeout_ms {
        assert!(
            elapsed < timeout + DEADLINE_SLACK_MS,
            "{name}: flow overran its deadline ({elapsed} ms vs {timeout} ms)"
        );
    }
    assert_eq!(report.rung, expect_rung, "{name}: unexpected final rung");
    let metrics = degradation_metrics(&report);
    let borrowed: Vec<(&str, f64)> = metrics.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    group.attach_metrics(&borrowed);
}

fn degradation_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("robustness/degradation");
    // One sample per row: the interesting rows are budget-tripped flows
    // whose cost is dominated by the descent itself, not sampling noise.
    group.sample_size(1).measurement_time(Duration::from_millis(1));

    // The headline row: 66 signals, so the explicit rung is out of reach;
    // a tight node ceiling kills both symbolic rungs and the ladder must
    // bottom out in a diagnosis-only partial report — within the deadline.
    let wide = benchmarks::wide_conflict(32);
    let tight = FlowOptions {
        node_budget: Some(200_000),
        timeout_ms: Some(5_000),
        ..FlowOptions::default()
    };
    governed_row(&mut group, "wide_conflict32_tight", &wide, &tight, FlowRung::PartialReport);

    // A solvable descent: the same ceiling that kills the symbolic rungs
    // on a 5-signal model leaves the explicit rung free to finish the job.
    let pulser = benchmarks::pulser();
    let strangled = FlowOptions { node_budget: Some(64), ..FlowOptions::default() };
    governed_row(&mut group, "pulser_node64", &pulser, &strangled, FlowRung::Explicit);

    // The control row: the same model with a roomy budget never degrades,
    // so the columns document the zero-overhead baseline of governance.
    let roomy = FlowOptions { node_budget: Some(1 << 22), ..FlowOptions::default() };
    governed_row(&mut group, "pulser_roomy", &pulser, &roomy, FlowRung::Symbolic);

    group.finish();
}

fn main() {
    let mut c = Criterion::new();
    degradation_rows(&mut c);
    c.finish();
}
