//! Benchmark behind Table 2: full flow (solve + area estimate) with the
//! region-based method and the excitation-region baseline.

use bench::harness::{black_box, Criterion};
use std::time::Duration;
use synthkit::{run_flow, FlowOptions};

fn region_vs_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/flow");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    for (name, model) in [
        ("vme_read", stg::benchmarks::vme_read()),
        ("pulser", stg::benchmarks::pulser()),
        ("seq4", stg::benchmarks::sequencer(4)),
        ("master_read_like", stg::benchmarks::master_read_like()),
    ] {
        group.bench_function(format!("{name}/region"), |b| {
            b.iter(|| black_box(run_flow(&model, &FlowOptions::default()).unwrap()))
        });
        group.bench_function(format!("{name}/baseline"), |b| {
            b.iter(|| black_box(run_flow(&model, &FlowOptions::baseline()).ok()))
        });
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::new();
    region_vs_baseline(&mut c);
    c.finish();
}
