//! Petri-net synthesis from a transition system.
//!
//! Following the region-based synthesis method (Cortadella et al.,
//! ICCAD'95), every minimal pre-region becomes a place; an event consumes
//! from the regions it exits and produces into the regions it enters.  The
//! construction is exact — the reachability graph of the synthesized net is
//! isomorphic to the original transition system — when the system is
//! *excitation closed*: for every event, the intersection of its pre-regions
//! equals its excitation set.  The CSC solver uses this to hand back an STG
//! (rather than a flat state graph) after inserting state signals, which is
//! what lets the designer stay in the loop (paper §1).

use crate::crossing::{event_crossing, Crossing};
use crate::minimal::{minimal_pre_regions, RegionConfig};
use petri::{PetriError, PetriNet, PetriNetBuilder};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;
use ts::{EventId, StateSet, TransitionSystem};

/// A synthesized Petri net together with the region corresponding to each
/// place.
#[derive(Clone, Debug)]
pub struct SynthesizedNet {
    /// The synthesized net; transition names equal event names of the source
    /// transition system.
    pub net: PetriNet,
    /// For every place (by index), the region of source states it represents.
    pub place_regions: Vec<StateSet>,
}

/// Errors produced by net synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthesisError {
    /// The transition system is not excitation closed for the named events;
    /// an exact net would require label splitting, which is out of scope.
    NotExcitationClosed {
        /// Names of the offending events.
        events: Vec<String>,
    },
    /// The underlying net construction failed.
    Net(PetriError),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::NotExcitationClosed { events } => {
                write!(
                    f,
                    "transition system is not excitation closed for events: {}",
                    events.join(", ")
                )
            }
            SynthesisError::Net(e) => write!(f, "net construction failed: {e}"),
        }
    }
}

impl Error for SynthesisError {}

impl From<PetriError> for SynthesisError {
    fn from(value: PetriError) -> Self {
        SynthesisError::Net(value)
    }
}

/// Returns the events for which excitation closure fails: the intersection
/// of the event's minimal pre-regions is strictly larger than its excitation
/// set (or the event has occurrences but no pre-region at all).
pub fn excitation_closure_failures(ts: &TransitionSystem, config: &RegionConfig) -> Vec<EventId> {
    let mut failures = Vec::new();
    for e in 0..ts.num_events() {
        let e = EventId::from(e);
        let excitation = ts.excitation_set(e);
        if excitation.is_empty() {
            continue;
        }
        let pres = minimal_pre_regions(ts, e, config);
        if pres.is_empty() {
            failures.push(e);
            continue;
        }
        let mut intersection = pres[0].clone();
        for r in &pres[1..] {
            intersection.intersect_with(r);
        }
        if intersection != excitation {
            failures.push(e);
        }
    }
    failures
}

/// Synthesizes a safe Petri net whose reachability graph is isomorphic to
/// `ts` (one place per minimal pre-region).
///
/// # Errors
///
/// Returns [`SynthesisError::NotExcitationClosed`] if the transition system
/// is not excitation closed (an exact net would need label splitting), or a
/// [`SynthesisError::Net`] if the net construction itself fails.
pub fn synthesize_net(
    ts: &TransitionSystem,
    config: &RegionConfig,
) -> Result<SynthesizedNet, SynthesisError> {
    let failures = excitation_closure_failures(ts, config);
    if !failures.is_empty() {
        return Err(SynthesisError::NotExcitationClosed {
            events: failures.iter().map(|&e| ts.event_name(e).to_owned()).collect(),
        });
    }

    // Collect the candidate places: all minimal pre-regions of all events.
    let mut regions: Vec<StateSet> = Vec::new();
    let mut seen: HashSet<StateSet> = HashSet::new();
    for e in 0..ts.num_events() {
        for r in minimal_pre_regions(ts, EventId::from(e), config) {
            if seen.insert(r.clone()) {
                regions.push(r);
            }
        }
    }

    let mut builder = PetriNetBuilder::new();
    let initial = ts.initial();
    let place_ids: Vec<_> = regions
        .iter()
        .enumerate()
        .map(|(i, r)| builder.add_place(format!("r{i}"), u32::from(r.contains(initial))))
        .collect();
    let trans_ids: Vec<_> = (0..ts.num_events())
        .map(|e| builder.add_transition(ts.event_name(EventId::from(e))))
        .collect();

    for (region, &place) in regions.iter().zip(&place_ids) {
        for (e, &trans) in trans_ids.iter().enumerate() {
            match event_crossing(ts, region, EventId::from(e)) {
                Crossing::Exit => builder.add_arc_place_to_transition(place, trans),
                Crossing::Enter => builder.add_arc_transition_to_place(trans, place),
                Crossing::NotCrossing => {}
                Crossing::Violation => unreachable!("places are regions by construction"),
            }
        }
    }

    let net = builder.build()?;
    Ok(SynthesizedNet { net, place_regions: regions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts::traces::projected_trace_equivalent;
    use ts::{StateId, TransitionSystemBuilder};

    fn fig1_ts() -> TransitionSystem {
        let mut b = TransitionSystemBuilder::new();
        let s: Vec<StateId> = (1..=7).map(|i| b.add_state(format!("s{i}"))).collect();
        b.add_transition(s[0], "a", s[1]);
        b.add_transition(s[0], "b", s[2]);
        b.add_transition(s[1], "b", s[3]);
        b.add_transition(s[2], "a", s[3]);
        b.add_transition(s[3], "c", s[4]);
        b.add_transition(s[4], "a", s[5]);
        b.add_transition(s[4], "b", s[6]);
        b.build(s[0]).unwrap()
    }

    fn handshake() -> TransitionSystem {
        let mut b = TransitionSystemBuilder::new();
        let s: Vec<StateId> = (0..4).map(|i| b.add_state(format!("s{i}"))).collect();
        b.add_transition(s[0], "req+", s[1]);
        b.add_transition(s[1], "ack+", s[2]);
        b.add_transition(s[2], "req-", s[3]);
        b.add_transition(s[3], "ack-", s[0]);
        b.build(s[0]).unwrap()
    }

    #[test]
    fn handshake_synthesis_round_trips() {
        let ts = handshake();
        let config = RegionConfig::default();
        assert!(excitation_closure_failures(&ts, &config).is_empty());
        let synth = synthesize_net(&ts, &config).unwrap();
        assert_eq!(synth.net.num_transitions(), 4);
        let rg = synth.net.reachability_graph(100).unwrap();
        assert_eq!(rg.ts.num_states(), 4);
        assert!(projected_trace_equivalent(&ts, &rg.ts, &[]));
    }

    fn diamond_with_reset() -> TransitionSystem {
        let mut b = TransitionSystemBuilder::new();
        let s0 = b.add_state("s0");
        let sa = b.add_state("sa");
        let sb = b.add_state("sb");
        let s1 = b.add_state("s1");
        b.add_transition(s0, "a", sa);
        b.add_transition(s0, "b", sb);
        b.add_transition(sa, "b", s1);
        b.add_transition(sb, "a", s1);
        b.add_transition(s1, "r", s0);
        b.build(s0).unwrap()
    }

    #[test]
    fn diamond_synthesis_recovers_a_net_with_concurrency() {
        // a and b are concurrent; the synthesized net must reproduce the
        // diamond exactly (the system is excitation closed).
        let ts = diamond_with_reset();
        let config = RegionConfig::default();
        let synth = synthesize_net(&ts, &config).unwrap();
        assert_eq!(synth.net.num_transitions(), 3);
        assert!(synth.net.num_places() >= 3);
        let rg = synth.net.reachability_graph(1_000).unwrap();
        assert_eq!(rg.ts.num_states(), 4);
        assert!(projected_trace_equivalent(&ts, &rg.ts, &[]));
    }

    #[test]
    fn fig1_requires_label_splitting() {
        // In Fig. 1(a) the events a and b occur both in the initial diamond
        // and after c; a single-transition-per-label net cannot express this,
        // so excitation closure fails and synthesis reports it.
        let ts = fig1_ts();
        let config = RegionConfig::default();
        let failures = excitation_closure_failures(&ts, &config);
        assert!(!failures.is_empty());
        let err = synthesize_net(&ts, &config).unwrap_err();
        match err {
            SynthesisError::NotExcitationClosed { events } => {
                assert!(events.contains(&"a".to_string()) || events.contains(&"b".to_string()));
            }
            other => panic!("expected NotExcitationClosed, got {other}"),
        }
    }

    #[test]
    fn place_markings_match_the_initial_state() {
        let ts = diamond_with_reset();
        let config = RegionConfig::default();
        let synth = synthesize_net(&ts, &config).unwrap();
        for (i, region) in synth.place_regions.iter().enumerate() {
            let place = synth.net.place_id(&format!("r{i}")).unwrap();
            assert_eq!(synth.net.initial_marking().is_marked(place), region.contains(ts.initial()),);
        }
    }

    #[test]
    fn non_excitation_closed_systems_are_reported() {
        // A system where the same label occurs in two unrelated parts of the
        // state space typically breaks excitation closure: the intersection
        // of pre-regions is larger than the excitation set.
        let mut b = TransitionSystemBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let s2 = b.add_state("s2");
        let s3 = b.add_state("s3");
        b.add_transition(s0, "a", s1);
        b.add_transition(s1, "b", s2);
        b.add_transition(s2, "a", s3);
        b.add_transition(s3, "c", s0);
        let ts = b.build(s0).unwrap();
        let config = RegionConfig::default();
        let failures = excitation_closure_failures(&ts, &config);
        if failures.is_empty() {
            // If the heuristic region set is rich enough the system may be
            // synthesizable after all; then synthesis must succeed and round
            // trip.
            let synth = synthesize_net(&ts, &config).unwrap();
            let rg = synth.net.reachability_graph(100).unwrap();
            assert!(projected_trace_equivalent(&ts, &rg.ts, &[]));
        } else {
            assert!(matches!(
                synthesize_net(&ts, &config).unwrap_err(),
                SynthesisError::NotExcitationClosed { .. }
            ));
        }
    }

    #[test]
    fn error_display_lists_event_names() {
        let err = SynthesisError::NotExcitationClosed { events: vec!["x+".into(), "y-".into()] };
        let msg = err.to_string();
        assert!(msg.contains("x+"));
        assert!(msg.contains("y-"));
    }
}
