//! Generation of minimal pre-/post-regions by the expansion algorithm.
//!
//! The classical algorithm (Cortadella et al., *Synthesizing Petri nets from
//! state-based models*, ICCAD'95) starts from the excitation set of an event
//! and repeatedly repairs the region condition: whenever some event crosses
//! the candidate set non-uniformly there are at most three ways to legalise
//! it by *growing* the set — make the event non-crossing, make it an exit
//! event, or make it an entry event.  Exploring all branches and keeping the
//! set-minimal results yields all minimal pre-regions (respectively
//! post-regions) of the event.

use crate::crossing::{event_crossing, Crossing};
use std::collections::HashSet;
use ts::{EventId, StateSet, TransitionSystem};

/// Resource limits for region generation.
///
/// The expansion search is worst-case exponential; these limits bound the
/// work per seed.  The defaults are ample for the specification-sized
/// transition systems the CSC solver explores (the large benchmark state
/// graphs are only traversed with borders and bricks, never with full
/// minimal-region enumeration per state).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RegionConfig {
    /// Maximum number of candidate sets visited per seed before the search
    /// is truncated (the regions found so far are returned).
    pub max_visited_per_seed: usize,
    /// Maximum number of regions collected per seed.
    pub max_regions_per_seed: usize,
}

impl Default for RegionConfig {
    fn default() -> Self {
        RegionConfig { max_visited_per_seed: 20_000, max_regions_per_seed: 64 }
    }
}

/// The direction a seed event is required to have with respect to the
/// resulting region.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Forced {
    /// The event must exit the region (pre-region).
    Exit(EventId),
    /// The event must enter the region (post-region).
    Enter(EventId),
    /// No constraint.
    None,
}

/// All minimal pre-regions of `event`: minimal regions that `event` exits.
///
/// Every pre-region contains the excitation set of the event, so the search
/// is seeded with it.
pub fn minimal_pre_regions(
    ts: &TransitionSystem,
    event: EventId,
    config: &RegionConfig,
) -> Vec<StateSet> {
    let seed = ts.excitation_set(event);
    if seed.is_empty() {
        return Vec::new();
    }
    expand(ts, seed, Forced::Exit(event), config)
}

/// All minimal post-regions of `event`: minimal regions that `event` enters.
pub fn minimal_post_regions(
    ts: &TransitionSystem,
    event: EventId,
    config: &RegionConfig,
) -> Vec<StateSet> {
    let seed = ts.switching_set(event);
    if seed.is_empty() {
        return Vec::new();
    }
    expand(ts, seed, Forced::Enter(event), config)
}

/// The union of minimal pre- and post-regions of every event, deduplicated.
///
/// This is the region set used by `petrify` both for net synthesis and as
/// the starting "bricks" of the CSC heuristic search.  (Globally minimal
/// regions that are neither pre- nor post-region of any event correspond to
/// isolated places and are irrelevant for synthesis.)
pub fn minimal_regions(ts: &TransitionSystem, config: &RegionConfig) -> Vec<StateSet> {
    let mut seen: HashSet<StateSet> = HashSet::new();
    let mut result = Vec::new();
    for e in 0..ts.num_events() {
        let e = EventId::from(e);
        for r in minimal_pre_regions(ts, e, config)
            .into_iter()
            .chain(minimal_post_regions(ts, e, config))
        {
            if seen.insert(r.clone()) {
                result.push(r);
            }
        }
    }
    result
}

/// All minimal regions containing the given seed set (no constraint on how
/// any particular event crosses them).
///
/// Used by the CSC solver to turn an arbitrary candidate block into the
/// nearest enclosing speed-independence-preserving sets.
pub fn minimal_regions_containing(
    ts: &TransitionSystem,
    seed: &StateSet,
    config: &RegionConfig,
) -> Vec<StateSet> {
    if seed.is_empty() {
        return Vec::new();
    }
    expand(ts, seed.clone(), Forced::None, config)
}

/// Expands `seed` into all minimal regions satisfying the `forced`
/// direction.
fn expand(
    ts: &TransitionSystem,
    seed: StateSet,
    forced: Forced,
    config: &RegionConfig,
) -> Vec<StateSet> {
    let full = ts.num_states();
    let mut visited: HashSet<StateSet> = HashSet::new();
    let mut results: Vec<StateSet> = Vec::new();
    let mut stack: Vec<StateSet> = vec![seed];

    while let Some(set) = stack.pop() {
        if results.len() >= config.max_regions_per_seed
            || visited.len() >= config.max_visited_per_seed
        {
            break;
        }
        if set.len() == full || !visited.insert(set.clone()) {
            continue;
        }
        // Prune: a superset of an already-found region can never be minimal.
        if results.iter().any(|r| r.is_subset(&set)) {
            continue;
        }
        match first_violation(ts, &set, forced) {
            None => {
                results.push(set);
            }
            Some(event) => {
                for next in legalizations(ts, &set, event, forced) {
                    if next.len() < full && !visited.contains(&next) {
                        stack.push(next);
                    }
                }
            }
        }
    }

    minimize(results)
}

/// Returns an event whose crossing relation must be repaired, if any.
///
/// The forced event is checked first so that the direction requirement is
/// established as early as possible.
fn first_violation(ts: &TransitionSystem, set: &StateSet, forced: Forced) -> Option<EventId> {
    match forced {
        Forced::Exit(e) => {
            if event_crossing(ts, set, e) != Crossing::Exit {
                return Some(e);
            }
        }
        Forced::Enter(e) => {
            if event_crossing(ts, set, e) != Crossing::Enter {
                return Some(e);
            }
        }
        Forced::None => {}
    }
    (0..ts.num_events())
        .map(EventId::from)
        .find(|&e| event_crossing(ts, set, e) == Crossing::Violation)
}

/// The candidate supersets that legalise `event` with respect to `set`.
fn legalizations(
    ts: &TransitionSystem,
    set: &StateSet,
    event: EventId,
    forced: Forced,
) -> Vec<StateSet> {
    let mut options = Vec::new();
    let forced_dir = match forced {
        Forced::Exit(e) if e == event => Some(Crossing::Exit),
        Forced::Enter(e) if e == event => Some(Crossing::Enter),
        _ => None,
    };

    if forced_dir != Some(Crossing::Enter) {
        if let Some(exit_fix) = fix_as_exit(ts, set, event) {
            options.push(exit_fix);
        }
    }
    if forced_dir != Some(Crossing::Exit) {
        if let Some(enter_fix) = fix_as_enter(ts, set, event) {
            options.push(enter_fix);
        }
    }
    if forced_dir.is_none() {
        options.push(fix_as_non_crossing(ts, set, event));
    }
    options.retain(|candidate| candidate.len() > set.len());
    options
}

/// Grow `set` so that every transition of `event` exits it: add all sources.
/// Infeasible (returns `None`) if some target is already inside.
fn fix_as_exit(ts: &TransitionSystem, set: &StateSet, event: EventId) -> Option<StateSet> {
    let mut grown = set.clone();
    for &(source, target) in ts.transitions_of(event) {
        if set.contains(target) {
            return None;
        }
        grown.insert(source);
    }
    // Adding sources may have swallowed a target of another transition of
    // the same event; re-check.
    for &(_, target) in ts.transitions_of(event) {
        if grown.contains(target) {
            return None;
        }
    }
    Some(grown)
}

/// Grow `set` so that every transition of `event` enters it: add all targets.
/// Infeasible if some source is already inside.
fn fix_as_enter(ts: &TransitionSystem, set: &StateSet, event: EventId) -> Option<StateSet> {
    let mut grown = set.clone();
    for &(source, target) in ts.transitions_of(event) {
        if set.contains(source) {
            return None;
        }
        grown.insert(target);
    }
    for &(source, _) in ts.transitions_of(event) {
        if grown.contains(source) {
            return None;
        }
    }
    Some(grown)
}

/// Grow `set` until no transition of `event` crosses it: for every crossing
/// transition add the missing endpoint, iterating to a fixpoint.
fn fix_as_non_crossing(ts: &TransitionSystem, set: &StateSet, event: EventId) -> StateSet {
    let mut grown = set.clone();
    loop {
        let mut changed = false;
        for &(source, target) in ts.transitions_of(event) {
            match (grown.contains(source), grown.contains(target)) {
                (true, false) => {
                    grown.insert(target);
                    changed = true;
                }
                (false, true) => {
                    grown.insert(source);
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            return grown;
        }
    }
}

/// Keeps only the set-minimal elements.
fn minimize(mut sets: Vec<StateSet>) -> Vec<StateSet> {
    sets.sort_by_key(StateSet::len);
    let mut minimal: Vec<StateSet> = Vec::new();
    for candidate in sets {
        if !minimal.iter().any(|kept| kept.is_subset(&candidate)) {
            minimal.push(candidate);
        }
    }
    minimal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossing::is_region;
    use ts::{StateId, TransitionSystemBuilder};

    fn fig1_ts() -> TransitionSystem {
        let mut b = TransitionSystemBuilder::new();
        let s: Vec<StateId> = (1..=7).map(|i| b.add_state(format!("s{i}"))).collect();
        b.add_transition(s[0], "a", s[1]);
        b.add_transition(s[0], "b", s[2]);
        b.add_transition(s[1], "b", s[3]);
        b.add_transition(s[2], "a", s[3]);
        b.add_transition(s[3], "c", s[4]);
        b.add_transition(s[4], "a", s[5]);
        b.add_transition(s[4], "b", s[6]);
        b.build(s[0]).unwrap()
    }

    fn handshake() -> TransitionSystem {
        let mut b = TransitionSystemBuilder::new();
        let s: Vec<StateId> = (0..4).map(|i| b.add_state(format!("s{i}"))).collect();
        b.add_transition(s[0], "req+", s[1]);
        b.add_transition(s[1], "ack+", s[2]);
        b.add_transition(s[2], "req-", s[3]);
        b.add_transition(s[3], "ack-", s[0]);
        b.build(s[0]).unwrap()
    }

    #[test]
    fn handshake_minimal_regions_are_the_singletons() {
        let ts = handshake();
        let regions = minimal_regions(&ts, &RegionConfig::default());
        assert_eq!(regions.len(), 4);
        for r in &regions {
            assert_eq!(r.len(), 1);
            assert!(is_region(&ts, r));
        }
    }

    #[test]
    fn pre_regions_contain_the_excitation_set_and_are_exited() {
        let ts = fig1_ts();
        let config = RegionConfig::default();
        for e in 0..ts.num_events() {
            let e = EventId::from(e);
            let es = ts.excitation_set(e);
            for r in minimal_pre_regions(&ts, e, &config) {
                assert!(is_region(&ts, &r), "pre-region must be a region");
                assert!(es.is_subset(&r), "pre-region must contain the excitation set");
                assert_eq!(event_crossing(&ts, &r, e), Crossing::Exit);
            }
        }
    }

    #[test]
    fn post_regions_contain_the_switching_set_and_are_entered() {
        let ts = fig1_ts();
        let config = RegionConfig::default();
        for e in 0..ts.num_events() {
            let e = EventId::from(e);
            let sw = ts.switching_set(e);
            for r in minimal_post_regions(&ts, e, &config) {
                assert!(is_region(&ts, &r));
                assert!(sw.is_subset(&r));
                assert_eq!(event_crossing(&ts, &r, e), Crossing::Enter);
            }
        }
    }

    #[test]
    fn minimal_regions_are_pairwise_incomparable_per_event() {
        let ts = fig1_ts();
        let config = RegionConfig::default();
        for e in 0..ts.num_events() {
            let e = EventId::from(e);
            let pres = minimal_pre_regions(&ts, e, &config);
            for i in 0..pres.len() {
                for j in 0..pres.len() {
                    if i != j {
                        assert!(!pres[i].is_strict_subset(&pres[j]));
                    }
                }
            }
        }
    }

    #[test]
    fn fig1_pre_regions_reconstruct_the_net_places() {
        // Fig. 1(b) has places p1..p5; c consumes from two places, so c must
        // have at least two minimal pre-regions.
        let ts = fig1_ts();
        let config = RegionConfig::default();
        let c = ts.event_id("c").unwrap();
        let pres = minimal_pre_regions(&ts, c, &config);
        assert!(pres.len() >= 2, "c has two input places in the paper's net, got {pres:?}");
        // a and b each have pre-regions too.
        for name in ["a", "b"] {
            let e = ts.event_id(name).unwrap();
            assert!(!minimal_pre_regions(&ts, e, &config).is_empty());
        }
    }

    #[test]
    fn diamond_concurrent_events_have_disjoint_pre_regions() {
        let mut b = TransitionSystemBuilder::new();
        let s0 = b.add_state("s0");
        let sa = b.add_state("sa");
        let sb = b.add_state("sb");
        let s1 = b.add_state("s1");
        b.add_transition(s0, "a", sa);
        b.add_transition(s0, "b", sb);
        b.add_transition(sa, "b", s1);
        b.add_transition(sb, "a", s1);
        b.add_transition(s1, "r", s0);
        let ts = b.build(s0).unwrap();
        let config = RegionConfig::default();
        let a = ts.event_id("a").unwrap();
        let b_ev = ts.event_id("b").unwrap();
        let pre_a = minimal_pre_regions(&ts, a, &config);
        let pre_b = minimal_pre_regions(&ts, b_ev, &config);
        assert!(!pre_a.is_empty());
        assert!(!pre_b.is_empty());
        // a's pre-region {s0, sb} and b's pre-region {s0, sa} intersect in
        // {s0} but neither contains the other.
        for ra in &pre_a {
            for rb in &pre_b {
                assert!(!ra.is_strict_subset(rb));
                assert!(!rb.is_strict_subset(ra));
            }
        }
    }

    #[test]
    fn events_without_occurrences_yield_no_regions() {
        let mut b = TransitionSystemBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        b.add_transition(s0, "x", s1);
        b.add_event("phantom");
        let ts = b.build(s0).unwrap();
        let phantom = ts.event_id("phantom").unwrap();
        let config = RegionConfig::default();
        assert!(minimal_pre_regions(&ts, phantom, &config).is_empty());
        assert!(minimal_post_regions(&ts, phantom, &config).is_empty());
    }

    #[test]
    fn limits_truncate_but_do_not_panic() {
        let ts = fig1_ts();
        let tiny = RegionConfig { max_visited_per_seed: 2, max_regions_per_seed: 1 };
        for e in 0..ts.num_events() {
            let regions = minimal_pre_regions(&ts, EventId::from(e), &tiny);
            assert!(regions.len() <= 1);
        }
    }
}
