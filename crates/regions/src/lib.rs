//! Theory of regions for transition systems.
//!
//! A *region* of a transition system is a set of states `r` such that every
//! event crosses it uniformly: all transitions labelled with a given event
//! either enter `r`, or exit `r`, or do not cross its boundary at all
//! (paper §2.2).  Regions play the role of Petri-net places: a region that
//! an event exits corresponds to a place in the event's pre-set, a region an
//! event enters corresponds to a place in its post-set.
//!
//! The DAC'96 state-encoding method builds its insertion candidates from
//! *bricks*: minimal regions plus intersections of pre-/post-regions of the
//! same event.  This crate computes all of these:
//!
//! * [`crossing`] — the crossing relation of an event with respect to a set
//!   and the [`is_region`] predicate,
//! * [`minimal`] — generation of minimal pre-/post-regions by the classical
//!   expansion algorithm,
//! * [`bricks()`] — the brick set used by the CSC heuristic search,
//! * [`synthesis`] — Petri-net synthesis from a transition system
//!   (one place per minimal pre-region, plus the excitation-closure check).
//!
//! # Example
//!
//! ```
//! use ts::TransitionSystemBuilder;
//! use regions::{minimal_regions, RegionConfig, crossing::is_region};
//!
//! let mut b = TransitionSystemBuilder::new();
//! let s0 = b.add_state("s0");
//! let s1 = b.add_state("s1");
//! b.add_transition(s0, "up", s1);
//! b.add_transition(s1, "down", s0);
//! let ts = b.build(s0)?;
//!
//! let regions = minimal_regions(&ts, &RegionConfig::default());
//! assert!(regions.iter().all(|r| is_region(&ts, r)));
//! assert_eq!(regions.len(), 2); // {s0} and {s1}
//! # Ok::<(), ts::TsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bricks;
pub mod crossing;
pub mod minimal;
pub mod synthesis;

pub use bricks::{adjacent_bricks, bricks, Brick, BrickKind};
pub use crossing::{event_crossing, is_region, is_sip_set, Crossing};
pub use minimal::{
    minimal_post_regions, minimal_pre_regions, minimal_regions, minimal_regions_containing,
    RegionConfig,
};
pub use synthesis::{excitation_closure_failures, synthesize_net, SynthesisError, SynthesizedNet};
