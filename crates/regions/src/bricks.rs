//! Bricks: the building blocks of CSC insertion candidates.
//!
//! The DAC'96 paper constructs insertion blocks as unions of *bricks* rather
//! than unions of individual states: "nice sets of states can be built very
//! efficiently, from bricks (regions) rather than sand (states)" (§3).
//! The brick set consists of
//!
//! 1. all minimal pre-/post-regions of every event,
//! 2. all intersections of pre-regions of the same event and of post-regions
//!    of the same event (Property 3.1, P3), and
//! 3. the excitation regions of events that are persistent inside them
//!    (Property 3.1, P2 — this is the only kind of candidate the ASSASSIN
//!    baseline may use).

use crate::minimal::{minimal_post_regions, minimal_pre_regions, RegionConfig};
use ts::{EventId, SetDedup, StateSet, TransitionSystem};

/// Provenance of a brick, kept for cost-function diagnostics.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum BrickKind {
    /// A minimal pre- or post-region of some event.
    MinimalRegion,
    /// A non-trivial intersection of pre-regions of the given event.
    PreIntersection(EventId),
    /// A non-trivial intersection of post-regions of the given event.
    PostIntersection(EventId),
    /// An excitation region of the given event (persistent inside it).
    ExcitationRegion(EventId),
}

/// A candidate building block for insertion sets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Brick {
    /// The states of the brick.
    pub states: StateSet,
    /// Where the brick came from.
    pub kind: BrickKind,
}

/// Computes the brick set of a transition system.
///
/// Bricks are deduplicated by their state set (the first provenance wins)
/// and never include the empty set or the full state space.
pub fn bricks(ts: &TransitionSystem, config: &RegionConfig) -> Vec<Brick> {
    let mut seen = SetDedup::default();
    let mut result: Vec<Brick> = Vec::new();
    let full = ts.num_states();

    let push = |states: StateSet, kind: BrickKind, seen: &mut SetDedup, out: &mut Vec<Brick>| {
        if states.is_empty() || states.len() == full {
            return;
        }
        if seen.insert(&states) {
            out.push(Brick { states, kind });
        }
    };

    for e in 0..ts.num_events() {
        let e = EventId::from(e);
        let pres = minimal_pre_regions(ts, e, config);
        let posts = minimal_post_regions(ts, e, config);

        for r in &pres {
            push(r.clone(), BrickKind::MinimalRegion, &mut seen, &mut result);
        }
        for r in &posts {
            push(r.clone(), BrickKind::MinimalRegion, &mut seen, &mut result);
        }
        // Pairwise and cumulative intersections of same-event pre-regions.
        push_intersections(&pres, BrickKind::PreIntersection(e), &mut |s, k| {
            push(s, k, &mut seen, &mut result)
        });
        push_intersections(&posts, BrickKind::PostIntersection(e), &mut |s, k| {
            push(s, k, &mut seen, &mut result)
        });

        // Excitation regions of events persistent inside them (P2).
        for er in ts.excitation_regions(e) {
            if ts.is_persistent_in(e, &er) {
                push(er, BrickKind::ExcitationRegion(e), &mut seen, &mut result);
            }
        }
    }
    result
}

fn push_intersections(
    regions: &[StateSet],
    kind: BrickKind,
    push: &mut impl FnMut(StateSet, BrickKind),
) {
    if regions.len() < 2 {
        return;
    }
    // All pairwise intersections.
    for i in 0..regions.len() {
        for j in (i + 1)..regions.len() {
            push(regions[i].intersection(&regions[j]), kind);
        }
    }
    // The intersection of all of them (equals the excitation set when the
    // system is excitation closed).
    let mut all = regions[0].clone();
    for r in &regions[1..] {
        all.intersect_with(r);
    }
    push(all, kind);
}

/// Returns the bricks adjacent to `block`: bricks that share at least one
/// state with `block` or are connected to it by a single transition in
/// either direction.
pub fn adjacent_bricks<'a>(
    ts: &TransitionSystem,
    block: &StateSet,
    all: &'a [Brick],
) -> Vec<&'a Brick> {
    // Build the one-step neighbourhood of the block.
    let mut neighbourhood = block.clone();
    for s in block.iter() {
        for &(_, t) in ts.successors(s) {
            neighbourhood.insert(t);
        }
        for &(_, p) in ts.predecessors(s) {
            neighbourhood.insert(p);
        }
    }
    all.iter()
        .filter(|brick| !brick.states.is_subset(block) && brick.states.intersects(&neighbourhood))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossing::is_region;
    use ts::{StateId, TransitionSystemBuilder};

    fn fig1_ts() -> TransitionSystem {
        let mut b = TransitionSystemBuilder::new();
        let s: Vec<StateId> = (1..=7).map(|i| b.add_state(format!("s{i}"))).collect();
        b.add_transition(s[0], "a", s[1]);
        b.add_transition(s[0], "b", s[2]);
        b.add_transition(s[1], "b", s[3]);
        b.add_transition(s[2], "a", s[3]);
        b.add_transition(s[3], "c", s[4]);
        b.add_transition(s[4], "a", s[5]);
        b.add_transition(s[4], "b", s[6]);
        b.build(s[0]).unwrap()
    }

    #[test]
    fn bricks_are_nonempty_proper_subsets() {
        let ts = fig1_ts();
        let all = bricks(&ts, &RegionConfig::default());
        assert!(!all.is_empty());
        for brick in &all {
            assert!(!brick.states.is_empty());
            assert!(brick.states.len() < ts.num_states());
        }
    }

    #[test]
    fn bricks_are_deduplicated() {
        let ts = fig1_ts();
        let all = bricks(&ts, &RegionConfig::default());
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i].states, all[j].states, "duplicate brick state sets");
            }
        }
    }

    #[test]
    fn minimal_region_bricks_are_regions() {
        let ts = fig1_ts();
        let all = bricks(&ts, &RegionConfig::default());
        for brick in &all {
            if brick.kind == BrickKind::MinimalRegion {
                assert!(is_region(&ts, &brick.states));
            }
        }
    }

    #[test]
    fn intersection_bricks_exist_for_multi_preregion_events() {
        // c has several pre-regions in Fig. 1, so there must be at least one
        // pre-intersection brick (the excitation set of c).
        let ts = fig1_ts();
        let all = bricks(&ts, &RegionConfig::default());
        let c = ts.event_id("c").unwrap();
        let has_c_intersection = all.iter().any(|b| b.kind == BrickKind::PreIntersection(c));
        assert!(has_c_intersection);
        // The full intersection equals ER(c) = {s4} because Fig. 1 is
        // excitation closed.
        let er_c = ts.excitation_set(c);
        assert!(all.iter().any(|b| b.states == er_c));
    }

    #[test]
    fn adjacency_excludes_contained_bricks() {
        let ts = fig1_ts();
        let all = bricks(&ts, &RegionConfig::default());
        let block = all[0].states.clone();
        for brick in adjacent_bricks(&ts, &block, &all) {
            assert!(!brick.states.is_subset(&block));
        }
    }

    #[test]
    fn adjacency_of_a_singleton_touches_its_neighbours() {
        let ts = fig1_ts();
        let all = bricks(&ts, &RegionConfig::default());
        let s4 = ts.state_id("s4").unwrap();
        let block = StateSet::from_states(ts.num_states(), [s4]);
        let adj = adjacent_bricks(&ts, &block, &all);
        // s4's neighbourhood includes s2, s3 and s5, so any brick containing
        // one of those (and not contained in {s4}) must be reported.
        for brick in &all {
            let touches = !brick.states.is_disjoint(&StateSet::from_states(
                ts.num_states(),
                ["s2", "s3", "s5", "s4"].iter().map(|n| ts.state_id(n).unwrap()),
            ));
            if touches && !brick.states.is_subset(&block) {
                assert!(adj.iter().any(|b| b.states == brick.states));
            }
        }
    }
}
