//! Crossing relations, the region predicate and SIP-set checking.

use ts::{insert_event, EventId, InsertionStyle, StateSet, TransitionSystem};

/// How an event relates to a set of states (paper §2.2).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Crossing {
    /// Every transition of the event enters the set.
    Enter,
    /// Every transition of the event exits the set.
    Exit,
    /// No transition of the event crosses the boundary of the set.
    NotCrossing,
    /// Transitions of the event relate to the set in different ways, so the
    /// set is not a region with respect to this event.
    Violation,
}

/// Computes the crossing relation of `event` with respect to `set`.
///
/// Events with no transitions are reported as [`Crossing::NotCrossing`].
pub fn event_crossing(ts: &TransitionSystem, set: &StateSet, event: EventId) -> Crossing {
    let mut has_enter = false;
    let mut has_exit = false;
    let mut has_nocross = false;
    for &(source, target) in ts.transitions_of(event) {
        match (set.contains(source), set.contains(target)) {
            (false, true) => has_enter = true,
            (true, false) => has_exit = true,
            _ => has_nocross = true,
        }
    }
    match (has_enter, has_exit, has_nocross) {
        (true, false, false) => Crossing::Enter,
        (false, true, false) => Crossing::Exit,
        (false, false, _) => Crossing::NotCrossing,
        _ => Crossing::Violation,
    }
}

/// Returns `true` if `set` is a region of `ts`: every event crosses it
/// uniformly.
///
/// The empty set and the full state set are (trivial) regions.
pub fn is_region(ts: &TransitionSystem, set: &StateSet) -> bool {
    violating_event(ts, set).is_none()
}

/// Returns an event that violates the region condition on `set`, if any.
pub fn violating_event(ts: &TransitionSystem, set: &StateSet) -> Option<EventId> {
    (0..ts.num_events())
        .map(EventId::from)
        .find(|&e| event_crossing(ts, set, e) == Crossing::Violation)
}

/// Checks whether `set` is a *speed-independence-preserving* (SIP) insertion
/// set for `ts` (paper §3).
///
/// The check is performed directly against the definition: a dummy event is
/// inserted with `set` as its excitation region (using the scheme of Fig. 2)
/// and the result is verified to be deterministic, commutative, and to
/// preserve the persistency of every event that was persistent in the
/// original system.  This is exact but linear in the size of the system; the
/// heuristic search uses the structural sufficient conditions of
/// Property 3.1 (bricks) to avoid calling it on every candidate.
pub fn is_sip_set(ts: &TransitionSystem, set: &StateSet) -> bool {
    if set.is_empty() || set.len() == ts.num_states() {
        return false;
    }
    let Ok(outcome) = insert_event(ts, set, "__sip_probe__", InsertionStyle::Concurrent) else {
        return false;
    };
    let new_ts = &outcome.ts;
    if !new_ts.is_deterministic() || !new_ts.is_commutative() {
        return false;
    }
    for event in 0..ts.num_events() {
        let event = EventId::from(event);
        if ts.is_persistent(event) {
            // The inserted system shares event ids for pre-existing events.
            if !new_ts.is_persistent(event) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts::{StateId, TransitionSystemBuilder};

    fn fig1_ts() -> TransitionSystem {
        let mut b = TransitionSystemBuilder::new();
        let s: Vec<StateId> = (1..=7).map(|i| b.add_state(format!("s{i}"))).collect();
        b.add_transition(s[0], "a", s[1]);
        b.add_transition(s[0], "b", s[2]);
        b.add_transition(s[1], "b", s[3]);
        b.add_transition(s[2], "a", s[3]);
        b.add_transition(s[3], "c", s[4]);
        b.add_transition(s[4], "a", s[5]);
        b.add_transition(s[4], "b", s[6]);
        b.build(s[0]).unwrap()
    }

    fn named_set(ts: &TransitionSystem, names: &[&str]) -> StateSet {
        StateSet::from_states(ts.num_states(), names.iter().map(|n| ts.state_id(n).unwrap()))
    }

    #[test]
    fn fig1_has_the_expected_regions() {
        let ts = fig1_ts();
        // {s5} alone is NOT a region: the a-transition s5 -> s6 exits it
        // while the other a-transitions do not cross it.
        let s5 = named_set(&ts, &["s5"]);
        assert_eq!(event_crossing(&ts, &s5, ts.event_id("a").unwrap()), Crossing::Violation);
        assert!(!is_region(&ts, &s5));
        // {s5, s6, s7} (everything after c) is a region: c enters it, a and
        // b do not cross it.
        let tail = named_set(&ts, &["s5", "s6", "s7"]);
        assert_eq!(event_crossing(&ts, &tail, ts.event_id("c").unwrap()), Crossing::Enter);
        assert_eq!(event_crossing(&ts, &tail, ts.event_id("a").unwrap()), Crossing::NotCrossing);
        assert!(is_region(&ts, &tail));
        // The paper's r3: the set entered by every b-transition.  In our
        // numbering it is {s3, s4, s7}: all b-transitions enter it, all
        // c-transitions exit it, a does not cross it.
        let r3 = named_set(&ts, &["s3", "s4", "s7"]);
        assert_eq!(event_crossing(&ts, &r3, ts.event_id("b").unwrap()), Crossing::Enter);
        assert_eq!(event_crossing(&ts, &r3, ts.event_id("c").unwrap()), Crossing::Exit);
        assert_eq!(event_crossing(&ts, &r3, ts.event_id("a").unwrap()), Crossing::NotCrossing);
        assert!(is_region(&ts, &r3));
        // Its a-counterpart {s2, s4, s6} is also a region.
        let r_a = named_set(&ts, &["s2", "s4", "s6"]);
        assert!(is_region(&ts, &r_a));
        assert_eq!(event_crossing(&ts, &r_a, ts.event_id("a").unwrap()), Crossing::Enter);
    }

    #[test]
    fn pair_s2_s5_is_not_a_region() {
        // The paper's counterexample: one b-transition enters the set while
        // another does not.
        let ts = fig1_ts();
        let set = named_set(&ts, &["s2", "s6"]);
        assert!(!is_region(&ts, &set));
        assert!(violating_event(&ts, &set).is_some());
    }

    #[test]
    fn trivial_sets_are_regions() {
        let ts = fig1_ts();
        assert!(is_region(&ts, &StateSet::new(ts.num_states())));
        assert!(is_region(&ts, &StateSet::full(ts.num_states())));
    }

    #[test]
    fn crossing_of_absent_event_is_not_crossing() {
        let mut b = TransitionSystemBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        b.add_transition(s0, "x", s1);
        b.add_event("phantom");
        let ts = b.build(s0).unwrap();
        let phantom = ts.event_id("phantom").unwrap();
        let set = StateSet::from_states(ts.num_states(), [s0]);
        assert_eq!(event_crossing(&ts, &set, phantom), Crossing::NotCrossing);
    }

    #[test]
    fn regions_are_sip_sets() {
        // Property 3.1 (P1): a region of a deterministic commutative TS is a
        // SIP set.  Verify on a cyclic two-phase handshake.
        let mut b = TransitionSystemBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let s2 = b.add_state("s2");
        let s3 = b.add_state("s3");
        b.add_transition(s0, "req+", s1);
        b.add_transition(s1, "ack+", s2);
        b.add_transition(s2, "req-", s3);
        b.add_transition(s3, "ack-", s0);
        let ts = b.build(s0).unwrap();
        for pair in [[s1, s2], [s2, s3], [s0, s1]] {
            let set = StateSet::from_states(ts.num_states(), pair);
            assert!(is_region(&ts, &set), "{set:?} should be a region");
            assert!(is_sip_set(&ts, &set), "{set:?} should be SIP");
        }
    }

    #[test]
    fn non_sip_set_is_rejected() {
        // Splitting one branch of a concurrency diamond delays the other
        // event and breaks persistency.
        let mut b = TransitionSystemBuilder::new();
        let s0 = b.add_state("s0");
        let sa = b.add_state("sa");
        let sb = b.add_state("sb");
        let s1 = b.add_state("s1");
        b.add_transition(s0, "a", sa);
        b.add_transition(s0, "b", sb);
        b.add_transition(sa, "b", s1);
        b.add_transition(sb, "a", s1);
        b.add_transition(s1, "r", s0);
        let ts = b.build(s0).unwrap();
        // {sa} is an ER-like set but a is persistent and gets delayed: after
        // inserting x with ER {sa}, from s0 firing a leads to the pre-copy of
        // sa where b is no longer enabled — persistency of b is violated.
        let set = StateSet::from_states(ts.num_states(), [sa]);
        assert!(!is_sip_set(&ts, &set));
        // The whole diamond {sa, sb, s1} together with s0 is a trivial region
        // minus s0; check that a genuine region passes.
        let region = StateSet::from_states(ts.num_states(), [sa, s1]);
        if is_region(&ts, &region) {
            assert!(is_sip_set(&ts, &region));
        }
    }

    #[test]
    fn degenerate_sets_are_not_sip() {
        let ts = fig1_ts();
        assert!(!is_sip_set(&ts, &StateSet::new(ts.num_states())));
        assert!(!is_sip_set(&ts, &StateSet::full(ts.num_states())));
    }
}
