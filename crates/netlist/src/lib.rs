//! Gate-level back-end of the state-encoding toolkit.
//!
//! The synthesis flow ends in circuits, not covers: a solved, CSC-satisfying
//! specification is only correct if the *implemented gates* still realise the
//! specified behaviour without hazards.  This crate closes that loop:
//!
//! * [`synthesize`] turns the minimized next-state covers
//!   ([`logic::NextStateFunctions`]) into a [`Netlist`] of **complex gates**
//!   (one sum-of-products per combinational output) and **generalized
//!   C-elements** (a set cover and a reset cover driving a state-holding
//!   element) — the two implementation styles of the source paper.  A signal
//!   whose minimized cover depends on the signal itself needs state holding
//!   and becomes a C-element; the set/reset covers are split from the ON/OFF
//!   sets with interval ISOP so every don't-care code is absorbed.
//! * [`Netlist::to_eqn`] and [`Netlist::to_verilog`] emit the circuit as a
//!   line-based `.eqn` description (parseable back via [`parse_eqn`]) and as
//!   structural Verilog.
//! * [`verify`] replays the **emitted netlist** — not the covers it came
//!   from — against the source STG on the symbolic reachability engine:
//!   every gate's excitation (`set ∧ ¬q ∨ q ∧ ¬reset`) must coincide with
//!   the STG's enabled edges in every reachable state (projection trace
//!   equivalence), and no other transition may withdraw an excitation
//!   before the gate fires (speed independence).  Failures carry typed,
//!   witness-bearing diagnostics; resource ceilings surface as typed budget
//!   errors, never as a hang or a panic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eqn;
mod verify;

pub use eqn::{parse_eqn, EqnParseError};
pub use verify::{verify, NetlistDiagnostic, NetlistVerification};

use bdd::{Bdd, BddManager, VarId};
use logic::{Cover, Cube, Literal, NextStateFunctions};
use std::fmt;
use stg::{SignalId, Stg};

/// The implementation style of one gate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GateKind {
    /// A combinational complex gate: the output is the sum-of-products of
    /// `cover` over the signal values.
    Complex {
        /// The minimized ON-cover implemented by the gate.
        cover: Cover,
    },
    /// A generalized C-element: `set` drives the output to 1, `reset`
    /// drives it to 0, and the element holds its value when neither cover
    /// is active.
    CElement {
        /// The set (turn-on) cover.
        set: Cover,
        /// The reset (turn-off) cover.
        reset: Cover,
    },
}

/// One gate of the netlist: the implementation of a non-input signal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Gate {
    /// The signal this gate drives (index into the netlist's signal space).
    pub signal: SignalId,
    /// The driven signal's name.
    pub name: String,
    /// The implementation style and its cover(s).
    pub kind: GateKind,
}

impl Gate {
    /// Total literal count of the gate's cover(s).
    pub fn literals(&self) -> usize {
        match &self.kind {
            GateKind::Complex { cover } => cover.literal_count(),
            GateKind::CElement { set, reset } => set.literal_count() + reset.literal_count(),
        }
    }

    /// Whether the gate is a generalized C-element.
    pub fn is_c_element(&self) -> bool {
        matches!(self.kind, GateKind::CElement { .. })
    }
}

/// A gate-level implementation of a specification: one gate per non-input
/// signal, over a shared signal variable space.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Netlist {
    /// Model name (the STG's name).
    pub name: String,
    /// Names of all signals, indexed by cover variable.
    pub signal_names: Vec<String>,
    /// Variable indices of the input signals (driven by the environment).
    pub inputs: Vec<usize>,
    /// The gates, in signal order.
    pub gates: Vec<Gate>,
    /// Width of the cover variable space (= number of signals).
    pub num_variables: usize,
}

impl Netlist {
    /// Total literal count over all gates.
    pub fn literals(&self) -> usize {
        self.gates.iter().map(Gate::literals).sum()
    }

    /// Number of generalized C-elements.
    pub fn c_elements(&self) -> usize {
        self.gates.iter().filter(|g| g.is_c_element()).count()
    }

    /// The gate driving the named signal, if any.
    pub fn gate_of(&self, name: &str) -> Option<&Gate> {
        self.gates.iter().find(|g| g.name == name)
    }
}

/// Errors of netlist construction and verification.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// The functions' variable space does not match the specification's
    /// signal count.
    WidthMismatch {
        /// Signals of the specification.
        signals: usize,
        /// Variables of the next-state functions.
        variables: usize,
    },
    /// A netlist signal name does not appear in the specification (or vice
    /// versa), so the two cannot be compared or verified against each other.
    UnknownSignal {
        /// The offending signal name.
        name: String,
    },
    /// A non-input signal of the specification has no driving gate.
    MissingGate {
        /// The undriven signal.
        signal: String,
    },
    /// Symbolic reachability hit its iteration cap before converging.
    NotConverged {
        /// Image steps performed before giving up.
        iterations: usize,
    },
    /// A resource budget (node ceiling, step ceiling, deadline or
    /// cancellation) tripped during verification.
    Budget(bdd::BudgetExceeded),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::WidthMismatch { signals, variables } => write!(
                f,
                "next-state functions span {variables} variables but the specification has \
                 {signals} signals"
            ),
            NetlistError::UnknownSignal { name } => {
                write!(f, "signal '{name}' does not exist on both sides of the comparison")
            }
            NetlistError::MissingGate { signal } => {
                write!(f, "non-input signal '{signal}' has no driving gate")
            }
            NetlistError::NotConverged { iterations } => {
                write!(f, "symbolic reachability did not converge within {iterations} iterations")
            }
            NetlistError::Budget(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for NetlistError {}

impl From<bdd::BudgetExceeded> for NetlistError {
    fn from(value: bdd::BudgetExceeded) -> Self {
        NetlistError::Budget(value)
    }
}

/// Synthesizes a gate netlist from an STG and its derived next-state
/// functions.
///
/// # Errors
///
/// [`NetlistError::WidthMismatch`] when the functions were derived from a
/// different signal space than `stg`'s.
pub fn synthesize(stg: &Stg, functions: &NextStateFunctions) -> Result<Netlist, NetlistError> {
    let signals: Vec<(String, bool)> =
        stg.signals().iter().map(|s| (s.name.clone(), !s.kind.is_non_input())).collect();
    synthesize_named(stg.name(), &signals, functions)
}

/// [`synthesize`] from bare signal descriptors `(name, is_input)` — the
/// entry point for callers that hold an encoded state graph instead of an
/// STG.
///
/// # Errors
///
/// [`NetlistError::WidthMismatch`] when `functions.num_variables` differs
/// from `signals.len()`.
pub fn synthesize_named(
    name: &str,
    signals: &[(String, bool)],
    functions: &NextStateFunctions,
) -> Result<Netlist, NetlistError> {
    let n = signals.len();
    if functions.num_variables != n {
        return Err(NetlistError::WidthMismatch { signals: n, variables: functions.num_variables });
    }
    let identity: Vec<VarId> = (0..n).map(|i| i as VarId).collect();
    let mut gates = Vec::with_capacity(functions.functions.len());
    for function in &functions.functions {
        let mut m = BddManager::with_capacity(n.max(1), 1 << 10);
        let on = cover_bdd(&mut m, &function.on_set, &identity);
        let off = cover_bdd(&mut m, &function.off_set, &identity);
        let minimized = cover_bdd(&mut m, &function.minimized, &identity);
        let own = function.signal.index() as VarId;
        // A cover that feeds the gate's own output back describes a
        // state-holding element; split it into set/reset covers.  A cover
        // free of its own output is a plain combinational gate.
        let kind = if m.support(minimized).contains(&own) {
            let a = m.var(own);
            let not_a = m.not(a);
            let on_or_off = m.or(on, off);
            let dc = m.not(on_or_off);
            // Set must fire exactly on the rising excitations and may
            // extend into the don't-care codes (never into OFF); reset
            // mirrors it on the falling side.  This keeps `set ∧ reset`
            // empty on every reachable code by construction.
            let set_lower = m.and(on, not_a);
            let set_upper = m.or(on, dc);
            let set = m.isop(set_lower, set_upper);
            let reset_lower = m.and(off, a);
            let reset_upper = m.or(off, dc);
            let reset = m.isop(reset_lower, reset_upper);
            GateKind::CElement {
                set: isop_cover(&set.cubes, n),
                reset: isop_cover(&reset.cubes, n),
            }
        } else {
            GateKind::Complex { cover: function.minimized.clone() }
        };
        gates.push(Gate { signal: function.signal, name: function.name.clone(), kind });
    }
    let inputs = (0..n).filter(|&i| signals[i].1).collect();
    Ok(Netlist {
        name: name.to_owned(),
        signal_names: signals.iter().map(|(name, _)| name.clone()).collect(),
        inputs,
        gates,
        num_variables: n,
    })
}

/// Semantic comparison of two netlists: every gate present in either must
/// exist in both (matched by name), with the same implementation style and
/// canonically equal covers.  Variable spaces are matched by signal *name*,
/// so a parsed `.eqn` netlist compares against its source even though the
/// text reorders the variables.
///
/// # Errors
///
/// [`NetlistError::UnknownSignal`] when a cover mentions a signal the other
/// netlist does not declare.
pub fn equivalent(a: &Netlist, b: &Netlist) -> Result<bool, NetlistError> {
    if a.gates.len() != b.gates.len() {
        return Ok(false);
    }
    let n = a.num_variables;
    let mut m = BddManager::with_capacity(n.max(1), 1 << 12);
    let identity: Vec<VarId> = (0..n).map(|i| i as VarId).collect();
    // b-variable → a-variable translation, by name.
    let mut b_to_a = Vec::with_capacity(b.num_variables);
    for name in &b.signal_names {
        match a.signal_names.iter().position(|an| an == name) {
            Some(index) => b_to_a.push(index as VarId),
            None => return Err(NetlistError::UnknownSignal { name: name.clone() }),
        }
    }
    for gate in &a.gates {
        let Some(other) = b.gate_of(&gate.name) else {
            return Err(NetlistError::UnknownSignal { name: gate.name.clone() });
        };
        let same = match (&gate.kind, &other.kind) {
            (GateKind::Complex { cover: ca }, GateKind::Complex { cover: cb }) => {
                cover_bdd(&mut m, ca, &identity) == cover_bdd(&mut m, cb, &b_to_a)
            }
            (
                GateKind::CElement { set: sa, reset: ra },
                GateKind::CElement { set: sb, reset: rb },
            ) => {
                cover_bdd(&mut m, sa, &identity) == cover_bdd(&mut m, sb, &b_to_a)
                    && cover_bdd(&mut m, ra, &identity) == cover_bdd(&mut m, rb, &b_to_a)
            }
            _ => false,
        };
        if !same {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Builds the BDD of a cover, mapping cover variable `i` to manager
/// variable `var_of[i]`.
pub(crate) fn cover_bdd(m: &mut BddManager, cover: &Cover, var_of: &[VarId]) -> Bdd {
    let mut f = m.bottom();
    for cube in cover.cubes() {
        let lits: Vec<(VarId, bool)> = (0..cube.num_vars())
            .filter_map(|i| match cube.literal(i) {
                Literal::One => Some((var_of[i], true)),
                Literal::Zero => Some((var_of[i], false)),
                Literal::DontCare => None,
            })
            .collect();
        let c = m.cube_of(&lits);
        f = m.or(f, c);
    }
    f
}

/// Maps ISOP cubes (whose variables are already signal indices) to a
/// [`Cover`].
fn isop_cover(cubes: &[Vec<(VarId, bool)>], num_vars: usize) -> Cover {
    cubes
        .iter()
        .map(|lits| {
            let mapped: Vec<(usize, bool)> =
                lits.iter().map(|&(var, value)| (var as usize, value)).collect();
            Cube::from_literals(num_vars, &mapped)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::derive_next_state_functions_stg;

    #[test]
    fn handshake_acks_become_single_literal_complex_gates() {
        let model = stg::benchmarks::parallel_handshakes(2);
        let functions = derive_next_state_functions_stg(&model, 0, None).unwrap();
        let net = synthesize(&model, &functions).unwrap();
        assert_eq!(net.gates.len(), 2);
        assert_eq!(net.inputs.len(), 2);
        assert_eq!(net.c_elements(), 0, "ack = req needs no state holding");
        assert_eq!(net.literals(), 2);
        for gate in &net.gates {
            assert!(matches!(&gate.kind, GateKind::Complex { cover } if cover.len() == 1));
        }
    }

    #[test]
    fn solved_vme_read_yields_state_holding_gates() {
        let solution =
            csc::solve_stg_symbolic(&stg::benchmarks::vme_read(), &csc::SolverConfig::default())
                .unwrap();
        let functions = derive_next_state_functions_stg(&solution.stg, 0, None).unwrap();
        let net = synthesize(&solution.stg, &functions).unwrap();
        assert_eq!(net.gates.len(), functions.functions.len());
        assert!(net.c_elements() > 0, "the VME controller needs state-holding elements");
        // Set and reset covers never overlap on any code that is not a
        // don't-care: spot-check by BDD on each C-element.
        let n = net.num_variables;
        let identity: Vec<VarId> = (0..n).map(|i| i as VarId).collect();
        for gate in &net.gates {
            if let GateKind::CElement { set, reset } = &gate.kind {
                let mut m = BddManager::with_capacity(n, 1 << 10);
                let s = cover_bdd(&mut m, set, &identity);
                let r = cover_bdd(&mut m, reset, &identity);
                let function = functions.function_of(gate.signal).unwrap();
                let on = cover_bdd(&mut m, &function.on_set, &identity);
                let off = cover_bdd(&mut m, &function.off_set, &identity);
                // set ⊇ ON ∧ ¬a, set ∩ OFF = ∅; dually for reset.
                let a = m.var(gate.signal.index() as VarId);
                let rising = m.and_not(on, a);
                assert!(m.implies(rising, s), "{}: set misses a rising excitation", gate.name);
                assert!(m.and(s, off).is_false(), "{}: set fires in OFF", gate.name);
                let falling = m.and(off, a);
                assert!(m.implies(falling, r), "{}: reset misses a falling excitation", gate.name);
                assert!(m.and(r, on).is_false(), "{}: reset fires in ON", gate.name);
            }
        }
    }

    #[test]
    fn width_mismatch_is_typed() {
        let model = stg::benchmarks::handshake();
        let functions =
            derive_next_state_functions_stg(&stg::benchmarks::parallel_handshakes(2), 0, None)
                .unwrap();
        let err = synthesize(&model, &functions).unwrap_err();
        assert!(matches!(err, NetlistError::WidthMismatch { signals: 2, variables: 4 }), "{err}");
    }
}
