//! Closed-loop symbolic verification of an emitted netlist against its
//! source STG.
//!
//! The circuit transition model is one BDD cluster per gate output over the
//! *code* variables of the encoded symbolic state space: a gate's next
//! value is `set ∧ ¬q ∨ q ∧ ¬reset` (a complex gate is the degenerate case
//! `set = F`, `reset = ¬F`), so its rising excitation is `set ∧ ¬q` and its
//! falling excitation is `reset ∧ q`.  Verification then asks two
//! questions on the reachable (marking, code) pairs of the **specification**:
//!
//! * **Projection trace equivalence** — in every reachable state, the gate
//!   excitation must coincide with the STG's enabled edges of that signal.
//!   Comparing excitations state by state over the composed reachable
//!   space finds the *first* divergence between circuit and specification
//!   (the standard product-machine argument), so emptiness of the
//!   difference is both sound and complete for trace containment in either
//!   direction, projected on the STG's signals.
//! * **Speed independence** — no transition of *another* signal may
//!   withdraw a gate's excitation before the gate fires.  For each
//!   transition branch `u`, "the successor still excites `a`" is the
//!   cofactor of the excitation at `u`'s pinned literals
//!   ([`stg::TransitionBranch`]), so the check needs no next-state
//!   variables at all.
//!
//! Every check honours the budget carried by the [`ReachabilityConfig`]:
//! a tripped ceiling surfaces as [`NetlistError::Budget`], never as a hang.

use crate::{cover_bdd, GateKind, Netlist, NetlistError};
use bdd::{Bdd, BddManager, VarId};
use std::fmt;
use stg::{Polarity, ReachabilityConfig, Stg, StgError, TransitionLabel};

/// A typed, witness-carrying verification finding.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistDiagnostic {
    /// The circuit and the specification disagree on an excitation in a
    /// reachable state: the gate is excited where the STG enables no such
    /// edge, or an enabled edge finds its gate unexcited.
    TraceDivergence {
        /// The diverging signal.
        signal: String,
        /// The divergence direction: `true` for a rising excitation.
        rising: bool,
        /// Whether the *circuit* side is excited at the witness (the STG
        /// side is then the opposite).
        circuit_excited: bool,
        /// Witness code (binary, most significant signal first).
        code: String,
    },
    /// Another signal's transition withdraws a gate's excitation before the
    /// gate fires — the circuit is not speed-independent.
    HazardNotPersistent {
        /// The gate whose excitation is lost.
        signal: String,
        /// The transition whose firing withdraws it.
        disabled_by: String,
        /// Witness code of the state where both are enabled (binary, most
        /// significant signal first).
        code: String,
    },
}

impl fmt::Display for NetlistDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistDiagnostic::TraceDivergence { signal, rising, circuit_excited, code } => {
                let direction = if *rising { "rise" } else { "fall" };
                let side = if *circuit_excited { "circuit" } else { "specification" };
                write!(
                    f,
                    "netlist diverges from the STG on '{signal}' ({direction}): only the {side} \
                     is excited at code {code}"
                )
            }
            NetlistDiagnostic::HazardNotPersistent { signal, disabled_by, code } => write!(
                f,
                "netlist gate '{signal}' is not speed-independent: excitation withdrawn by \
                 {disabled_by} at code {code}"
            ),
        }
    }
}

/// The verdict of one closed-loop verification run.
#[derive(Clone, Debug)]
pub struct NetlistVerification {
    /// Reachable (marking, code) pairs of the composed model, as a float.
    pub states_f64: f64,
    /// Whether every reachable excitation of the circuit matches the STG.
    pub trace_equivalent: bool,
    /// Whether no gate excitation can be withdrawn by another signal.
    pub speed_independent: bool,
    /// Witness-carrying findings (empty exactly when both verdicts hold).
    pub diagnostics: Vec<NetlistDiagnostic>,
}

impl NetlistVerification {
    /// Whether the netlist passed both checks.
    pub fn passed(&self) -> bool {
        self.trace_equivalent && self.speed_independent
    }
}

/// Per-gate excitation BDDs over the current code variables.
struct GateExcitation {
    signal: usize,
    name: String,
    excite_up: Bdd,
    excite_down: Bdd,
}

/// Verifies an emitted netlist against its source STG; see the module docs
/// for the model.  `initial_code` seeds the encoded reachability exactly as
/// in [`logic::analyze_stg`].
///
/// Gates are matched to STG signals by *name*, so both a freshly
/// synthesized netlist and one re-read through [`crate::parse_eqn`] (whose
/// variable numbering differs) verify against the same specification.
///
/// # Errors
///
/// [`NetlistError::UnknownSignal`] / [`NetlistError::MissingGate`] when the
/// netlist and the STG describe different signal sets,
/// [`NetlistError::NotConverged`] and [`NetlistError::Budget`] from the
/// governed reachability analysis.
pub fn verify(
    stg: &Stg,
    netlist: &Netlist,
    initial_code: u64,
    config: &ReachabilityConfig,
) -> Result<NetlistVerification, NetlistError> {
    let mut config = config.clone();
    if config.stage.is_none() {
        config.stage = Some("netlist-verify");
    }
    let num_signals = stg.num_signals();
    if netlist.num_variables != num_signals {
        return Err(NetlistError::WidthMismatch {
            signals: num_signals,
            variables: netlist.num_variables,
        });
    }
    // Netlist variable → STG signal index, by name.
    let stg_index_of = |name: &str| (0..num_signals).find(|&s| stg.signal(s.into()).name == name);
    let mut stg_of_var = Vec::with_capacity(netlist.num_variables);
    for name in &netlist.signal_names {
        match stg_index_of(name) {
            Some(s) => stg_of_var.push(s),
            None => return Err(NetlistError::UnknownSignal { name: name.clone() }),
        }
    }
    for signal in stg.non_input_signals() {
        let name = &stg.signal(signal).name;
        if netlist.gate_of(name).is_none() {
            return Err(NetlistError::MissingGate { signal: name.clone() });
        }
    }

    let mut space =
        stg.try_symbolic_encoded_state_space(initial_code, &config).map_err(reach_error)?;
    let states_f64 = space.state_count_f64();
    let num_places = space.num_places();
    let place_vars: Vec<VarId> = (0..num_places).map(|p| space.current_var_of_place(p)).collect();
    let signal_vars: Vec<VarId> =
        (0..num_signals).map(|s| space.current_var_of_signal(s)).collect();
    // Netlist variable → manager variable (through the STG signal index).
    let var_of: Vec<VarId> = stg_of_var.iter().map(|&s| signal_vars[s]).collect();
    let reachable = space.reachable();
    let branches = space.transition_branches(stg);
    let m = space.manager_mut();

    // One excitation cluster per gate: next(q) = set ∧ ¬q ∨ q ∧ ¬reset.
    let mut gates = Vec::with_capacity(netlist.gates.len());
    for gate in &netlist.gates {
        m.check_budget()?;
        let stg_signal = stg_of_var[gate.signal.index()];
        let q = m.var(signal_vars[stg_signal]);
        let (set, reset) = match &gate.kind {
            GateKind::Complex { cover } => {
                let f = cover_bdd(m, cover, &var_of);
                (f, m.not(f))
            }
            GateKind::CElement { set, reset } => {
                (cover_bdd(m, set, &var_of), cover_bdd(m, reset, &var_of))
            }
        };
        let excite_up = m.and_not(set, q);
        let excite_down = m.and(reset, q);
        gates.push(GateExcitation {
            signal: stg_signal,
            name: gate.name.clone(),
            excite_up,
            excite_down,
        });
    }

    let mut diagnostics = Vec::new();

    // Projection trace equivalence: per gate, compare the circuit
    // excitations against the STG's enabled edges on the reachable set.
    let mut trace_equivalent = true;
    for gate in &gates {
        m.check_budget()?;
        let signal = stg::SignalId::from(gate.signal);
        let a = m.var(signal_vars[gate.signal]);
        let mut rise = m.bottom();
        let mut fall = m.bottom();
        let mut toggle = m.bottom();
        for t in stg.transitions_of_signal(signal) {
            let polarity = match stg.label(t) {
                TransitionLabel::Edge { polarity, .. } => polarity,
                TransitionLabel::Dummy => continue,
            };
            let lits: Vec<(VarId, bool)> =
                stg.net().preset(t).iter().map(|p| (place_vars[p.index()], true)).collect();
            let cube = m.cube_of(&lits);
            let bucket = match polarity {
                Polarity::Rise => &mut rise,
                Polarity::Fall => &mut fall,
                Polarity::Toggle => &mut toggle,
            };
            *bucket = m.or(*bucket, cube);
        }
        let not_a = m.not(a);
        let toggle_up = m.and(toggle, not_a);
        let toggle_down = m.and(toggle, a);
        let stg_up = m.or(rise, toggle_up);
        let stg_down = m.or(fall, toggle_down);
        for (stg_side, circuit_side, rising) in
            [(stg_up, gate.excite_up, true), (stg_down, gate.excite_down, false)]
        {
            let differ = m.xor(stg_side, circuit_side);
            let witness = m.and(reachable, differ);
            if !witness.is_false() {
                trace_equivalent = false;
                let circuit_excited = !m.and(witness, circuit_side).is_false();
                diagnostics.push(NetlistDiagnostic::TraceDivergence {
                    signal: gate.name.clone(),
                    rising,
                    circuit_excited,
                    code: witness_code(m, witness, &signal_vars),
                });
                break; // one divergence per gate is enough of a witness
            }
        }
    }

    // Speed independence: for every gate `a` and every branch `u` of a
    // *different* signal, firing `u` from a reachable state must not
    // withdraw `a`'s excitation.  Dummy branches change no code variable
    // and cannot affect a gate excitation, so they are skipped.
    let mut speed_independent = true;
    'gates: for gate in &gates {
        m.check_budget()?;
        for branch in &branches {
            let label = stg.label(branch.trans);
            match label {
                TransitionLabel::Edge { signal, .. } if signal.index() == gate.signal => continue,
                TransitionLabel::Dummy => continue,
                TransitionLabel::Edge { .. } => {}
            }
            let enabled = m.cube_of(&branch.enabled);
            for excite in [gate.excite_up, gate.excite_down] {
                let successor = restrict_literals(m, excite, &branch.pinned);
                let withdrawn = m.and_not(excite, successor);
                let co_enabled = m.and(withdrawn, enabled);
                let witness = m.and(reachable, co_enabled);
                if !witness.is_false() {
                    speed_independent = false;
                    diagnostics.push(NetlistDiagnostic::HazardNotPersistent {
                        signal: gate.name.clone(),
                        disabled_by: stg.net().transition_name(branch.trans).to_owned(),
                        code: witness_code(m, witness, &signal_vars),
                    });
                    continue 'gates; // one hazard per gate
                }
            }
        }
    }
    m.check_budget()?;

    Ok(NetlistVerification { states_f64, trace_equivalent, speed_independent, diagnostics })
}

/// Cofactors `f` at every pinned literal — "the value of `f` after firing
/// the branch".
fn restrict_literals(m: &mut BddManager, f: Bdd, pinned: &[(VarId, bool)]) -> Bdd {
    pinned.iter().fold(f, |acc, &(var, value)| m.restrict(acc, var, value))
}

/// Renders a witness state's code (most significant signal first;
/// unconstrained signals read as 0).
fn witness_code(m: &BddManager, witness: Bdd, signal_vars: &[VarId]) -> String {
    let mut bits = vec![false; signal_vars.len()];
    if let Some(lits) = m.one_sat(witness) {
        for (var, value) in lits {
            if let Some(s) = signal_vars.iter().position(|&v| v == var) {
                bits[s] = value;
            }
        }
    }
    bits.iter().rev().map(|&b| if b { '1' } else { '0' }).collect()
}

/// Maps a reachability failure onto the netlist error space.
fn reach_error(e: StgError) -> NetlistError {
    match e {
        StgError::Budget(trip) => NetlistError::Budget(trip),
        StgError::NotConverged { iterations } => NetlistError::NotConverged { iterations },
        other => unreachable!("reachability cannot fail with {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_eqn, synthesize};
    use bdd::Budget;
    use logic::derive_next_state_functions_stg;

    fn verify_default(stg: &Stg, netlist: &Netlist, initial_code: u64) -> NetlistVerification {
        verify(stg, netlist, initial_code, &ReachabilityConfig::default()).unwrap()
    }

    #[test]
    fn clean_handshakes_verify_speed_independent_and_trace_equivalent() {
        let model = stg::benchmarks::parallel_handshakes(3);
        let functions = derive_next_state_functions_stg(&model, 0, None).unwrap();
        let net = synthesize(&model, &functions).unwrap();
        let verdict = verify_default(&model, &net, 0);
        assert!(verdict.passed(), "{:?}", verdict.diagnostics);
        assert_eq!(verdict.states_f64, 64.0);
    }

    #[test]
    fn solved_vme_read_netlist_closes_the_loop() {
        let solution =
            csc::solve_stg_symbolic(&stg::benchmarks::vme_read(), &csc::SolverConfig::default())
                .unwrap();
        let functions = derive_next_state_functions_stg(&solution.stg, 0, None).unwrap();
        let net = synthesize(&solution.stg, &functions).unwrap();
        let verdict = verify_default(&solution.stg, &net, 0);
        assert!(verdict.passed(), "{:?}", verdict.diagnostics);
        // The re-parsed `.eqn` verifies identically, even though the parser
        // renumbers the variables.
        let parsed = parse_eqn(&net.to_eqn()).unwrap();
        let verdict = verify_default(&solution.stg, &parsed, 0);
        assert!(verdict.passed(), "{:?}", verdict.diagnostics);
    }

    #[test]
    fn a_corrupted_cover_is_caught_as_trace_divergence() {
        let model = stg::benchmarks::parallel_handshakes(2);
        let functions = derive_next_state_functions_stg(&model, 0, None).unwrap();
        let mut net = synthesize(&model, &functions).unwrap();
        // Invert the first gate's cover: ack = !req instead of req.
        let gate = &mut net.gates[0];
        let GateKind::Complex { cover } = &gate.kind else { panic!("complex expected") };
        let mut lits: Vec<(usize, bool)> = Vec::new();
        for cube in cover.cubes() {
            for i in 0..cube.num_vars() {
                match cube.literal(i) {
                    logic::Literal::One => lits.push((i, false)),
                    logic::Literal::Zero => lits.push((i, true)),
                    logic::Literal::DontCare => {}
                }
            }
        }
        gate.kind = GateKind::Complex {
            cover: Cover::from_cubes(vec![logic::Cube::from_literals(net.num_variables, &lits)]),
        };
        let verdict = verify_default(&model, &net, 0);
        assert!(!verdict.trace_equivalent);
        assert!(verdict
            .diagnostics
            .iter()
            .any(|d| matches!(d, NetlistDiagnostic::TraceDivergence { .. })));
    }

    use logic::Cover;

    #[test]
    fn signal_set_mismatches_are_typed() {
        let model = stg::benchmarks::parallel_handshakes(2);
        let functions = derive_next_state_functions_stg(&model, 0, None).unwrap();
        let mut net = synthesize(&model, &functions).unwrap();
        net.signal_names[0] = "bogus".to_owned();
        let err = verify(&model, &net, 0, &ReachabilityConfig::default()).unwrap_err();
        assert!(matches!(err, NetlistError::UnknownSignal { .. }), "{err}");

        let mut net = synthesize(&model, &functions).unwrap();
        net.gates.remove(0);
        let err = verify(&model, &net, 0, &ReachabilityConfig::default()).unwrap_err();
        assert!(matches!(err, NetlistError::MissingGate { .. }), "{err}");
    }

    #[test]
    fn budget_trips_surface_as_typed_errors() {
        let model = stg::benchmarks::parallel_handshakes(6);
        let functions = derive_next_state_functions_stg(&model, 0, None).unwrap();
        let net = synthesize(&model, &functions).unwrap();
        let config = ReachabilityConfig::with_budget(Budget::new(Some(16), None, None));
        let err = verify(&model, &net, 0, &config).unwrap_err();
        assert!(matches!(err, NetlistError::Budget(_)), "{err}");
    }
}
