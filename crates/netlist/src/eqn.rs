//! Textual netlist formats: the line-based `.eqn` interchange format (with
//! a parser, so emitted circuits can be read back and compared) and a
//! structural Verilog writer.
//!
//! The `.eqn` grammar is deliberately small:
//!
//! ```text
//! # comment
//! .model <name>
//! .inputs <name> ...
//! .outputs <name> ...
//! <out> = <lit> & <lit> + <lit>;          # complex gate (sum of products)
//! <out> = C(<sop> ; <sop>);               # C-element:  C(set ; reset)
//! .end
//! ```
//!
//! A literal is `<name>` or `!<name>`; the empty cover prints as `0` and
//! the universal cover as `1`.

use crate::{Gate, GateKind, Netlist};
use logic::{Cover, Cube, Literal};
use std::fmt;
use stg::SignalId;

impl Netlist {
    /// Renders the netlist in the `.eqn` format; [`parse_eqn`] reads the
    /// result back losslessly (up to variable numbering, which the parser
    /// rebuilds from the declaration order).
    pub fn to_eqn(&self) -> String {
        let mut out = String::new();
        out.push_str("# generalized C-elements are written q = C(set ; reset)\n");
        out.push_str(&format!(".model {}\n", self.name));
        let input_names: Vec<&str> =
            self.inputs.iter().map(|&i| self.signal_names[i].as_str()).collect();
        out.push_str(&format!(".inputs {}\n", input_names.join(" ")));
        let output_names: Vec<&str> = self.gates.iter().map(|g| g.name.as_str()).collect();
        out.push_str(&format!(".outputs {}\n", output_names.join(" ")));
        for gate in &self.gates {
            match &gate.kind {
                GateKind::Complex { cover } => {
                    out.push_str(&format!("{} = {};\n", gate.name, self.render_sop(cover)));
                }
                GateKind::CElement { set, reset } => {
                    out.push_str(&format!(
                        "{} = C({} ; {});\n",
                        gate.name,
                        self.render_sop(set),
                        self.render_sop(reset)
                    ));
                }
            }
        }
        out.push_str(".end\n");
        out
    }

    /// Renders a cover as a sum of products over the netlist's signal names.
    fn render_sop(&self, cover: &Cover) -> String {
        if cover.is_empty() {
            return "0".to_owned();
        }
        let products: Vec<String> = cover
            .cubes()
            .iter()
            .map(|cube| {
                let lits: Vec<String> = (0..cube.num_vars())
                    .filter_map(|i| match cube.literal(i) {
                        Literal::One => Some(self.signal_names[i].clone()),
                        Literal::Zero => Some(format!("!{}", self.signal_names[i])),
                        Literal::DontCare => None,
                    })
                    .collect();
                if lits.is_empty() {
                    "1".to_owned()
                } else {
                    lits.join(" & ")
                }
            })
            .collect();
        products.join(" + ")
    }

    /// Renders the netlist as structural Verilog: one continuous assignment
    /// per complex gate, one `gc_element` instance (set/reset/q) per
    /// generalized C-element, and — when any C-element exists — the
    /// behavioural `gc_element` primitive module appended after the design.
    pub fn to_verilog(&self) -> String {
        let id = |name: &str| sanitize_identifier(name);
        let mut out = String::new();
        out.push_str(&format!("// {}: synthesized speed-independent control circuit\n", self.name));
        let mut ports: Vec<String> = self
            .inputs
            .iter()
            .map(|&i| format!("input wire {}", id(&self.signal_names[i])))
            .collect();
        ports.extend(self.gates.iter().map(|g| format!("output wire {}", id(&g.name))));
        out.push_str(&format!("module {} (\n  {}\n);\n", id(&self.name), ports.join(",\n  ")));
        for gate in &self.gates {
            match &gate.kind {
                GateKind::Complex { cover } => {
                    out.push_str(&format!(
                        "  assign {} = {};\n",
                        id(&gate.name),
                        self.render_verilog_sop(cover)
                    ));
                }
                GateKind::CElement { set, reset } => {
                    let g = id(&gate.name);
                    out.push_str(&format!("  wire {g}_set = {};\n", self.render_verilog_sop(set)));
                    out.push_str(&format!(
                        "  wire {g}_reset = {};\n",
                        self.render_verilog_sop(reset)
                    ));
                    out.push_str(&format!(
                        "  gc_element u_{g} (.set({g}_set), .reset({g}_reset), .q({g}));\n"
                    ));
                }
            }
        }
        out.push_str("endmodule\n");
        if self.c_elements() > 0 {
            out.push_str(
                "\n// Generalized C-element: set wins over hold, reset over set being idle.\n\
                 module gc_element (\n  input wire set,\n  input wire reset,\n  output reg q\n);\n\
                 \x20 initial q = 1'b0;\n\
                 \x20 always @(set or reset) begin\n\
                 \x20   if (set) q = 1'b1;\n\
                 \x20   else if (reset) q = 1'b0;\n\
                 \x20 end\nendmodule\n",
            );
        }
        out
    }

    /// Renders a cover with Verilog operators (`~`, `&`, `|`).
    fn render_verilog_sop(&self, cover: &Cover) -> String {
        if cover.is_empty() {
            return "1'b0".to_owned();
        }
        let products: Vec<String> = cover
            .cubes()
            .iter()
            .map(|cube| {
                let lits: Vec<String> = (0..cube.num_vars())
                    .filter_map(|i| match cube.literal(i) {
                        Literal::One => Some(sanitize_identifier(&self.signal_names[i])),
                        Literal::Zero => {
                            Some(format!("~{}", sanitize_identifier(&self.signal_names[i])))
                        }
                        Literal::DontCare => None,
                    })
                    .collect();
                if lits.is_empty() {
                    "1'b1".to_owned()
                } else {
                    format!("({})", lits.join(" & "))
                }
            })
            .collect();
        products.join(" | ")
    }
}

/// Maps a signal name onto a legal Verilog identifier: every character
/// outside `[A-Za-z0-9_]` becomes `_`, and a leading digit gains a `_`
/// prefix.
fn sanitize_identifier(name: &str) -> String {
    let mut out: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// A typed `.eqn` parse failure, carrying the offending line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EqnParseError {
    /// 1-based line of the failure.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for EqnParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eqn parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for EqnParseError {}

/// Parses a `.eqn` netlist (the format [`Netlist::to_eqn`] emits).
///
/// Variables are numbered in declaration order — inputs first, then
/// outputs — which generally differs from the source netlist's numbering;
/// [`crate::equivalent`] compares covers by *name* and is therefore the
/// round-trip oracle.
///
/// # Errors
///
/// [`EqnParseError`] with the line and cause on any malformed input; the
/// parser never panics.
pub fn parse_eqn(text: &str) -> Result<Netlist, EqnParseError> {
    let mut name: Option<String> = None;
    let mut input_names: Vec<String> = Vec::new();
    let mut output_names: Vec<String> = Vec::new();
    let mut gate_lines: Vec<(usize, String)> = Vec::new();
    let mut ended = false;
    for (index, raw) in text.lines().enumerate() {
        let line_no = index + 1;
        let line = raw.trim();
        let fail = |message: &str| EqnParseError { line: line_no, message: message.to_owned() };
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if ended {
            return Err(fail("text after .end"));
        }
        if let Some(rest) = line.strip_prefix(".model") {
            name = Some(rest.trim().to_owned());
        } else if let Some(rest) = line.strip_prefix(".inputs") {
            input_names.extend(rest.split_whitespace().map(str::to_owned));
        } else if let Some(rest) = line.strip_prefix(".outputs") {
            output_names.extend(rest.split_whitespace().map(str::to_owned));
        } else if line == ".end" {
            ended = true;
        } else if line.starts_with('.') {
            return Err(fail("unknown directive"));
        } else {
            gate_lines.push((line_no, line.to_owned()));
        }
    }
    if !ended {
        return Err(EqnParseError { line: text.lines().count(), message: "missing .end".into() });
    }
    let name = name.ok_or(EqnParseError { line: 1, message: "missing .model".into() })?;

    let mut signal_names = input_names.clone();
    signal_names.extend(output_names.iter().cloned());
    let num_variables = signal_names.len();
    let var_of = |token: &str| signal_names.iter().position(|n| n == token);

    let mut gates = Vec::with_capacity(gate_lines.len());
    for (line_no, line) in gate_lines {
        let fail = |message: String| EqnParseError { line: line_no, message };
        let Some(body) = line.strip_suffix(';') else {
            return Err(fail("gate equation must end with ';'".into()));
        };
        let Some((lhs, rhs)) = body.split_once('=') else {
            return Err(fail("gate equation must contain '='".into()));
        };
        let out_name = lhs.trim();
        let Some(out_var) = var_of(out_name) else {
            return Err(fail(format!("undeclared output '{out_name}'")));
        };
        let rhs = rhs.trim();
        let kind = if let Some(inner) = rhs.strip_prefix("C(").and_then(|r| r.strip_suffix(')')) {
            let Some((set_text, reset_text)) = inner.split_once(';') else {
                return Err(fail("C-element needs 'C(set ; reset)'".into()));
            };
            GateKind::CElement {
                set: parse_sop(set_text, num_variables, &var_of)
                    .map_err(|m| fail(format!("set cover: {m}")))?,
                reset: parse_sop(reset_text, num_variables, &var_of)
                    .map_err(|m| fail(format!("reset cover: {m}")))?,
            }
        } else {
            GateKind::Complex { cover: parse_sop(rhs, num_variables, &var_of).map_err(fail)? }
        };
        gates.push(Gate { signal: SignalId::from(out_var), name: out_name.to_owned(), kind });
    }
    let inputs = (0..input_names.len()).collect();
    Ok(Netlist { name, signal_names, inputs, gates, num_variables })
}

/// Parses a sum-of-products expression onto a [`Cover`].
fn parse_sop(
    text: &str,
    num_variables: usize,
    var_of: &dyn Fn(&str) -> Option<usize>,
) -> Result<Cover, String> {
    let text = text.trim();
    if text == "0" {
        return Ok(Cover::empty());
    }
    let mut cover = Cover::empty();
    for product in text.split('+') {
        let product = product.trim();
        if product == "1" {
            cover.push(Cube::universe(num_variables));
            continue;
        }
        let mut literals: Vec<(usize, bool)> = Vec::new();
        for token in product.split('&') {
            let token = token.trim();
            let (name, value) = match token.strip_prefix('!') {
                Some(rest) => (rest.trim(), false),
                None => (token, true),
            };
            if name.is_empty() {
                return Err("empty literal".to_owned());
            }
            let Some(var) = var_of(name) else {
                return Err(format!("undeclared signal '{name}'"));
            };
            if literals.iter().any(|&(v, b)| v == var && b != value) {
                return Err(format!("contradictory literals on '{name}'"));
            }
            literals.push((var, value));
        }
        cover.push(Cube::from_literals(num_variables, &literals));
    }
    Ok(cover)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{equivalent, synthesize};
    use logic::derive_next_state_functions_stg;

    fn vme_netlist() -> Netlist {
        let solution =
            csc::solve_stg_symbolic(&stg::benchmarks::vme_read(), &csc::SolverConfig::default())
                .unwrap();
        let functions = derive_next_state_functions_stg(&solution.stg, 0, None).unwrap();
        synthesize(&solution.stg, &functions).unwrap()
    }

    #[test]
    fn eqn_round_trips_through_the_parser() {
        let net = vme_netlist();
        let text = net.to_eqn();
        assert!(text.contains(".model"), "{text}");
        assert!(text.contains(".end"), "{text}");
        let parsed = parse_eqn(&text).unwrap();
        assert_eq!(parsed.name, net.name);
        assert_eq!(parsed.gates.len(), net.gates.len());
        assert!(equivalent(&net, &parsed).unwrap(), "parsed covers must match the source");
    }

    #[test]
    fn verilog_contains_every_gate_and_the_primitive() {
        let net = vme_netlist();
        let text = net.to_verilog();
        assert!(text.contains("module"), "{text}");
        for gate in &net.gates {
            assert!(text.contains(&gate.name), "missing {}", gate.name);
        }
        if net.c_elements() > 0 {
            assert!(text.contains("module gc_element"), "{text}");
        }
    }

    #[test]
    fn malformed_eqn_text_yields_typed_errors() {
        for (text, needle) in [
            ("garbage", "missing .end"),
            (".model x\n.end\nmore", "after .end"),
            (".model x\n.inputs a\n.outputs b\nb = a\n.end", "';'"),
            (".model x\n.inputs a\n.outputs b\nb = c;\n.end", "undeclared"),
            (".model x\n.inputs a\n.outputs b\nc = a;\n.end", "undeclared output"),
            (".model x\n.inputs a\n.outputs b\nb = C(a);\n.end", "C(set ; reset)"),
            (".model x\n.inputs a\n.outputs b\nb = a & !a;\n.end", "contradictory"),
            (".model x\n.frob\n.end", "unknown directive"),
            (".inputs a\n.end", "missing .model"),
        ] {
            let err = parse_eqn(text).unwrap_err();
            assert!(err.to_string().contains(needle), "{text:?}: {err}");
        }
    }

    #[test]
    fn constant_covers_render_and_parse() {
        let text = ".model consts\n.inputs a\n.outputs z y\nz = 0;\ny = 1;\n.end\n";
        let net = parse_eqn(text).unwrap();
        let z = net.gate_of("z").unwrap();
        let y = net.gate_of("y").unwrap();
        let GateKind::Complex { cover } = &z.kind else { panic!("complex") };
        assert!(cover.is_empty());
        let GateKind::Complex { cover } = &y.kind else { panic!("complex") };
        assert_eq!(cover.len(), 1);
        assert_eq!(cover.literal_count(), 0);
        // And the renderer emits the same constants back.
        let emitted = net.to_eqn();
        assert!(emitted.contains("z = 0;"), "{emitted}");
        assert!(emitted.contains("y = 1;"), "{emitted}");
    }

    #[test]
    fn identifier_sanitizer_handles_awkward_names() {
        assert_eq!(sanitize_identifier("req"), "req");
        assert_eq!(sanitize_identifier("d[0]"), "d_0_");
        assert_eq!(sanitize_identifier("2phase"), "_2phase");
        assert_eq!(sanitize_identifier(""), "_");
    }
}
