//! High-level facade over the state-encoding toolkit.
//!
//! This crate ties the individual libraries together the way the `petrify`
//! command-line tool does: read an STG, solve Complete State Coding with the
//! region-based method (or the excitation-region baseline), estimate the
//! implementation area, and report everything as text.  The [`rsynth`
//! binary](../rsynth/index.html) is a thin wrapper over [`run_flow`]; the
//! repository's examples and integration tests use the same entry points.
//!
//! # Example
//!
//! ```
//! use synthkit::{run_flow, FlowOptions};
//!
//! let report = run_flow(&stg::benchmarks::vme_read(), &FlowOptions::default())?;
//! assert!(report.csc_satisfied);
//! assert!(report.inserted_signals >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use csc::{
    conflict_pairs, solve_stg, CscError, CscSolution, EncodedGraph, SolverConfig, StageStats,
};
use logic::estimate_area;
use std::fmt;
use std::time::Instant;
use stg::Stg;

/// Options of the end-to-end flow.
#[derive(Clone, Debug)]
pub struct FlowOptions {
    /// Solver configuration (frontier width, candidate source, …).
    pub solver: SolverConfig,
    /// Whether to estimate the implementation area after solving.
    pub estimate_area: bool,
    /// Upper bound on explicit state-graph size.
    pub max_states: usize,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions { solver: SolverConfig::default(), estimate_area: true, max_states: 1_000_000 }
    }
}

impl FlowOptions {
    /// The ASSASSIN-style baseline flow (excitation-region candidates only).
    pub fn baseline() -> Self {
        FlowOptions { solver: SolverConfig::excitation_region_baseline(), ..Self::default() }
    }
}

/// Everything the flow measured for one model.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// Model name.
    pub name: String,
    /// Places of the input STG.
    pub places: usize,
    /// Transitions of the input STG.
    pub transitions: usize,
    /// Signals of the input STG.
    pub signals: usize,
    /// Reachable states of the input state graph.
    pub states: usize,
    /// CSC conflict pairs before solving.
    pub initial_conflicts: usize,
    /// Whether CSC holds on the final state graph.
    pub csc_satisfied: bool,
    /// Number of inserted state signals.
    pub inserted_signals: usize,
    /// States of the final state graph.
    pub final_states: usize,
    /// Estimated area in literals (`None` when not requested).
    pub literals: Option<usize>,
    /// Whether a Petri net / STG could be re-synthesized.
    pub resynthesized: bool,
    /// Wall-clock seconds of the whole flow.
    pub cpu_seconds: f64,
    /// Per-stage solver timings and candidate counters.
    pub stage: StageStats,
    /// Evaluation threads the solver used.
    pub jobs: usize,
}

impl fmt::Display for FlowReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "model       : {}", self.name)?;
        writeln!(
            f,
            "input       : {} places, {} transitions, {} signals, {} states",
            self.places, self.transitions, self.signals, self.states
        )?;
        writeln!(f, "conflicts   : {}", self.initial_conflicts)?;
        writeln!(
            f,
            "encoding    : {} state signal(s) inserted, {} states, CSC {}",
            self.inserted_signals,
            self.final_states,
            if self.csc_satisfied { "satisfied" } else { "NOT satisfied" }
        )?;
        if let Some(literals) = self.literals {
            writeln!(f, "area        : {literals} literals")?;
        }
        writeln!(
            f,
            "stg output  : {}",
            if self.resynthesized { "re-synthesized" } else { "state graph only" }
        )?;
        writeln!(f, "solver      : {} (jobs={})", self.stage, self.jobs)?;
        write!(f, "cpu         : {:.3} s", self.cpu_seconds)
    }
}

/// Renders the per-stage solver breakdown of a report as an aligned
/// two-column table (stage name, value); the `rsynth` CLI prints this
/// after every report.
pub fn render_stage_table(report: &FlowReport) -> String {
    let stage = &report.stage;
    let mut out = String::new();
    out.push_str(&format!("{:<22} {:>12}\n", "solver stage", "value"));
    for (label, ms) in [
        ("conflict maintenance", stage.conflict_ms),
        ("block search", stage.search_ms),
        ("partition derivation", stage.partition_ms),
        ("signal insertion", stage.insert_ms),
    ] {
        out.push_str(&format!("{label:<22} {ms:>9.2} ms\n"));
    }
    out.push_str(&format!("{:<22} {:>12}\n", "candidates evaluated", stage.candidates_evaluated));
    out.push_str(&format!("{:<22} {:>12}\n", "candidates pruned", stage.candidates_pruned));
    out.push_str(&format!("{:<22} {:>12}\n", "evaluation jobs", report.jobs));
    out
}

/// Runs the full flow (state graph → CSC resolution → area estimate) on one
/// STG.
///
/// # Errors
///
/// Propagates [`CscError`] from the solver; models whose CSC conflicts
/// cannot be solved without touching the environment are reported this way.
pub fn run_flow(model: &Stg, options: &FlowOptions) -> Result<FlowReport, CscError> {
    let start = Instant::now();
    let (places, transitions, signals) = model.stats();
    let sg = model.state_graph(options.max_states)?;
    let initial_graph = EncodedGraph::from_state_graph(&sg);
    let initial_conflicts = conflict_pairs(&initial_graph).len();

    let mut config = options.solver.clone();
    config.max_states = options.max_states;
    let solution: CscSolution = csc::solve_state_graph(&sg, &config)?;

    let literals = if options.estimate_area {
        estimate_area(&solution.graph).ok().map(|r| r.total_literals)
    } else {
        None
    };

    let _ = solve_stg; // re-exported path kept for doc visibility
    Ok(FlowReport {
        name: model.name().to_owned(),
        places,
        transitions,
        signals,
        states: sg.num_states(),
        initial_conflicts,
        csc_satisfied: solution.graph.complete_state_coding_holds(),
        inserted_signals: solution.inserted_signals.len(),
        final_states: solution.graph.num_states(),
        literals,
        resynthesized: solution.stg.is_some(),
        cpu_seconds: start.elapsed().as_secs_f64(),
        stage: solution.stats.stage,
        jobs: solution.stats.jobs,
    })
}

/// Renders a collection of reports as an aligned text table (one row per
/// model), in the spirit of Table 2 of the paper.
pub fn render_table(reports: &[FlowReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>7} {:>10} {:>8} {:>8} {:>9} {:>8}\n",
        "benchmark", "states", "conflicts", "signals", "area", "cpu[s]", "csc"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<18} {:>7} {:>10} {:>8} {:>8} {:>9.3} {:>8}\n",
            r.name,
            r.states,
            r.initial_conflicts,
            r.inserted_signals,
            r.literals.map_or_else(|| "-".to_owned(), |l| l.to_string()),
            r.cpu_seconds,
            if r.csc_satisfied { "yes" } else { "no" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_on_the_vme_controller() {
        let report = run_flow(&stg::benchmarks::vme_read(), &FlowOptions::default()).unwrap();
        assert!(report.csc_satisfied);
        assert!(report.inserted_signals >= 1);
        assert!(report.literals.unwrap() > 0);
        assert_eq!(report.signals, 5);
        let text = report.to_string();
        assert!(text.contains("vme_read"));
        assert!(text.contains("CSC satisfied"));
    }

    #[test]
    fn table_rendering_includes_every_model() {
        let reports = vec![
            run_flow(&stg::benchmarks::handshake(), &FlowOptions::default()).unwrap(),
            run_flow(&stg::benchmarks::pulser(), &FlowOptions::default()).unwrap(),
        ];
        let table = render_table(&reports);
        assert!(table.contains("handshake"));
        assert!(table.contains("pulser"));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn baseline_options_use_excitation_regions() {
        let options = FlowOptions::baseline();
        assert_eq!(options.solver.candidate_source, csc::CandidateSource::ExcitationRegions);
    }

    #[test]
    fn reports_carry_solver_stage_stats() {
        let mut options = FlowOptions::default();
        options.solver.jobs = 2;
        let report = run_flow(&stg::benchmarks::pulser(), &options).unwrap();
        assert_eq!(report.jobs, 2);
        assert!(report.stage.candidates_evaluated > 0);
        let text = report.to_string();
        assert!(text.contains("solver      :") && text.contains("jobs=2"));
        let table = render_stage_table(&report);
        assert!(table.contains("block search"));
        assert!(table.contains("candidates evaluated"));
        assert!(table.lines().count() >= 7);
    }
}
