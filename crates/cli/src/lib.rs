//! High-level facade over the state-encoding toolkit.
//!
//! This crate ties the individual libraries together the way the `petrify`
//! command-line tool does: read an STG, solve Complete State Coding with the
//! region-based method (or the excitation-region baseline), derive and
//! minimize the next-state logic, and report everything as text.  The
//! [`rsynth` binary](../rsynth/index.html) is a thin wrapper over
//! [`run_flow`]; the repository's examples and integration tests use the
//! same entry points.
//!
//! Logic derivation is strategy-selectable ([`logic::LogicStrategy`]).
//! Under the default *symbolic* strategy the flow first tries to stay fully
//! symbolic: if the input STG already satisfies CSC, the next-state
//! functions are derived straight from the symbolic reachability engine and
//! the explicit state graph is never built — which is what lets designs
//! with more than 64 signals (or state spaces beyond explicit reach)
//! synthesize end to end.  Only when state signals must be inserted does
//! the flow fall back to the explicit solver pipeline.
//!
//! # Example
//!
//! ```
//! use synthkit::{run_flow, FlowOptions};
//!
//! let report = run_flow(&stg::benchmarks::vme_read(), &FlowOptions::default())?;
//! assert!(report.csc_satisfied);
//! assert!(report.inserted_signals >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use csc::{
    conflict_pairs, solve_stg, solve_stg_symbolic_seeded, CscError, CscSolution, EncodedGraph,
    SolverConfig, SolverStrategy, StageStats,
};
use logic::{
    analyze_stg, area_of_functions, estimate_area_with, LogicDiagnostic, LogicError, LogicStrategy,
};
use std::fmt;
use std::time::Instant;
use stg::Stg;

/// Options of the end-to-end flow.
#[derive(Clone, Debug)]
pub struct FlowOptions {
    /// Solver configuration (frontier width, candidate source, …).
    pub solver: SolverConfig,
    /// Whether to estimate the implementation area after solving.
    pub estimate_area: bool,
    /// Upper bound on explicit state-graph size.
    pub max_states: usize,
    /// Which engine derives the next-state logic.  [`LogicStrategy::Symbolic`]
    /// (the default) also enables the symbolic-first pipeline that skips the
    /// explicit state graph entirely when CSC already holds.
    pub logic: LogicStrategy,
    /// Signal values in the initial state (bit `i` = signal `i`), used to
    /// seed the symbolic engines.  The benchmark suite (and `.g` models,
    /// whose codes are anchored at 0 during propagation) start at 0.
    pub initial_code: u64,
    /// Which CSC solver resolves a conflicted design.
    /// [`SolverStrategy::Symbolic`] (the default) inserts state signals on
    /// BDDs and keeps the whole flow symbolic — the only option for designs
    /// beyond 64 signals; the explicit state-graph pipeline remains
    /// selectable and is the automatic fallback when the symbolic solver
    /// reports a typed failure.
    ///
    /// The symbolic solver rides on the symbolic analysis, so it only
    /// takes effect under [`LogicStrategy::Symbolic`] (the default):
    /// selecting the explicit logic engine selects the explicit pipeline
    /// end to end, and the `rsynth` CLI rejects the contradictory
    /// `--logic explicit --solver symbolic` combination outright.
    pub strategy: SolverStrategy,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            solver: SolverConfig::default(),
            estimate_area: true,
            max_states: 1_000_000,
            logic: LogicStrategy::default(),
            initial_code: 0,
            strategy: SolverStrategy::default(),
        }
    }
}

impl FlowOptions {
    /// The ASSASSIN-style baseline flow (excitation-region candidates only).
    pub fn baseline() -> Self {
        FlowOptions { solver: SolverConfig::excitation_region_baseline(), ..Self::default() }
    }
}

/// Everything the flow measured for one model.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// Model name.
    pub name: String,
    /// Places of the input STG.
    pub places: usize,
    /// Transitions of the input STG.
    pub transitions: usize,
    /// Signals of the input STG.
    pub signals: usize,
    /// Reachable states of the input state graph (saturating at
    /// `usize::MAX`; see [`FlowReport::states_f64`] for wide designs).
    pub states: usize,
    /// Reachable state count as a float — exact for explicit runs, the
    /// symbolic engine's count when the explicit graph was never built.
    pub states_f64: f64,
    /// CSC conflict pairs before solving (0 when the symbolic-first path
    /// established that CSC already holds).
    pub initial_conflicts: usize,
    /// Whether CSC holds on the final state graph.
    pub csc_satisfied: bool,
    /// Number of inserted state signals.
    pub inserted_signals: usize,
    /// States of the final state graph.
    pub final_states: usize,
    /// Estimated area in literals (`None` when not requested).
    pub literals: Option<usize>,
    /// Product terms of the minimized covers (`None` when not requested).
    pub cubes: Option<usize>,
    /// Peak BDD node count of the logic derivation (`None` when the
    /// explicit engine ran or no area was requested).
    pub logic_bdd_nodes: Option<usize>,
    /// The engine that derived the logic.
    pub logic_strategy: LogicStrategy,
    /// The CSC solver that resolved the conflicts (meaningful when
    /// [`FlowReport::inserted_signals`] is non-zero).
    pub solver_strategy: SolverStrategy,
    /// Typed implementability diagnostics (output persistency, CSC).
    pub logic_diagnostics: Vec<LogicDiagnostic>,
    /// Whether the flow ran fully symbolically (no explicit state graph).
    pub fully_symbolic: bool,
    /// Whether a Petri net / STG could be re-synthesized (for the
    /// symbolic-first path the input STG itself is the output).
    pub resynthesized: bool,
    /// Wall-clock seconds of the whole flow.
    pub cpu_seconds: f64,
    /// Per-stage solver timings and candidate counters.
    pub stage: StageStats,
    /// Evaluation threads the solver used.
    pub jobs: usize,
}

impl fmt::Display for FlowReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "model       : {}", self.name)?;
        writeln!(
            f,
            "input       : {} places, {} transitions, {} signals, {} states",
            self.places,
            self.transitions,
            self.signals,
            render_state_count(self.states, self.states_f64)
        )?;
        writeln!(
            f,
            "conflicts   : {}",
            if self.initial_conflicts == usize::MAX {
                // Wide designs can have more conflicting codes than a usize
                // holds (every independent-component configuration aliases).
                "> 1.8e19 (saturated)".to_owned()
            } else {
                self.initial_conflicts.to_string()
            }
        )?;
        writeln!(
            f,
            "encoding    : {} state signal(s) inserted, {} states, CSC {}",
            self.inserted_signals,
            render_state_count(self.final_states, self.states_f64),
            if self.csc_satisfied { "satisfied" } else { "NOT satisfied" }
        )?;
        if let Some(literals) = self.literals {
            write!(f, "area        : {literals} literals")?;
            if let Some(cubes) = self.cubes {
                write!(f, ", {cubes} cubes")?;
            }
            writeln!(f)?;
        }
        if self.inserted_signals > 0 {
            writeln!(f, "csc solver  : {} engine", self.solver_strategy)?;
        }
        writeln!(
            f,
            "logic       : {} engine{}",
            self.logic_strategy,
            match self.logic_bdd_nodes {
                Some(nodes) => format!(", {nodes} bdd nodes"),
                None => String::new(),
            }
        )?;
        for diagnostic in &self.logic_diagnostics {
            writeln!(f, "  !! {diagnostic}")?;
        }
        writeln!(
            f,
            "stg output  : {}",
            if self.resynthesized { "re-synthesized" } else { "state graph only" }
        )?;
        writeln!(f, "solver      : {} (jobs={})", self.stage, self.jobs)?;
        write!(f, "cpu         : {:.3} s", self.cpu_seconds)
    }
}

/// Renders a state count, falling back to scientific notation when the
/// explicit counter saturated.
fn render_state_count(count: usize, count_f64: f64) -> String {
    if count == usize::MAX {
        format!("{count_f64:.3e}")
    } else {
        count.to_string()
    }
}

/// Renders the per-stage solver breakdown of a report as an aligned
/// two-column table (stage name, value); the `rsynth` CLI prints this
/// after every report.
pub fn render_stage_table(report: &FlowReport) -> String {
    let stage = &report.stage;
    let mut out = String::new();
    out.push_str(&format!("{:<22} {:>12}\n", "solver stage", "value"));
    for (label, ms) in [
        ("conflict maintenance", stage.conflict_ms),
        ("block search", stage.search_ms),
        ("partition derivation", stage.partition_ms),
        ("signal insertion", stage.insert_ms),
    ] {
        out.push_str(&format!("{label:<22} {ms:>9.2} ms\n"));
    }
    out.push_str(&format!("{:<22} {:>12}\n", "candidates evaluated", stage.candidates_evaluated));
    out.push_str(&format!("{:<22} {:>12}\n", "candidates pruned", stage.candidates_pruned));
    out.push_str(&format!("{:<22} {:>12}\n", "evaluation jobs", report.jobs));
    out.push_str(&format!("{:<22} {:>12}\n", "solver engine", report.solver_strategy.to_string()));
    out.push_str(&format!("{:<22} {:>12}\n", "logic engine", report.logic_strategy.to_string()));
    if let Some(literals) = report.literals {
        out.push_str(&format!("{:<22} {:>12}\n", "logic literals", literals));
    }
    if let Some(cubes) = report.cubes {
        out.push_str(&format!("{:<22} {:>12}\n", "logic cubes", cubes));
    }
    if let Some(nodes) = report.logic_bdd_nodes {
        out.push_str(&format!("{:<22} {:>12}\n", "logic bdd nodes", nodes));
    }
    out
}

/// Runs the full flow (state graph → CSC resolution → logic derivation) on
/// one STG.
///
/// Under [`LogicStrategy::Symbolic`] the flow first attempts the fully
/// symbolic pipeline (reachability, CSC check and cover extraction on BDDs,
/// no explicit state graph); it falls back to the explicit solver exactly
/// when that pipeline reports a CSC conflict that needs state signals — or
/// cannot converge — so wide conflict-free designs never pay for explicit
/// enumeration.
///
/// # Errors
///
/// Propagates [`CscError`] from the solver; models whose CSC conflicts
/// cannot be solved without touching the environment are reported this way.
pub fn run_flow(model: &Stg, options: &FlowOptions) -> Result<FlowReport, CscError> {
    let start = Instant::now();
    let (places, transitions, signals) = model.stats();

    if options.logic == LogicStrategy::Symbolic {
        // Symbolic-first: one analysis yields the functions, the
        // persistency diagnostics and the state counts; success proves CSC
        // holds.
        match analyze_stg(model, options.initial_code, None) {
            Ok(analysis) => {
                let area = area_of_functions(&analysis.functions);
                let states_f64 = analysis.markings;
                let states = saturating_usize(states_f64);
                return Ok(FlowReport {
                    name: model.name().to_owned(),
                    places,
                    transitions,
                    signals,
                    states,
                    states_f64,
                    initial_conflicts: 0,
                    csc_satisfied: true,
                    inserted_signals: 0,
                    final_states: states,
                    literals: options.estimate_area.then_some(area.total_literals),
                    cubes: options.estimate_area.then_some(area.total_cubes),
                    logic_bdd_nodes: options.estimate_area.then_some(area.bdd_nodes),
                    logic_strategy: LogicStrategy::Symbolic,
                    solver_strategy: options.strategy,
                    logic_diagnostics: analysis.diagnostics,
                    fully_symbolic: true,
                    resynthesized: true, // the input STG is its own implementation spec
                    cpu_seconds: start.elapsed().as_secs_f64(),
                    stage: StageStats::default(),
                    jobs: options.solver.effective_jobs(),
                });
            }
            // A genuine CSC conflict with the symbolic solver selected:
            // resolve it by state-signal insertion on BDDs, then re-analyze
            // the encoded STG — still no explicit state graph anywhere.
            Err(LogicError::CscViolation { .. })
                if options.strategy == SolverStrategy::Symbolic =>
            {
                if let Ok(solution) =
                    solve_stg_symbolic_seeded(model, &options.solver, options.initial_code)
                {
                    if let Ok(analysis) = analyze_stg(&solution.stg, options.initial_code, None) {
                        let area = area_of_functions(&analysis.functions);
                        let final_states_f64 = analysis.markings;
                        return Ok(FlowReport {
                            name: model.name().to_owned(),
                            places,
                            transitions,
                            signals,
                            states: solution.stats.initial_states,
                            states_f64: solution.initial_states_f64,
                            initial_conflicts: solution.stats.initial_conflicts,
                            csc_satisfied: true,
                            inserted_signals: solution.inserted_signals.len(),
                            final_states: saturating_usize(final_states_f64),
                            literals: options.estimate_area.then_some(area.total_literals),
                            cubes: options.estimate_area.then_some(area.total_cubes),
                            logic_bdd_nodes: options.estimate_area.then_some(area.bdd_nodes),
                            logic_strategy: LogicStrategy::Symbolic,
                            solver_strategy: SolverStrategy::Symbolic,
                            logic_diagnostics: analysis.diagnostics,
                            fully_symbolic: true,
                            // The solver's output *is* an STG — the
                            // hand-back the paper asks for.
                            resynthesized: true,
                            cpu_seconds: start.elapsed().as_secs_f64(),
                            stage: solution.stats.stage,
                            jobs: solution.stats.jobs,
                        });
                    }
                }
                // A typed solver failure (no candidate, signal budget,
                // non-convergence): fall through to the explicit pipeline.
            }
            // Wrong seed or non-convergence: the explicit pipeline is the
            // ground truth fallback.
            Err(_) => {}
        }
    }

    let sg = model.state_graph(options.max_states)?;
    let initial_graph = EncodedGraph::from_state_graph(&sg);
    let initial_conflicts = conflict_pairs(&initial_graph).len();

    let mut config = options.solver.clone();
    config.max_states = options.max_states;
    let solution: CscSolution = csc::solve_state_graph(&sg, &config)?;

    let mut logic_diagnostics = logic::output_persistency_violations(&solution.graph);
    let (literals, cubes, logic_bdd_nodes) = if options.estimate_area {
        match estimate_area_with(&solution.graph, options.logic) {
            Ok(area) => (
                Some(area.total_literals),
                Some(area.total_cubes),
                (options.logic == LogicStrategy::Symbolic).then_some(area.bdd_nodes),
            ),
            Err(error) => {
                logic_diagnostics.push(LogicDiagnostic::from(&error));
                (None, None, None)
            }
        }
    } else {
        (None, None, None)
    };

    let _ = solve_stg; // re-exported path kept for doc visibility
    Ok(FlowReport {
        name: model.name().to_owned(),
        places,
        transitions,
        signals,
        states: sg.num_states(),
        states_f64: sg.num_states() as f64,
        initial_conflicts,
        csc_satisfied: solution.graph.complete_state_coding_holds(),
        inserted_signals: solution.inserted_signals.len(),
        final_states: solution.graph.num_states(),
        literals,
        cubes,
        logic_bdd_nodes,
        logic_strategy: options.logic,
        solver_strategy: SolverStrategy::Explicit,
        logic_diagnostics,
        fully_symbolic: false,
        resynthesized: solution.stg.is_some(),
        cpu_seconds: start.elapsed().as_secs_f64(),
        stage: solution.stats.stage,
        jobs: solution.stats.jobs,
    })
}

fn saturating_usize(count: f64) -> usize {
    if count >= usize::MAX as f64 {
        usize::MAX
    } else {
        count.round() as usize
    }
}

/// Renders a collection of reports as an aligned text table (one row per
/// model), in the spirit of Table 2 of the paper.
pub fn render_table(reports: &[FlowReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>10} {:>10} {:>8} {:>8} {:>7} {:>9} {:>8}\n",
        "benchmark", "states", "conflicts", "signals", "area", "cubes", "cpu[s]", "csc"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<18} {:>10} {:>10} {:>8} {:>8} {:>7} {:>9.3} {:>8}\n",
            r.name,
            render_state_count(r.states, r.states_f64),
            r.initial_conflicts,
            r.inserted_signals,
            r.literals.map_or_else(|| "-".to_owned(), |l| l.to_string()),
            r.cubes.map_or_else(|| "-".to_owned(), |c| c.to_string()),
            r.cpu_seconds,
            if r.csc_satisfied { "yes" } else { "no" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_on_the_vme_controller() {
        let report = run_flow(&stg::benchmarks::vme_read(), &FlowOptions::default()).unwrap();
        assert!(report.csc_satisfied);
        assert!(report.inserted_signals >= 1);
        assert!(report.literals.unwrap() > 0);
        assert!(report.cubes.unwrap() > 0);
        assert_eq!(report.signals, 5);
        assert!(
            report.fully_symbolic,
            "vme_read's conflict is now resolved by the symbolic solver: no explicit graph"
        );
        assert_eq!(report.solver_strategy, csc::SolverStrategy::Symbolic);
        assert!(report.logic_diagnostics.is_empty());
        let text = report.to_string();
        assert!(text.contains("vme_read"));
        assert!(text.contains("CSC satisfied"));
        assert!(text.contains("csc solver  : symbolic engine"));
        assert!(text.contains("symbolic engine"));
    }

    #[test]
    fn explicit_solver_strategy_remains_selectable() {
        let options =
            FlowOptions { strategy: csc::SolverStrategy::Explicit, ..FlowOptions::default() };
        let report = run_flow(&stg::benchmarks::vme_read(), &options).unwrap();
        assert!(report.csc_satisfied);
        assert!(!report.fully_symbolic, "the explicit strategy builds the state graph");
        assert_eq!(report.solver_strategy, csc::SolverStrategy::Explicit);
        assert!(report.inserted_signals >= 1);
    }

    #[test]
    fn conflict_free_models_stay_fully_symbolic() {
        let report =
            run_flow(&stg::benchmarks::parallel_handshakes(3), &FlowOptions::default()).unwrap();
        assert!(report.fully_symbolic);
        assert!(report.csc_satisfied);
        assert_eq!(report.inserted_signals, 0);
        assert_eq!(report.states, 64, "4^3 states");
        assert_eq!(report.literals.unwrap(), 3, "each ack follows its req");
        let explicit = run_flow(
            &stg::benchmarks::parallel_handshakes(3),
            &FlowOptions { logic: LogicStrategy::Explicit, ..FlowOptions::default() },
        )
        .unwrap();
        assert!(!explicit.fully_symbolic);
        assert_eq!(explicit.literals.unwrap(), report.literals.unwrap());
    }

    #[test]
    fn wide_designs_run_end_to_end_symbolically() {
        // 70 signals: impossible for the explicit path (u64 codes), routine
        // for the symbolic one.
        let report =
            run_flow(&stg::benchmarks::parallel_handshakes(35), &FlowOptions::default()).unwrap();
        assert!(report.fully_symbolic);
        assert!(report.csc_satisfied);
        assert_eq!(report.signals, 70);
        assert_eq!(report.literals.unwrap(), 35);
        assert!(report.states_f64 > 1e21, "4^35 states");
        let text = report.to_string();
        assert!(text.contains("symbolic engine"));
    }

    #[test]
    fn symbolic_first_reports_persistency_diagnostics() {
        // CSC holds on this free output choice, so the flow stays fully
        // symbolic — but it must still report that neither output is
        // persistent instead of silently declaring the design implementable.
        use stg::{Polarity, SignalKind, StgBuilder};
        let mut bld = StgBuilder::new("choice");
        let x = bld.add_signal("x", SignalKind::Input);
        let a = bld.add_signal("a", SignalKind::Output);
        let b = bld.add_signal("b", SignalKind::Output);
        let xp = bld.add_edge(x, Polarity::Rise);
        let ap = bld.add_edge(a, Polarity::Rise);
        let xma = bld.add_edge(x, Polarity::Fall);
        let am = bld.add_edge(a, Polarity::Fall);
        let bp = bld.add_edge(b, Polarity::Rise);
        let xmb = bld.add_edge(x, Polarity::Fall);
        let bm = bld.add_edge(b, Polarity::Fall);
        let choice = bld.add_place("choice", false);
        bld.arc_transition_to_place(xp, choice);
        bld.arc_place_to_transition(choice, ap);
        bld.arc_place_to_transition(choice, bp);
        bld.connect(ap, xma, false);
        bld.connect(xma, am, false);
        bld.connect(bp, xmb, false);
        bld.connect(xmb, bm, false);
        let idle = bld.add_place("idle", true);
        bld.arc_transition_to_place(am, idle);
        bld.arc_transition_to_place(bm, idle);
        bld.arc_place_to_transition(idle, xp);
        let model = bld.build().unwrap();

        let report = run_flow(&model, &FlowOptions::default()).unwrap();
        assert!(report.fully_symbolic);
        assert!(report.csc_satisfied);
        assert_eq!(report.logic_diagnostics.len(), 2, "{:?}", report.logic_diagnostics);
        assert!(report
            .logic_diagnostics
            .iter()
            .all(|d| matches!(d, LogicDiagnostic::OutputNotPersistent { .. })));
        let text = report.to_string();
        assert!(text.contains("not persistent"), "{text}");
    }

    #[test]
    fn wrongly_seeded_symbolic_first_falls_back_to_the_explicit_graph() {
        // The re-synthesized pulser's signals do not all start at 0, so the
        // all-zero symbolic seed truncates its reachable space.  The flow
        // must detect that and fall back to the explicit pipeline instead of
        // reporting the truncated space's (much smaller) logic.
        let solution =
            csc::solve_stg(&stg::benchmarks::pulser(), &csc::SolverConfig::default()).unwrap();
        let encoded = solution.stg.expect("pulser re-synthesizes");
        let report = run_flow(&encoded, &FlowOptions::default()).unwrap();
        assert!(!report.fully_symbolic, "a bad seed must not stay fully symbolic");
        let explicit = run_flow(
            &encoded,
            &FlowOptions { logic: LogicStrategy::Explicit, ..FlowOptions::default() },
        )
        .unwrap();
        assert_eq!(report.literals, explicit.literals);
        assert_eq!(report.cubes, explicit.cubes);
        assert_eq!(report.states, explicit.states);
    }

    #[test]
    fn table_rendering_includes_every_model() {
        let reports = vec![
            run_flow(&stg::benchmarks::handshake(), &FlowOptions::default()).unwrap(),
            run_flow(&stg::benchmarks::pulser(), &FlowOptions::default()).unwrap(),
        ];
        let table = render_table(&reports);
        assert!(table.contains("handshake"));
        assert!(table.contains("pulser"));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn baseline_options_use_excitation_regions() {
        let options = FlowOptions::baseline();
        assert_eq!(options.solver.candidate_source, csc::CandidateSource::ExcitationRegions);
    }

    #[test]
    fn reports_carry_solver_stage_stats() {
        let mut options = FlowOptions::default();
        options.solver.jobs = 2;
        options.strategy = csc::SolverStrategy::Explicit;
        let report = run_flow(&stg::benchmarks::pulser(), &options).unwrap();
        assert_eq!(report.jobs, 2);
        assert!(report.stage.candidates_evaluated > 0);
        let text = report.to_string();
        assert!(text.contains("solver      :") && text.contains("jobs=2"));
        let table = render_stage_table(&report);
        assert!(table.contains("block search"));
        assert!(table.contains("candidates evaluated"));
        assert!(table.contains("solver engine"));
        assert!(table.contains("logic engine"));
        assert!(table.contains("logic literals"));
        assert!(table.contains("logic bdd nodes"));
        assert!(table.lines().count() >= 10);

        // The symbolic solver fills the same stage counters.
        let symbolic = run_flow(&stg::benchmarks::pulser(), &FlowOptions::default()).unwrap();
        assert!(symbolic.fully_symbolic);
        assert!(symbolic.stage.candidates_evaluated > 0);
        assert!(render_stage_table(&symbolic).contains("solver engine"));
    }
}
