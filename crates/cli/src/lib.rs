//! High-level facade over the state-encoding toolkit.
//!
//! This crate ties the individual libraries together the way the `petrify`
//! command-line tool does: read an STG, solve Complete State Coding with the
//! region-based method (or the excitation-region baseline), derive and
//! minimize the next-state logic, and report everything as text.  The
//! [`rsynth` binary](../rsynth/index.html) is a thin wrapper over
//! [`run_flow`]; the repository's examples and integration tests use the
//! same entry points.
//!
//! Logic derivation is strategy-selectable ([`logic::LogicStrategy`]).
//! Under the default *symbolic* strategy the flow first tries to stay fully
//! symbolic: if the input STG already satisfies CSC, the next-state
//! functions are derived straight from the symbolic reachability engine and
//! the explicit state graph is never built — which is what lets designs
//! with more than 64 signals (or state spaces beyond explicit reach)
//! synthesize end to end.  Only when state signals must be inserted does
//! the flow fall back to the explicit solver pipeline.
//!
//! # Example
//!
//! ```
//! use synthkit::{run_flow, FlowOptions};
//!
//! let report = run_flow(&stg::benchmarks::vme_read(), &FlowOptions::default())?;
//! assert!(report.csc_satisfied);
//! assert!(report.inserted_signals >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bdd::{Budget, BudgetExceeded};
use csc::{
    conflict_pairs, solve_stg, solve_stg_symbolic_with, CscError, CscSolution, EncodedGraph,
    SolverConfig, SolverStrategy, StageStats, SymbolicSolution,
};
use logic::{
    analyze_stg_with, area_of_functions, LogicDiagnostic, LogicError, LogicStrategy,
    SymbolicLogicReport,
};
use std::fmt;
use std::time::{Duration, Instant};
use stg::{ReachabilityConfig, ReachabilityStrategy, Stg};

/// Options of the end-to-end flow.
#[derive(Clone, Debug)]
pub struct FlowOptions {
    /// Solver configuration (frontier width, candidate source, …).
    pub solver: SolverConfig,
    /// Whether to estimate the implementation area after solving.
    pub estimate_area: bool,
    /// Upper bound on explicit state-graph size.
    pub max_states: usize,
    /// Which engine derives the next-state logic.  [`LogicStrategy::Symbolic`]
    /// (the default) also enables the symbolic-first pipeline that skips the
    /// explicit state graph entirely when CSC already holds.
    pub logic: LogicStrategy,
    /// Signal values in the initial state (bit `i` = signal `i`), used to
    /// seed the symbolic engines.  The benchmark suite (and `.g` models,
    /// whose codes are anchored at 0 during propagation) start at 0.
    pub initial_code: u64,
    /// Which CSC solver resolves a conflicted design.
    /// [`SolverStrategy::Symbolic`] (the default) inserts state signals on
    /// BDDs and keeps the whole flow symbolic — the only option for designs
    /// beyond 64 signals; the explicit state-graph pipeline remains
    /// selectable and is the automatic fallback when the symbolic solver
    /// reports a typed failure.
    ///
    /// The symbolic solver rides on the symbolic analysis, so it only
    /// takes effect under [`LogicStrategy::Symbolic`] (the default):
    /// selecting the explicit logic engine selects the explicit pipeline
    /// end to end, and the `rsynth` CLI rejects the contradictory
    /// `--logic explicit --solver symbolic` combination outright.
    pub strategy: SolverStrategy,
    /// Ceiling on BDD nodes the whole flow may allocate (`None` = no
    /// ceiling).  Any limit arms the shared [`Budget`] and with it the
    /// fallback ladder — see [`run_flow`].
    pub node_budget: Option<u64>,
    /// Ceiling on BDD apply steps (`mk` calls) for the whole flow.
    pub step_budget: Option<u64>,
    /// Wall-clock deadline for the whole flow in milliseconds, honoured
    /// within one budget check interval.
    pub timeout_ms: Option<u64>,
    /// Refuse to descend the fallback ladder: the first budget trip or
    /// non-convergence returns its typed error instead of degrading.
    pub no_fallback: bool,
    /// Verify the emitted gate netlist against the source STG (symbolic
    /// speed-independence and projection trace equivalence).  The check
    /// shares the flow's [`Budget`]; a tripped ceiling aborts the
    /// verification with a typed verdict instead of failing the flow.
    pub verify_netlist: bool,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            solver: SolverConfig::default(),
            estimate_area: true,
            max_states: 1_000_000,
            logic: LogicStrategy::default(),
            initial_code: 0,
            strategy: SolverStrategy::default(),
            node_budget: None,
            step_budget: None,
            timeout_ms: None,
            no_fallback: false,
            verify_netlist: false,
        }
    }
}

impl FlowOptions {
    /// The ASSASSIN-style baseline flow (excitation-region candidates only).
    pub fn baseline() -> Self {
        FlowOptions { solver: SolverConfig::excitation_region_baseline(), ..Self::default() }
    }

    /// The shared resource budget of one flow run — `None` when no limit is
    /// configured, in which case the flow runs ungoverned exactly as before.
    pub fn budget(&self) -> Option<Budget> {
        if self.node_budget.is_none() && self.step_budget.is_none() && self.timeout_ms.is_none() {
            return None;
        }
        Some(Budget::new(
            self.node_budget,
            self.step_budget,
            self.timeout_ms.map(Duration::from_millis),
        ))
    }
}

/// The rung of the fallback ladder a flow run completed on.  Rungs are
/// ordered: a governed run only ever descends.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlowRung {
    /// The full symbolic pipeline (frontier-BFS reachability).
    Symbolic,
    /// Symbolic with a restricted fixpoint: monolithic BFS, which keeps a
    /// single live frontier BDD and trades convergence speed for a smaller
    /// peak node count.
    SymbolicRestricted,
    /// The explicit state-graph pipeline (possible up to 64 signals).
    Explicit,
    /// Diagnosis only: conflicts reported as far as they were detected, no
    /// state signal inserted, no logic derived.
    PartialReport,
}

impl fmt::Display for FlowRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FlowRung::Symbolic => "symbolic",
            FlowRung::SymbolicRestricted => "symbolic-restricted",
            FlowRung::Explicit => "explicit",
            FlowRung::PartialReport => "partial-report",
        })
    }
}

/// One descent of the fallback ladder, recorded in
/// [`FlowReport::degradations`] so callers can see exactly what degraded
/// and why.
#[derive(Clone, Debug)]
pub struct DegradationEvent {
    /// The pipeline stage whose governor fired (`"reachability"`,
    /// `"candidate-search"`, `"isop"`, or `"flow"` for structural limits).
    pub stage: String,
    /// What tripped: a budget ceiling, a truncated fixpoint, or a
    /// structural limit such as the 64-signal explicit cap.
    pub trigger: String,
    /// BDD nodes charged to the shared budget when the rung was abandoned
    /// (0 for ungoverned descents).
    pub nodes_spent: u64,
    /// Wall-clock milliseconds into the run when the rung was abandoned.
    pub elapsed_ms: u64,
    /// The abandoned rung.
    pub from: FlowRung,
    /// The rung the flow descended to.
    pub to: FlowRung,
}

impl fmt::Display for DegradationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} at {}: {} [{} bdd nodes, {} ms]",
            self.from, self.to, self.stage, self.trigger, self.nodes_spent, self.elapsed_ms
        )
    }
}

/// The gate-level back-end's contribution to a [`FlowReport`]: the
/// synthesized circuit, its size, and the closed-loop verification verdict.
#[derive(Clone, Debug)]
pub struct NetlistStage {
    /// The synthesized circuit (emit it with [`netlist::Netlist::to_eqn`]
    /// or [`netlist::Netlist::to_verilog`]).
    pub circuit: netlist::Netlist,
    /// Number of gates (one per non-input signal).
    pub gates: usize,
    /// Number of generalized C-elements among the gates.
    pub c_elements: usize,
    /// Total literal count over all gate covers.
    pub literals: usize,
    /// Wall-clock milliseconds spent synthesizing and splitting covers.
    pub build_ms: f64,
    /// Wall-clock milliseconds spent verifying (0 when not requested).
    pub verify_ms: f64,
    /// The closed-loop verification verdict.
    pub verdict: NetlistVerdict,
}

/// Outcome of verifying the emitted netlist against the source STG.
#[derive(Clone, Debug)]
pub enum NetlistVerdict {
    /// Verification was not requested ([`FlowOptions::verify_netlist`] off).
    NotRequested,
    /// The netlist is speed-independent and trace-equivalent to the STG.
    Verified {
        /// Reachable (marking, code) pairs the check explored, as a float.
        states_f64: f64,
    },
    /// The netlist violates speed independence or diverges from the STG;
    /// every finding carries a witness.
    Failed {
        /// The typed, witness-carrying findings.
        diagnostics: Vec<netlist::NetlistDiagnostic>,
    },
    /// Verification could not run to completion (budget trip, truncated
    /// fixpoint, or no encoded STG to verify against) — a typed outcome,
    /// never a panic.
    Aborted {
        /// Why the check stopped.
        reason: String,
    },
}

/// Everything the flow measured for one model.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// Model name.
    pub name: String,
    /// Places of the input STG.
    pub places: usize,
    /// Transitions of the input STG.
    pub transitions: usize,
    /// Signals of the input STG.
    pub signals: usize,
    /// Reachable states of the input state graph (saturating at
    /// `usize::MAX`; see [`FlowReport::states_f64`] for wide designs).
    pub states: usize,
    /// Reachable state count as a float — exact for explicit runs, the
    /// symbolic engine's count when the explicit graph was never built.
    pub states_f64: f64,
    /// CSC conflict pairs before solving (0 when the symbolic-first path
    /// established that CSC already holds).
    pub initial_conflicts: usize,
    /// Whether CSC holds on the final state graph.
    pub csc_satisfied: bool,
    /// Number of inserted state signals.
    pub inserted_signals: usize,
    /// States of the final state graph.
    pub final_states: usize,
    /// Estimated area in literals (`None` when not requested).
    pub literals: Option<usize>,
    /// Product terms of the minimized covers (`None` when not requested).
    pub cubes: Option<usize>,
    /// Peak BDD node count of the logic derivation (`None` when the
    /// explicit engine ran or no area was requested).
    pub logic_bdd_nodes: Option<usize>,
    /// The engine that derived the logic.
    pub logic_strategy: LogicStrategy,
    /// The CSC solver that resolved the conflicts (meaningful when
    /// [`FlowReport::inserted_signals`] is non-zero).
    pub solver_strategy: SolverStrategy,
    /// Typed implementability diagnostics (output persistency, CSC).
    pub logic_diagnostics: Vec<LogicDiagnostic>,
    /// Whether the flow ran fully symbolically (no explicit state graph).
    pub fully_symbolic: bool,
    /// Whether a Petri net / STG could be re-synthesized (for the
    /// symbolic-first path the input STG itself is the output).
    pub resynthesized: bool,
    /// Wall-clock seconds of the whole flow.
    pub cpu_seconds: f64,
    /// Per-stage solver timings and candidate counters.
    pub stage: StageStats,
    /// Evaluation threads the solver used.
    pub jobs: usize,
    /// The fallback-ladder rung the flow completed on.
    pub rung: FlowRung,
    /// Every ladder descent the run took, in order (empty for ungoverned
    /// runs that never degraded).
    pub degradations: Vec<DegradationEvent>,
    /// The gate-level back-end stage: the synthesized netlist and its
    /// verification verdict (`None` when no logic was derived, e.g. under
    /// `--no-area` or on a partial report).
    pub netlist: Option<NetlistStage>,
}

impl fmt::Display for FlowReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "model       : {}", self.name)?;
        writeln!(
            f,
            "input       : {} places, {} transitions, {} signals, {} states",
            self.places,
            self.transitions,
            self.signals,
            render_state_count(self.states, self.states_f64)
        )?;
        writeln!(
            f,
            "conflicts   : {}",
            if self.initial_conflicts == usize::MAX {
                // Wide designs can have more conflicting codes than a usize
                // holds (every independent-component configuration aliases).
                "> 1.8e19 (saturated)".to_owned()
            } else {
                self.initial_conflicts.to_string()
            }
        )?;
        writeln!(
            f,
            "encoding    : {} state signal(s) inserted, {} states, CSC {}",
            self.inserted_signals,
            render_state_count(self.final_states, self.states_f64),
            if self.csc_satisfied { "satisfied" } else { "NOT satisfied" }
        )?;
        if let Some(literals) = self.literals {
            write!(f, "area        : {literals} literals")?;
            if let Some(cubes) = self.cubes {
                write!(f, ", {cubes} cubes")?;
            }
            writeln!(f)?;
        }
        if self.inserted_signals > 0 {
            writeln!(f, "csc solver  : {} engine", self.solver_strategy)?;
        }
        writeln!(
            f,
            "logic       : {} engine{}",
            self.logic_strategy,
            match self.logic_bdd_nodes {
                Some(nodes) => format!(", {nodes} bdd nodes"),
                None => String::new(),
            }
        )?;
        for diagnostic in &self.logic_diagnostics {
            writeln!(f, "  !! {diagnostic}")?;
        }
        if let Some(stage) = &self.netlist {
            writeln!(
                f,
                "netlist     : {} gates ({} C-elements), {} literals",
                stage.gates, stage.c_elements, stage.literals
            )?;
            match &stage.verdict {
                NetlistVerdict::NotRequested => {}
                NetlistVerdict::Verified { states_f64 } => {
                    writeln!(
                        f,
                        "netlist chk : speed-independent, trace-equivalent ({states_f64:.0} states)"
                    )?;
                }
                NetlistVerdict::Failed { diagnostics } => {
                    writeln!(f, "netlist chk : FAILED ({} finding(s))", diagnostics.len())?;
                    for diagnostic in diagnostics {
                        writeln!(f, "  !! {diagnostic}")?;
                    }
                }
                NetlistVerdict::Aborted { reason } => {
                    writeln!(f, "netlist chk : aborted — {reason}")?;
                }
            }
        }
        writeln!(
            f,
            "stg output  : {}",
            if self.resynthesized { "re-synthesized" } else { "state graph only" }
        )?;
        if !self.degradations.is_empty() || self.rung != FlowRung::Symbolic {
            writeln!(f, "rung        : {}", self.rung)?;
        }
        for event in &self.degradations {
            writeln!(f, "  ~~ degraded {event}")?;
        }
        writeln!(f, "solver      : {} (jobs={})", self.stage, self.jobs)?;
        write!(f, "cpu         : {:.3} s", self.cpu_seconds)
    }
}

/// Renders a state count, falling back to scientific notation when the
/// explicit counter saturated.
fn render_state_count(count: usize, count_f64: f64) -> String {
    if count == usize::MAX {
        format!("{count_f64:.3e}")
    } else {
        count.to_string()
    }
}

/// Renders the per-stage solver breakdown of a report as an aligned
/// two-column table (stage name, value); the `rsynth` CLI prints this
/// after every report.
pub fn render_stage_table(report: &FlowReport) -> String {
    let stage = &report.stage;
    let mut out = String::new();
    out.push_str(&format!("{:<22} {:>12}\n", "solver stage", "value"));
    for (label, ms) in [
        ("conflict maintenance", stage.conflict_ms),
        ("block search", stage.search_ms),
        ("partition derivation", stage.partition_ms),
        ("signal insertion", stage.insert_ms),
    ] {
        out.push_str(&format!("{label:<22} {ms:>9.2} ms\n"));
    }
    out.push_str(&format!("{:<22} {:>12}\n", "candidates evaluated", stage.candidates_evaluated));
    out.push_str(&format!("{:<22} {:>12}\n", "candidates pruned", stage.candidates_pruned));
    out.push_str(&format!("{:<22} {:>12}\n", "evaluation jobs", report.jobs));
    out.push_str(&format!("{:<22} {:>12}\n", "solver engine", report.solver_strategy.to_string()));
    out.push_str(&format!("{:<22} {:>12}\n", "logic engine", report.logic_strategy.to_string()));
    out.push_str(&format!("{:<22} {:>12}\n", "flow rung", report.rung.to_string()));
    out.push_str(&format!("{:<22} {:>12}\n", "degradations", report.degradations.len()));
    if let Some(literals) = report.literals {
        out.push_str(&format!("{:<22} {:>12}\n", "logic literals", literals));
    }
    if let Some(cubes) = report.cubes {
        out.push_str(&format!("{:<22} {:>12}\n", "logic cubes", cubes));
    }
    if let Some(nodes) = report.logic_bdd_nodes {
        out.push_str(&format!("{:<22} {:>12}\n", "logic bdd nodes", nodes));
    }
    if let Some(stage) = &report.netlist {
        out.push_str(&format!("{:<22} {:>12}\n", "netlist gates", stage.gates));
        out.push_str(&format!("{:<22} {:>12}\n", "netlist c-elements", stage.c_elements));
        out.push_str(&format!("{:<22} {:>12}\n", "netlist literals", stage.literals));
        out.push_str(&format!("{:<22} {:>9.2} ms\n", "netlist build", stage.build_ms));
        if !matches!(stage.verdict, NetlistVerdict::NotRequested) {
            out.push_str(&format!("{:<22} {:>9.2} ms\n", "netlist verify", stage.verify_ms));
        }
    }
    out
}

/// Runs the full flow (state graph → CSC resolution → logic derivation) on
/// one STG.
///
/// Under [`LogicStrategy::Symbolic`] the flow first attempts the fully
/// symbolic pipeline (reachability, CSC check and cover extraction on BDDs,
/// no explicit state graph); it falls back to the explicit solver exactly
/// when that pipeline reports a CSC conflict that needs state signals — or
/// cannot converge — so wide conflict-free designs never pay for explicit
/// enumeration.
///
/// # Resource governance
///
/// When [`FlowOptions::node_budget`], [`FlowOptions::step_budget`] or
/// [`FlowOptions::timeout_ms`] is set, the whole run shares one [`Budget`]
/// and descends a fallback ladder instead of running away:
///
/// 1. [`FlowRung::Symbolic`] — the full symbolic pipeline,
/// 2. [`FlowRung::SymbolicRestricted`] — monolithic-BFS fixpoints (smaller
///    peak node count) on whatever budget remains,
/// 3. [`FlowRung::Explicit`] — the explicit pipeline, taken only when the
///    design fits 64 signals and the deadline still stands,
/// 4. [`FlowRung::PartialReport`] — a diagnosis-only report: conflicts as
///    far as they were detected, nothing inserted.
///
/// Each descent is recorded as a [`DegradationEvent`] in
/// [`FlowReport::degradations`], and a governed run returns `Ok` with a
/// partial report rather than an error when every rung is exhausted.
/// [`FlowOptions::no_fallback`] inverts that: the first trip returns its
/// typed error ([`CscError::Budget`] or [`CscError::NotConverged`]).
///
/// # Errors
///
/// Propagates [`CscError`] from the solver; models whose CSC conflicts
/// cannot be solved without touching the environment are reported this way.
pub fn run_flow(model: &Stg, options: &FlowOptions) -> Result<FlowReport, CscError> {
    let start = Instant::now();
    let (_, _, signals) = model.stats();
    let budget = options.budget();
    // The last rung engages only for governed symbolic runs: ungoverned
    // flows (and flows pinned to the explicit engine) keep their typed
    // errors instead of degrading into a partial report.
    let guarded = options.logic == LogicStrategy::Symbolic && budget.is_some();
    let mut degradations: Vec<DegradationEvent> = Vec::new();
    // CSC diagnosis captured on the way down, reported when the ladder ends
    // in a partial report.
    let mut diagnosis: Vec<LogicDiagnostic> = Vec::new();

    if options.logic == LogicStrategy::Symbolic {
        let mut rung = FlowRung::Symbolic;
        loop {
            let reach = ReachabilityConfig {
                strategy: match rung {
                    FlowRung::Symbolic => ReachabilityStrategy::FrontierBfs,
                    _ => ReachabilityStrategy::MonolithicBfs,
                },
                max_iterations: None,
                budget: budget.clone(),
                stage: None,
            };
            match symbolic_rung(model, options, &reach, start, &mut diagnosis) {
                RungAttempt::Done(mut report) => {
                    report.rung = rung;
                    report.degradations = degradations;
                    return Ok(*report);
                }
                RungAttempt::Degrade(failure) => {
                    if options.no_fallback {
                        return Err(failure.error);
                    }
                    let to = match rung {
                        FlowRung::Symbolic => FlowRung::SymbolicRestricted,
                        _ => FlowRung::Explicit,
                    };
                    degradations.push(degradation_event(
                        &failure.stage,
                        &failure.trigger,
                        budget.as_ref(),
                        start,
                        rung,
                        to,
                    ));
                    if to == FlowRung::Explicit {
                        break;
                    }
                    rung = to;
                }
                // By-design routing (explicit solver selected, wrong seed,
                // typed solver failure): not a degradation.
                RungAttempt::Route => break,
            }
        }
    }

    // The explicit rung.  A governed run skips it — descending straight to
    // the partial report — when the design cannot fit the explicit engine
    // or the deadline is already spent.
    if guarded {
        let skip = if signals > 64 {
            Some(format!("{signals} signals exceed the 64-signal explicit limit"))
        } else if deadline_passed(budget.as_ref()) {
            Some("deadline exhausted before the explicit rung".to_owned())
        } else {
            None
        };
        if let Some(trigger) = skip {
            degradations.push(degradation_event(
                "flow",
                &trigger,
                budget.as_ref(),
                start,
                FlowRung::Explicit,
                FlowRung::PartialReport,
            ));
            return Ok(partial_report(model, options, start, degradations, diagnosis));
        }
    }

    match explicit_pipeline(model, options, budget.as_ref(), start) {
        Ok(mut report) => {
            report.degradations = degradations;
            Ok(report)
        }
        Err(error) if guarded && !options.no_fallback => {
            degradations.push(degradation_event(
                "flow",
                &error.to_string(),
                budget.as_ref(),
                start,
                FlowRung::Explicit,
                FlowRung::PartialReport,
            ));
            Ok(partial_report(model, options, start, degradations, diagnosis))
        }
        Err(error) => Err(error),
    }
}

/// Why a symbolic rung was abandoned (ladder-internal).
struct RungFailure {
    error: CscError,
    stage: String,
    trigger: String,
}

impl RungFailure {
    fn budget(trip: BudgetExceeded) -> Self {
        RungFailure {
            stage: trip.stage.clone(),
            trigger: trip.to_string(),
            error: CscError::Budget(trip),
        }
    }

    fn not_converged(iterations: usize) -> Self {
        RungFailure {
            stage: "reachability".to_owned(),
            trigger: format!("reachability fixpoint not converged after {iterations} iterations"),
            error: CscError::NotConverged { iterations },
        }
    }
}

enum RungAttempt {
    /// The rung completed; the report still needs its ladder trail.
    Done(Box<FlowReport>),
    /// A governor fired: descend the ladder (or surface the typed error
    /// under [`FlowOptions::no_fallback`]).
    Degrade(RungFailure),
    /// Fall through to the explicit pipeline by design — wrong seed, a
    /// typed solver failure, or the explicit solver being selected.  Not a
    /// degradation.
    Route,
}

/// One symbolic attempt: analyze, and if a CSC conflict surfaces with the
/// symbolic solver selected, insert state signals and re-analyze.
fn symbolic_rung(
    model: &Stg,
    options: &FlowOptions,
    reach: &ReachabilityConfig,
    start: Instant,
    diagnosis: &mut Vec<LogicDiagnostic>,
) -> RungAttempt {
    match analyze_stg_with(model, options.initial_code, reach) {
        Ok(analysis) => RungAttempt::Done(Box::new(symbolic_report(
            model, options, &analysis, None, reach, start,
        ))),
        Err(LogicError::Budget(trip)) => RungAttempt::Degrade(RungFailure::budget(trip)),
        Err(LogicError::ReachabilityNotConverged { iterations }) => {
            RungAttempt::Degrade(RungFailure::not_converged(iterations))
        }
        // A genuine CSC conflict with the symbolic solver selected: resolve
        // it by state-signal insertion on BDDs, then re-analyze the encoded
        // STG — still no explicit state graph anywhere.
        Err(csc_violation @ LogicError::CscViolation { .. }) => {
            *diagnosis = vec![LogicDiagnostic::from(&csc_violation)];
            if options.strategy != SolverStrategy::Symbolic {
                return RungAttempt::Route;
            }
            match solve_stg_symbolic_with(model, &options.solver, options.initial_code, reach) {
                Ok(solution) => {
                    match analyze_stg_with(&solution.stg, options.initial_code, reach) {
                        Ok(analysis) => {
                            diagnosis.clear();
                            RungAttempt::Done(Box::new(symbolic_report(
                                model,
                                options,
                                &analysis,
                                Some(&solution),
                                reach,
                                start,
                            )))
                        }
                        Err(LogicError::Budget(trip)) => {
                            RungAttempt::Degrade(RungFailure::budget(trip))
                        }
                        Err(LogicError::ReachabilityNotConverged { iterations }) => {
                            RungAttempt::Degrade(RungFailure::not_converged(iterations))
                        }
                        Err(_) => RungAttempt::Route,
                    }
                }
                Err(CscError::Budget(trip)) => RungAttempt::Degrade(RungFailure::budget(trip)),
                Err(CscError::NotConverged { iterations }) => {
                    RungAttempt::Degrade(RungFailure::not_converged(iterations))
                }
                // No candidate, signal limit, inconsistent insertion: the
                // explicit pipeline is the fallback.
                Err(_) => RungAttempt::Route,
            }
        }
        // Wrong seed or another structural failure: the explicit pipeline
        // is the ground truth fallback.
        Err(_) => RungAttempt::Route,
    }
}

/// Synthesizes the gate netlist from derived functions and — when
/// requested and an encoded STG is available — closes the loop by
/// verifying the circuit against it under the flow's budget.
fn build_netlist_stage(
    name: &str,
    signals: &[(String, bool)],
    functions: &logic::NextStateFunctions,
    verify_against: Option<(&Stg, u64)>,
    verify_requested: bool,
    reach: &ReachabilityConfig,
) -> Option<NetlistStage> {
    let build_start = Instant::now();
    // The functions were derived from the same signal space, so synthesis
    // cannot fail; a typed error here still degrades to "no netlist stage"
    // rather than failing the flow.
    let circuit = netlist::synthesize_named(name, signals, functions).ok()?;
    let build_ms = build_start.elapsed().as_secs_f64() * 1e3;
    let gates = circuit.gates.len();
    let c_elements = circuit.c_elements();
    let literals = circuit.literals();
    let mut verify_ms = 0.0;
    let verdict = if !verify_requested {
        NetlistVerdict::NotRequested
    } else {
        match verify_against {
            None => {
                NetlistVerdict::Aborted { reason: "no encoded STG to verify against".to_owned() }
            }
            Some((stg, initial_code)) => {
                let verify_start = Instant::now();
                let outcome = netlist::verify(stg, &circuit, initial_code, reach);
                verify_ms = verify_start.elapsed().as_secs_f64() * 1e3;
                match outcome {
                    Ok(v) if v.passed() => NetlistVerdict::Verified { states_f64: v.states_f64 },
                    Ok(v) => NetlistVerdict::Failed { diagnostics: v.diagnostics },
                    Err(e) => NetlistVerdict::Aborted { reason: e.to_string() },
                }
            }
        }
    };
    Some(NetlistStage { circuit, gates, c_elements, literals, build_ms, verify_ms, verdict })
}

/// Signal descriptors `(name, is_input)` of an STG, for netlist synthesis.
fn signal_descriptors(stg: &Stg) -> Vec<(String, bool)> {
    stg.signals().iter().map(|s| (s.name.clone(), !s.kind.is_non_input())).collect()
}

/// Builds the report of a successful symbolic rung.  With `solution`, the
/// analysis describes the solver's encoded output STG; without it, the
/// input already satisfied CSC.
fn symbolic_report(
    model: &Stg,
    options: &FlowOptions,
    analysis: &SymbolicLogicReport,
    solution: Option<&SymbolicSolution>,
    reach: &ReachabilityConfig,
    start: Instant,
) -> FlowReport {
    let (places, transitions, signals) = model.stats();
    let area = area_of_functions(&analysis.functions);
    let final_states = saturating_usize(analysis.markings);
    let (states, states_f64, initial_conflicts) = match solution {
        Some(solution) => (
            solution.stats.initial_states,
            solution.initial_states_f64,
            solution.stats.initial_conflicts,
        ),
        None => (final_states, analysis.markings, 0),
    };
    let netlist = if options.estimate_area {
        let encoded: &Stg = solution.map_or(model, |s| &s.stg);
        build_netlist_stage(
            encoded.name(),
            &signal_descriptors(encoded),
            &analysis.functions,
            Some((encoded, options.initial_code)),
            options.verify_netlist,
            reach,
        )
    } else {
        None
    };
    FlowReport {
        name: model.name().to_owned(),
        places,
        transitions,
        signals,
        states,
        states_f64,
        initial_conflicts,
        csc_satisfied: true,
        inserted_signals: solution.map_or(0, |s| s.inserted_signals.len()),
        final_states,
        literals: options.estimate_area.then_some(area.total_literals),
        cubes: options.estimate_area.then_some(area.total_cubes),
        logic_bdd_nodes: options.estimate_area.then_some(area.bdd_nodes),
        logic_strategy: LogicStrategy::Symbolic,
        solver_strategy: if solution.is_some() {
            SolverStrategy::Symbolic
        } else {
            options.strategy
        },
        logic_diagnostics: analysis.diagnostics.clone(),
        fully_symbolic: true,
        // The solver's output (or the input itself) *is* an STG — the
        // hand-back the paper asks for.
        resynthesized: true,
        cpu_seconds: start.elapsed().as_secs_f64(),
        stage: solution.map_or_else(StageStats::default, |s| s.stats.stage),
        jobs: solution.map_or_else(|| options.solver.effective_jobs(), |s| s.stats.jobs),
        rung: FlowRung::Symbolic,
        degradations: Vec::new(),
        netlist,
    }
}

/// The explicit pipeline: state graph, conflict detection, region-based
/// solving and logic estimation — rung 3 of the ladder and the pinned path
/// under [`LogicStrategy::Explicit`].
fn explicit_pipeline(
    model: &Stg,
    options: &FlowOptions,
    budget: Option<&Budget>,
    start: Instant,
) -> Result<FlowReport, CscError> {
    let (places, transitions, signals) = model.stats();
    let sg = model.state_graph(options.max_states)?;
    let initial_graph = EncodedGraph::from_state_graph(&sg);
    let initial_conflicts = conflict_pairs(&initial_graph).len();

    let mut config = options.solver.clone();
    config.max_states = options.max_states;
    // Share the flow's governor so the explicit solver honours the same
    // deadline (node/step ceilings do not apply to it — it allocates no
    // BDD nodes).
    config.budget = budget.cloned();
    let solution: CscSolution = csc::solve_state_graph(&sg, &config)?;

    let mut logic_diagnostics = logic::output_persistency_violations(&solution.graph);
    let mut netlist = None;
    let (literals, cubes, logic_bdd_nodes) = if options.estimate_area {
        match logic::derive_next_state_functions_with(&solution.graph, options.logic) {
            Ok(functions) => {
                let area = area_of_functions(&functions);
                let signals: Vec<(String, bool)> = solution
                    .graph
                    .signals
                    .iter()
                    .map(|s| (s.name.clone(), !s.kind.is_non_input()))
                    .collect();
                // The re-synthesized STG shares the graph's signal order, so
                // the graph's initial code seeds the verification correctly.
                let initial_code = solution.graph.code(solution.graph.ts.initial());
                let reach =
                    ReachabilityConfig { budget: budget.cloned(), ..ReachabilityConfig::default() };
                netlist = build_netlist_stage(
                    model.name(),
                    &signals,
                    &functions,
                    solution.stg.as_ref().map(|stg| (stg, initial_code)),
                    options.verify_netlist,
                    &reach,
                );
                (
                    Some(area.total_literals),
                    Some(area.total_cubes),
                    (options.logic == LogicStrategy::Symbolic).then_some(area.bdd_nodes),
                )
            }
            Err(error) => {
                logic_diagnostics.push(LogicDiagnostic::from(&error));
                (None, None, None)
            }
        }
    } else {
        (None, None, None)
    };

    let _ = solve_stg; // re-exported path kept for doc visibility
    Ok(FlowReport {
        name: model.name().to_owned(),
        places,
        transitions,
        signals,
        states: sg.num_states(),
        states_f64: sg.num_states() as f64,
        initial_conflicts,
        csc_satisfied: solution.graph.complete_state_coding_holds(),
        inserted_signals: solution.inserted_signals.len(),
        final_states: solution.graph.num_states(),
        literals,
        cubes,
        logic_bdd_nodes,
        logic_strategy: options.logic,
        solver_strategy: SolverStrategy::Explicit,
        logic_diagnostics,
        fully_symbolic: false,
        resynthesized: solution.stg.is_some(),
        cpu_seconds: start.elapsed().as_secs_f64(),
        stage: solution.stats.stage,
        jobs: solution.stats.jobs,
        rung: FlowRung::Explicit,
        degradations: Vec::new(),
        netlist,
    })
}

/// The last rung: everything the run still knows, nothing it does not.
fn partial_report(
    model: &Stg,
    options: &FlowOptions,
    start: Instant,
    degradations: Vec<DegradationEvent>,
    diagnosis: Vec<LogicDiagnostic>,
) -> FlowReport {
    let (places, transitions, signals) = model.stats();
    FlowReport {
        name: model.name().to_owned(),
        places,
        transitions,
        signals,
        states: 0,
        states_f64: 0.0,
        initial_conflicts: 0,
        csc_satisfied: false,
        inserted_signals: 0,
        final_states: 0,
        literals: None,
        cubes: None,
        logic_bdd_nodes: None,
        logic_strategy: options.logic,
        solver_strategy: options.strategy,
        logic_diagnostics: diagnosis,
        fully_symbolic: false,
        resynthesized: false,
        cpu_seconds: start.elapsed().as_secs_f64(),
        stage: StageStats::default(),
        jobs: options.solver.effective_jobs(),
        rung: FlowRung::PartialReport,
        degradations,
        netlist: None,
    }
}

fn degradation_event(
    stage: &str,
    trigger: &str,
    budget: Option<&Budget>,
    start: Instant,
    from: FlowRung,
    to: FlowRung,
) -> DegradationEvent {
    DegradationEvent {
        stage: stage.to_owned(),
        trigger: trigger.to_owned(),
        nodes_spent: budget.map_or(0, Budget::nodes_spent),
        elapsed_ms: start.elapsed().as_millis() as u64,
        from,
        to,
    }
}

/// Whether the budget's wall-clock deadline (or a cooperative cancel) has
/// already fired — the guard on entering the explicit rung, whose own
/// checks are coarser (once per solver stage).
fn deadline_passed(budget: Option<&Budget>) -> bool {
    budget.is_some_and(|b| {
        b.is_cancelled() || b.deadline_ms().is_some_and(|deadline| b.elapsed_ms() >= deadline)
    })
}

fn saturating_usize(count: f64) -> usize {
    if count >= usize::MAX as f64 {
        usize::MAX
    } else {
        count.round() as usize
    }
}

/// Renders a collection of reports as an aligned text table (one row per
/// model), in the spirit of Table 2 of the paper.
pub fn render_table(reports: &[FlowReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>10} {:>10} {:>8} {:>8} {:>7} {:>9} {:>8}\n",
        "benchmark", "states", "conflicts", "signals", "area", "cubes", "cpu[s]", "csc"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<18} {:>10} {:>10} {:>8} {:>8} {:>7} {:>9.3} {:>8}\n",
            r.name,
            render_state_count(r.states, r.states_f64),
            r.initial_conflicts,
            r.inserted_signals,
            r.literals.map_or_else(|| "-".to_owned(), |l| l.to_string()),
            r.cubes.map_or_else(|| "-".to_owned(), |c| c.to_string()),
            r.cpu_seconds,
            if r.csc_satisfied { "yes" } else { "no" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_on_the_vme_controller() {
        let report = run_flow(&stg::benchmarks::vme_read(), &FlowOptions::default()).unwrap();
        assert!(report.csc_satisfied);
        assert!(report.inserted_signals >= 1);
        assert!(report.literals.unwrap() > 0);
        assert!(report.cubes.unwrap() > 0);
        assert_eq!(report.signals, 5);
        assert!(
            report.fully_symbolic,
            "vme_read's conflict is now resolved by the symbolic solver: no explicit graph"
        );
        assert_eq!(report.solver_strategy, csc::SolverStrategy::Symbolic);
        assert!(report.logic_diagnostics.is_empty());
        let text = report.to_string();
        assert!(text.contains("vme_read"));
        assert!(text.contains("CSC satisfied"));
        assert!(text.contains("csc solver  : symbolic engine"));
        assert!(text.contains("symbolic engine"));
    }

    #[test]
    fn explicit_solver_strategy_remains_selectable() {
        let options =
            FlowOptions { strategy: csc::SolverStrategy::Explicit, ..FlowOptions::default() };
        let report = run_flow(&stg::benchmarks::vme_read(), &options).unwrap();
        assert!(report.csc_satisfied);
        assert!(!report.fully_symbolic, "the explicit strategy builds the state graph");
        assert_eq!(report.solver_strategy, csc::SolverStrategy::Explicit);
        assert!(report.inserted_signals >= 1);
    }

    #[test]
    fn conflict_free_models_stay_fully_symbolic() {
        let report =
            run_flow(&stg::benchmarks::parallel_handshakes(3), &FlowOptions::default()).unwrap();
        assert!(report.fully_symbolic);
        assert!(report.csc_satisfied);
        assert_eq!(report.inserted_signals, 0);
        assert_eq!(report.states, 64, "4^3 states");
        assert_eq!(report.literals.unwrap(), 3, "each ack follows its req");
        let explicit = run_flow(
            &stg::benchmarks::parallel_handshakes(3),
            &FlowOptions { logic: LogicStrategy::Explicit, ..FlowOptions::default() },
        )
        .unwrap();
        assert!(!explicit.fully_symbolic);
        assert_eq!(explicit.literals.unwrap(), report.literals.unwrap());
    }

    #[test]
    fn wide_designs_run_end_to_end_symbolically() {
        // 70 signals: impossible for the explicit path (u64 codes), routine
        // for the symbolic one.
        let report =
            run_flow(&stg::benchmarks::parallel_handshakes(35), &FlowOptions::default()).unwrap();
        assert!(report.fully_symbolic);
        assert!(report.csc_satisfied);
        assert_eq!(report.signals, 70);
        assert_eq!(report.literals.unwrap(), 35);
        assert!(report.states_f64 > 1e21, "4^35 states");
        let text = report.to_string();
        assert!(text.contains("symbolic engine"));
    }

    #[test]
    fn symbolic_first_reports_persistency_diagnostics() {
        // CSC holds on this free output choice, so the flow stays fully
        // symbolic — but it must still report that neither output is
        // persistent instead of silently declaring the design implementable.
        use stg::{Polarity, SignalKind, StgBuilder};
        let mut bld = StgBuilder::new("choice");
        let x = bld.add_signal("x", SignalKind::Input);
        let a = bld.add_signal("a", SignalKind::Output);
        let b = bld.add_signal("b", SignalKind::Output);
        let xp = bld.add_edge(x, Polarity::Rise);
        let ap = bld.add_edge(a, Polarity::Rise);
        let xma = bld.add_edge(x, Polarity::Fall);
        let am = bld.add_edge(a, Polarity::Fall);
        let bp = bld.add_edge(b, Polarity::Rise);
        let xmb = bld.add_edge(x, Polarity::Fall);
        let bm = bld.add_edge(b, Polarity::Fall);
        let choice = bld.add_place("choice", false);
        bld.arc_transition_to_place(xp, choice);
        bld.arc_place_to_transition(choice, ap);
        bld.arc_place_to_transition(choice, bp);
        bld.connect(ap, xma, false);
        bld.connect(xma, am, false);
        bld.connect(bp, xmb, false);
        bld.connect(xmb, bm, false);
        let idle = bld.add_place("idle", true);
        bld.arc_transition_to_place(am, idle);
        bld.arc_transition_to_place(bm, idle);
        bld.arc_place_to_transition(idle, xp);
        let model = bld.build().unwrap();

        let report = run_flow(&model, &FlowOptions::default()).unwrap();
        assert!(report.fully_symbolic);
        assert!(report.csc_satisfied);
        assert_eq!(report.logic_diagnostics.len(), 2, "{:?}", report.logic_diagnostics);
        assert!(report
            .logic_diagnostics
            .iter()
            .all(|d| matches!(d, LogicDiagnostic::OutputNotPersistent { .. })));
        let text = report.to_string();
        assert!(text.contains("not persistent"), "{text}");
    }

    #[test]
    fn wrongly_seeded_symbolic_first_falls_back_to_the_explicit_graph() {
        // The re-synthesized pulser's signals do not all start at 0, so the
        // all-zero symbolic seed truncates its reachable space.  The flow
        // must detect that and fall back to the explicit pipeline instead of
        // reporting the truncated space's (much smaller) logic.
        let solution =
            csc::solve_stg(&stg::benchmarks::pulser(), &csc::SolverConfig::default()).unwrap();
        let encoded = solution.stg.expect("pulser re-synthesizes");
        let report = run_flow(&encoded, &FlowOptions::default()).unwrap();
        assert!(!report.fully_symbolic, "a bad seed must not stay fully symbolic");
        let explicit = run_flow(
            &encoded,
            &FlowOptions { logic: LogicStrategy::Explicit, ..FlowOptions::default() },
        )
        .unwrap();
        assert_eq!(report.literals, explicit.literals);
        assert_eq!(report.cubes, explicit.cubes);
        assert_eq!(report.states, explicit.states);
    }

    #[test]
    fn table_rendering_includes_every_model() {
        let reports = vec![
            run_flow(&stg::benchmarks::handshake(), &FlowOptions::default()).unwrap(),
            run_flow(&stg::benchmarks::pulser(), &FlowOptions::default()).unwrap(),
        ];
        let table = render_table(&reports);
        assert!(table.contains("handshake"));
        assert!(table.contains("pulser"));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn baseline_options_use_excitation_regions() {
        let options = FlowOptions::baseline();
        assert_eq!(options.solver.candidate_source, csc::CandidateSource::ExcitationRegions);
    }

    #[test]
    fn reports_carry_solver_stage_stats() {
        let mut options = FlowOptions::default();
        options.solver.jobs = 2;
        options.strategy = csc::SolverStrategy::Explicit;
        let report = run_flow(&stg::benchmarks::pulser(), &options).unwrap();
        assert_eq!(report.jobs, 2);
        assert!(report.stage.candidates_evaluated > 0);
        let text = report.to_string();
        assert!(text.contains("solver      :") && text.contains("jobs=2"));
        let table = render_stage_table(&report);
        assert!(table.contains("block search"));
        assert!(table.contains("candidates evaluated"));
        assert!(table.contains("solver engine"));
        assert!(table.contains("logic engine"));
        assert!(table.contains("logic literals"));
        assert!(table.contains("logic bdd nodes"));
        assert!(table.lines().count() >= 10);

        // The symbolic solver fills the same stage counters.
        let symbolic = run_flow(&stg::benchmarks::pulser(), &FlowOptions::default()).unwrap();
        assert!(symbolic.fully_symbolic);
        assert!(symbolic.stage.candidates_evaluated > 0);
        assert!(render_stage_table(&symbolic).contains("solver engine"));
    }

    /// The DegradationEvent trail of a report as `(from, to)` pairs.
    fn trail(report: &FlowReport) -> Vec<(FlowRung, FlowRung)> {
        report.degradations.iter().map(|d| (d.from, d.to)).collect()
    }

    #[test]
    fn node_budget_trip_descends_to_the_explicit_rung_and_still_solves() {
        // A 64-node ceiling trips during the very first reachability, the
        // restricted retry trips on the already-exhausted shared budget, and
        // the explicit rung (5 signals, no deadline) finishes the job.
        let options = FlowOptions { node_budget: Some(64), ..FlowOptions::default() };
        let report = run_flow(&stg::benchmarks::pulser(), &options).unwrap();
        assert_eq!(report.rung, FlowRung::Explicit);
        assert!(report.csc_satisfied);
        assert!(report.inserted_signals >= 1);
        assert!(!report.fully_symbolic);
        assert_eq!(
            trail(&report),
            vec![
                (FlowRung::Symbolic, FlowRung::SymbolicRestricted),
                (FlowRung::SymbolicRestricted, FlowRung::Explicit),
            ]
        );
        assert_eq!(report.degradations[0].stage, "reachability");
        assert!(
            report.degradations[0].trigger.contains("nodes allocated"),
            "{}",
            report.degradations[0].trigger
        );
        assert!(report.degradations[0].nodes_spent > 64);
        let text = report.to_string();
        assert!(text.contains("rung        : explicit"), "{text}");
        assert!(text.contains("~~ degraded"), "{text}");
    }

    #[test]
    fn wide_designs_skip_the_explicit_rung_and_end_in_a_partial_report() {
        // 70 signals: when the node budget kills both symbolic rungs there
        // is no explicit rung to descend to, so the ladder must record the
        // skip and return a diagnosis-only report instead of an error.
        let options = FlowOptions { node_budget: Some(64), ..FlowOptions::default() };
        let report = run_flow(&stg::benchmarks::parallel_handshakes(35), &options).unwrap();
        assert_eq!(report.rung, FlowRung::PartialReport);
        assert!(!report.csc_satisfied);
        assert_eq!(report.inserted_signals, 0);
        assert!(report.literals.is_none());
        assert_eq!(
            trail(&report),
            vec![
                (FlowRung::Symbolic, FlowRung::SymbolicRestricted),
                (FlowRung::SymbolicRestricted, FlowRung::Explicit),
                (FlowRung::Explicit, FlowRung::PartialReport),
            ]
        );
        let skip = report.degradations.last().unwrap();
        assert_eq!(skip.stage, "flow");
        assert!(skip.trigger.contains("64-signal explicit limit"), "{}", skip.trigger);
        // Ladder descent is monotone.
        for window in report.degradations.windows(2) {
            assert!(window[0].to <= window[1].from);
        }
        assert!(render_stage_table(&report).contains("partial-report"));
    }

    #[test]
    fn no_fallback_surfaces_the_typed_budget_error() {
        let options =
            FlowOptions { node_budget: Some(64), no_fallback: true, ..FlowOptions::default() };
        let err = run_flow(&stg::benchmarks::pulser(), &options).unwrap_err();
        match err {
            CscError::Budget(trip) => {
                assert_eq!(trip.resource, bdd::Resource::Nodes);
                assert_eq!(trip.stage, "reachability");
                assert!(trip.spent > trip.limit);
            }
            other => panic!("expected a budget trip, got {other}"),
        }
    }

    #[test]
    fn deadline_trips_surface_in_the_candidate_search() {
        // The conflicted wide family spends almost all its time in the
        // candidate search, so a deadline placed at a fraction of the
        // unbudgeted runtime lands there.  Machine speed varies; adapt the
        // deadline until the trip lands in the search stage.
        let model = stg::benchmarks::wide_conflict(12);
        let unbudgeted = Instant::now();
        run_flow(&model, &FlowOptions::default()).unwrap();
        let total_ms = unbudgeted.elapsed().as_millis() as u64;
        let mut timeout_ms = (total_ms / 3).max(10);
        for _ in 0..12 {
            let options = FlowOptions { timeout_ms: Some(timeout_ms), ..FlowOptions::default() };
            let run_started = Instant::now();
            let report = run_flow(&model, &options).unwrap();
            let ran_ms = run_started.elapsed().as_millis() as u64;
            if report.rung != FlowRung::PartialReport {
                // The whole solve beat the deadline: tighten it.
                timeout_ms = (timeout_ms / 2).max(5);
                continue;
            }
            // Deadline adherence: the governed run must stop within the
            // deadline plus scheduling slack, never run away.
            assert!(
                ran_ms < timeout_ms + 2_000,
                "ran {ran_ms} ms under a {timeout_ms} ms deadline"
            );
            let first = &report.degradations[0];
            assert!(first.trigger.contains("deadline"), "{}", first.trigger);
            if first.stage == "candidate-search" {
                assert_eq!(first.from, FlowRung::Symbolic);
                assert_eq!(report.degradations.last().unwrap().to, FlowRung::PartialReport);
                return;
            }
            // The deadline landed inside a reachability sub-step (machine
            // speed skew): nudge it and scan for the search window.
            timeout_ms = timeout_ms.saturating_mul(3) / 2;
        }
        panic!("the candidate search never hit the deadline");
    }
}
