//! `rsynth` — command-line driver for region-based state encoding.
//!
//! ```text
//! rsynth --benchmark vme_read              # run a built-in benchmark
//! rsynth path/to/model.g                   # read an STG in .g format
//! rsynth --benchmark seq8 --baseline       # excitation-region baseline
//! rsynth --benchmark counter4 --jobs 4     # parallel candidate evaluation
//! rsynth --benchmark par_hs40 --logic symbolic  # >64 signals, no explicit graph
//! rsynth --benchmark seq8 --logic explicit # force the per-state logic engine
//! rsynth --benchmark wide_conflict32 --solver symbolic  # conflicted, 66 signals
//! rsynth --benchmark vme_read --solver explicit  # force the state-graph solver
//! rsynth --benchmark wide_conflict32 --node-budget 200000 --timeout-ms 5000
//! rsynth --list                            # list built-in benchmarks
//! rsynth path/to/model.g --write-g out.g   # write the encoded STG back
//! ```

use std::process::ExitCode;
use synthkit::{render_stage_table, run_flow, FlowOptions};

fn print_usage() {
    eprintln!(
        "usage: rsynth [<model.g>] [--benchmark <name>] [options]

input:
  <model.g>                 read an STG in the .g interchange format
  --benchmark <name>        run a built-in benchmark (see --list)
  --list                    list the built-in benchmarks and exit

solver:
  --solver symbolic|explicit  CSC solver: BDD state-signal insertion (the
                            default; no signal-count limit, output is an
                            encoded STG) or the explicit state-graph
                            pipeline (capped at 64 signals)
  --baseline                excitation-region candidates only (the
                            ASSASSIN-style Table 2 baseline, explicit)
  --fw <n>                  frontier width of the block search (default 4)
  --jobs <n>                candidate-evaluation threads for the explicit
                            solver (0 = auto, 1 = sequential; the result is
                            identical for every value)
  --enlarge                 greedily enlarge inserted-signal concurrency

logic:
  --logic symbolic|explicit next-state function derivation: interval-ISOP
                            on BDDs (default) or the per-state engine
                            (explicit implies the explicit pipeline end to
                            end and cannot combine with --solver symbolic)
  --no-area                 skip the logic derivation / area estimate

resources:
  --node-budget <n>         cap the BDD nodes the flow may allocate; on
                            overrun the flow degrades rung by rung
                            (symbolic, symbolic-restricted, explicit,
                            partial report) instead of running away
  --timeout-ms <n>          cooperative wall-clock deadline for the whole
                            flow, in milliseconds
  --no-fallback             surface the typed budget error instead of
                            descending the degradation ladder

output:
  --emit eqn|verilog        print the synthesized gate netlist (complex
                            gates and generalized C-elements) after the
                            report, as Berkeley .eqn equations or
                            structural Verilog
  --verify-netlist          symbolically verify the emitted netlist against
                            the encoded STG: speed independence and
                            projection-trace equivalence, budget-governed
  --write-g <path>          write the encoded STG back in .g format
  --help, -h                show this help"
    );
}

fn builtin(name: &str) -> Option<stg::Stg> {
    match name {
        "handshake" => Some(stg::benchmarks::handshake()),
        "pulser" => Some(stg::benchmarks::pulser()),
        "vme_read" => Some(stg::benchmarks::vme_read()),
        "master_read_like" => Some(stg::benchmarks::master_read_like()),
        "arbiter" => Some(stg::benchmarks::arbiter()),
        "mixed_handshake" => Some(stg::benchmarks::mixed_handshake()),
        _ => {
            if let Some(n) = name.strip_prefix("pipe4_") {
                return n.parse().ok().map(stg::benchmarks::pipeline_4ph);
            }
            if let Some(n) = name.strip_prefix("pipe2_") {
                return n.parse().ok().map(stg::benchmarks::pipeline_2ph);
            }
            if let Some(n) = name.strip_prefix("seq") {
                return n.parse().ok().map(stg::benchmarks::sequencer);
            }
            if let Some(n) = name.strip_prefix("counter") {
                return n.parse().ok().map(stg::benchmarks::counter);
            }
            if let Some(n) = name.strip_prefix("par_hs") {
                return n.parse().ok().map(stg::benchmarks::parallel_handshakes);
            }
            if let Some(n) = name.strip_prefix("pulser_bank") {
                return n.parse().ok().map(stg::benchmarks::pulser_bank);
            }
            if let Some(n) = name.strip_prefix("wide_conflict") {
                return n.parse().ok().map(stg::benchmarks::wide_conflict);
            }
            if let Some(n) = name.strip_prefix("par") {
                return n.parse().ok().map(stg::benchmarks::parallelizer);
            }
            None
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum EmitFormat {
    Eqn,
    Verilog,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input_path: Option<String> = None;
    let mut benchmark: Option<String> = None;
    let mut options = FlowOptions::default();
    let mut write_g: Option<String> = None;
    let mut emit: Option<EmitFormat> = None;
    let mut explicit_logic = false;
    let mut symbolic_solver = false;
    let mut index = 0;
    while index < args.len() {
        match args[index].as_str() {
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            "--list" => {
                println!("built-in benchmarks:");
                for (name, _, _) in stg::benchmarks::table2_suite() {
                    println!("  {name}");
                }
                println!("gate-level corpus:");
                for (name, _, _) in stg::benchmarks::corpus_suite() {
                    println!("  {name}");
                }
                println!(
                    "  parN, par_hsN, seqN, counterN, pulser_bankN, wide_conflictN, \
                     pipe4_N, pipe2_N (parameterised)"
                );
                return ExitCode::SUCCESS;
            }
            "--baseline" => options.solver = csc::SolverConfig::excitation_region_baseline(),
            "--enlarge" => options.solver.enlarge_concurrency = true,
            "--no-area" => options.estimate_area = false,
            "--fw" => {
                index += 1;
                match args.get(index).and_then(|v| v.parse().ok()) {
                    Some(fw) => options.solver.frontier_width = fw,
                    None => {
                        eprintln!("--fw needs a positive integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--jobs" => {
                index += 1;
                match args.get(index).and_then(|v| v.parse().ok()) {
                    Some(jobs) => options.solver.jobs = jobs,
                    None => {
                        eprintln!("--jobs needs an integer (0 = auto, 1 = sequential)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--logic" => {
                index += 1;
                match args.get(index).map(String::as_str) {
                    Some("symbolic") => options.logic = logic::LogicStrategy::Symbolic,
                    Some("explicit") => {
                        options.logic = logic::LogicStrategy::Explicit;
                        explicit_logic = true;
                    }
                    _ => {
                        eprintln!("--logic needs 'symbolic' or 'explicit'");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--solver" => {
                index += 1;
                match args.get(index).map(String::as_str) {
                    Some("symbolic") => {
                        options.strategy = csc::SolverStrategy::Symbolic;
                        symbolic_solver = true;
                    }
                    Some("explicit") => options.strategy = csc::SolverStrategy::Explicit,
                    _ => {
                        eprintln!("--solver needs 'symbolic' or 'explicit'");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--node-budget" => {
                index += 1;
                match args.get(index).and_then(|v| v.parse().ok()) {
                    Some(nodes) => options.node_budget = Some(nodes),
                    None => {
                        eprintln!("--node-budget needs a positive integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--timeout-ms" => {
                index += 1;
                match args.get(index).and_then(|v| v.parse().ok()) {
                    Some(ms) => options.timeout_ms = Some(ms),
                    None => {
                        eprintln!("--timeout-ms needs a positive integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--no-fallback" => options.no_fallback = true,
            "--verify-netlist" => options.verify_netlist = true,
            "--emit" => {
                index += 1;
                match args.get(index).map(String::as_str) {
                    Some("eqn") => emit = Some(EmitFormat::Eqn),
                    Some("verilog") => emit = Some(EmitFormat::Verilog),
                    _ => {
                        eprintln!("--emit needs 'eqn' or 'verilog'");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--benchmark" => {
                index += 1;
                benchmark = args.get(index).cloned();
            }
            "--write-g" => {
                index += 1;
                write_g = args.get(index).cloned();
            }
            other if !other.starts_with('-') => input_path = Some(other.to_owned()),
            other => {
                eprintln!("unknown option '{other}'");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
        index += 1;
    }

    if explicit_logic && symbolic_solver {
        eprintln!(
            "--solver symbolic rides on the symbolic analysis and cannot be combined with \
             --logic explicit (the explicit logic engine implies the explicit pipeline)"
        );
        return ExitCode::FAILURE;
    }

    let model = match (&input_path, &benchmark) {
        (Some(path), _) => match std::fs::read_to_string(path) {
            Ok(text) => match stg::parse_g(&text) {
                Ok(model) => model,
                Err(e) => {
                    eprintln!("failed to parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("failed to read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        (None, Some(name)) => match builtin(name) {
            Some(model) => model,
            None => {
                eprintln!("unknown benchmark '{name}' (try --list)");
                return ExitCode::FAILURE;
            }
        },
        (None, None) => {
            print_usage();
            return ExitCode::FAILURE;
        }
    };

    // Structural validation runs before any reachability analysis: errors
    // describe nets without a well-defined safe state graph, so the flow
    // would only fail later and deeper.  Warnings are advisory.
    let validation = stg::validate(&model);
    for warning in validation.warnings() {
        eprintln!("warning: {warning}");
    }
    if validation.has_errors() {
        for error in validation.errors() {
            eprintln!("error: {error}");
        }
        eprintln!("the STG failed structural validation; refusing to start the flow");
        return ExitCode::FAILURE;
    }

    match run_flow(&model, &options) {
        Ok(report) => {
            println!("{report}");
            println!("\n{}", render_stage_table(&report));
            if let Some(format) = emit {
                match &report.netlist {
                    Some(stage) => {
                        let text = match format {
                            EmitFormat::Eqn => stage.circuit.to_eqn(),
                            EmitFormat::Verilog => stage.circuit.to_verilog(),
                        };
                        println!("\n{text}");
                    }
                    None => eprintln!(
                        "no netlist was synthesized (area estimation disabled or \
                         logic derivation failed); nothing to emit"
                    ),
                }
            }
            if let Some(path) = write_g {
                // Re-solve keeping the STG so we can serialise it.  The
                // symbolic solver's output *is* an STG; the explicit
                // pipeline re-synthesizes one when the encoded state graph
                // is excitation closed.
                let encoded = match options.strategy {
                    csc::SolverStrategy::Symbolic => csc::solve_stg_symbolic_seeded(
                        &model,
                        &options.solver,
                        options.initial_code,
                    )
                    .map(|sol| Some(sol.stg)),
                    csc::SolverStrategy::Explicit => {
                        csc::solve_stg(&model, &options.solver).map(|sol| sol.stg)
                    }
                };
                match encoded {
                    Ok(Some(encoded)) => match std::fs::write(&path, encoded.to_g()) {
                        Ok(()) => println!("encoded STG written to {path}"),
                        Err(e) => eprintln!("could not write {path}: {e}"),
                    },
                    Ok(None) => eprintln!(
                        "the encoded state graph is not excitation closed; no STG was written"
                    ),
                    Err(e) => eprintln!("re-synthesis failed: {e}"),
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("state encoding failed: {e}");
            ExitCode::FAILURE
        }
    }
}
