//! Snapshot test of the `rsynth` usage text: every current flag must be
//! documented, and the help must not drift from the option parser without
//! this test noticing.

use std::process::Command;

/// Runs the built `rsynth` binary with the given arguments.
fn rsynth(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_rsynth")).args(args).output().expect("rsynth binary runs")
}

const EXPECTED_HELP: &str = "usage: rsynth [<model.g>] [--benchmark <name>] [options]

input:
  <model.g>                 read an STG in the .g interchange format
  --benchmark <name>        run a built-in benchmark (see --list)
  --list                    list the built-in benchmarks and exit

solver:
  --solver symbolic|explicit  CSC solver: BDD state-signal insertion (the
                            default; no signal-count limit, output is an
                            encoded STG) or the explicit state-graph
                            pipeline (capped at 64 signals)
  --baseline                excitation-region candidates only (the
                            ASSASSIN-style Table 2 baseline, explicit)
  --fw <n>                  frontier width of the block search (default 4)
  --jobs <n>                candidate-evaluation threads for the explicit
                            solver (0 = auto, 1 = sequential; the result is
                            identical for every value)
  --enlarge                 greedily enlarge inserted-signal concurrency

logic:
  --logic symbolic|explicit next-state function derivation: interval-ISOP
                            on BDDs (default) or the per-state engine
                            (explicit implies the explicit pipeline end to
                            end and cannot combine with --solver symbolic)
  --no-area                 skip the logic derivation / area estimate

resources:
  --node-budget <n>         cap the BDD nodes the flow may allocate; on
                            overrun the flow degrades rung by rung
                            (symbolic, symbolic-restricted, explicit,
                            partial report) instead of running away
  --timeout-ms <n>          cooperative wall-clock deadline for the whole
                            flow, in milliseconds
  --no-fallback             surface the typed budget error instead of
                            descending the degradation ladder

output:
  --emit eqn|verilog        print the synthesized gate netlist (complex
                            gates and generalized C-elements) after the
                            report, as Berkeley .eqn equations or
                            structural Verilog
  --verify-netlist          symbolically verify the emitted netlist against
                            the encoded STG: speed independence and
                            projection-trace equivalence, budget-governed
  --write-g <path>          write the encoded STG back in .g format
  --help, -h                show this help
";

#[test]
fn help_text_matches_the_snapshot() {
    let out = rsynth(&["--help"]);
    assert!(out.status.success(), "--help exits successfully");
    let text = String::from_utf8(out.stderr).expect("usage text is UTF-8");
    assert_eq!(text, EXPECTED_HELP, "usage text drifted; update the parser or the snapshot");
}

#[test]
fn every_parsed_flag_is_documented() {
    // The option parser and the help text live in the same file; this
    // cross-checks that each flag the parser accepts appears in the help.
    let out = rsynth(&["--help"]);
    let text = String::from_utf8(out.stderr).unwrap();
    for flag in [
        "--benchmark",
        "--list",
        "--solver",
        "--baseline",
        "--fw",
        "--jobs",
        "--enlarge",
        "--logic",
        "--no-area",
        "--node-budget",
        "--timeout-ms",
        "--no-fallback",
        "--emit",
        "--verify-netlist",
        "--write-g",
        "--help",
    ] {
        assert!(text.contains(flag), "flag {flag} missing from the usage text");
    }
}

#[test]
fn unknown_options_fail_with_usage() {
    let out = rsynth(&["--frobnicate"]);
    assert!(!out.status.success());
    let text = String::from_utf8(out.stderr).unwrap();
    assert!(text.contains("unknown option"));
    assert!(text.contains("usage: rsynth"));
}

#[test]
fn contradictory_logic_solver_combination_is_rejected() {
    let out = rsynth(&["--benchmark", "pulser", "--logic", "explicit", "--solver", "symbolic"]);
    assert!(!out.status.success());
    let text = String::from_utf8(out.stderr).unwrap();
    assert!(text.contains("cannot be combined"), "{text}");
    // Either flag alone is fine.
    assert!(rsynth(&["--benchmark", "pulser", "--logic", "explicit"]).status.success());
    assert!(rsynth(&["--benchmark", "pulser", "--solver", "symbolic"]).status.success());
}

#[test]
fn budget_flags_drive_the_degradation_ladder() {
    // A 64-node ceiling is far too small for the symbolic rungs, so the
    // flow descends to the explicit engine and reports the trail.
    let out = rsynth(&["--benchmark", "pulser", "--node-budget", "64"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("rung        : explicit"), "{text}");
    assert!(text.contains("~~ degraded"), "{text}");
    // --no-fallback surfaces the typed budget error instead.
    let out = rsynth(&["--benchmark", "pulser", "--node-budget", "64", "--no-fallback"]);
    assert!(!out.status.success());
    let text = String::from_utf8(out.stderr).unwrap();
    assert!(text.contains("budget exceeded"), "{text}");
    // Malformed values are rejected up front.
    assert!(!rsynth(&["--benchmark", "pulser", "--node-budget", "lots"]).status.success());
    assert!(!rsynth(&["--benchmark", "pulser", "--timeout-ms", "soon"]).status.success());
}

#[test]
fn structurally_broken_inputs_are_rejected_before_the_flow() {
    let path = std::env::temp_dir().join("rsynth_dead_marking_test.g");
    std::fs::write(&path, ".model broken\n.inputs a\n.graph\na+ a-\na- a+\n.marking { }\n.end\n")
        .unwrap();
    let out = rsynth(&[path.to_str().unwrap()]);
    let _ = std::fs::remove_file(&path);
    assert!(!out.status.success());
    let text = String::from_utf8(out.stderr).unwrap();
    assert!(text.contains("failed structural validation"), "{text}");
    assert!(text.contains("no token"), "{text}");
}

#[test]
fn emit_and_verify_flags_drive_the_gate_level_back_end() {
    let out = rsynth(&["--benchmark", "vme_read", "--emit", "eqn", "--verify-netlist"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("netlist chk : speed-independent, trace-equivalent"), "{text}");
    assert!(text.contains(".model vme_read"), "{text}");
    assert!(text.contains("= C("), "expected a generalized C-element in {text}");
    let out = rsynth(&["--benchmark", "pipe2_2", "--emit", "verilog"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("module pipe2_2"), "{text}");
    assert!(text.contains("gc_element"), "{text}");
    // Nothing to emit without the logic stage; the report still succeeds.
    let out = rsynth(&["--benchmark", "handshake", "--emit", "eqn", "--no-area"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stderr).unwrap();
    assert!(text.contains("nothing to emit"), "{text}");
    // Malformed formats are rejected up front.
    assert!(!rsynth(&["--benchmark", "handshake", "--emit", "blif"]).status.success());
}

#[test]
fn solver_flag_selects_the_engine() {
    let out = rsynth(&["--benchmark", "pulser", "--solver", "symbolic"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("csc solver  : symbolic engine"), "{text}");
    let out = rsynth(&["--benchmark", "pulser", "--solver", "explicit"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("csc solver  : explicit engine"), "{text}");
    let out = rsynth(&["--benchmark", "pulser", "--solver", "bogus"]);
    assert!(!out.status.success());
}
