//! Differential fuzz and fault-injection harness.
//!
//! Seeded random STGs ([`stg::fuzz`]) are driven through the governed flow
//! under deliberately tight budgets, asserting the robustness contract end
//! to end:
//!
//! * **no panics** — every outcome is a report or a typed error,
//! * **no deadline overruns** — a flow with a `timeout_ms` terminates
//!   within the deadline plus a bounded slack,
//! * **monotone ladder descent** — degradation events only ever move down
//!   the rung order, with a contiguous trail ending at the reported rung,
//! * **engine agreement** — the explicit and the symbolic reachability
//!   engines count the same states and reach the same CSC verdict,
//! * **parser hardening** — mutated `.g` text is rejected with typed
//!   errors, and the flow survives whatever still parses.
//!
//! Seed counts default to 500 per harness and can be lowered (or raised)
//! with the `RSYNTH_FUZZ_SEEDS` environment variable, e.g. for a quick CI
//! smoke pass.  A failing seed reproduces the exact same model.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;
use stg::fuzz::{mutate_g, random_stg, SplitMix64};
use synthkit::{run_flow, FlowOptions, FlowRung};

/// Number of seeds to drive, from `RSYNTH_FUZZ_SEEDS` or the default.
fn seed_count(default: u64) -> u64 {
    std::env::var("RSYNTH_FUZZ_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Extra wall-clock allowance on top of a configured deadline: one BDD
/// check interval plus the unbudgeted explicit rung on a tiny net.
const DEADLINE_SLACK_MS: u64 = 2_000;

#[test]
fn explicit_and_symbolic_engines_agree_on_fuzzed_models() {
    for seed in 0..seed_count(500) {
        let model = random_stg(seed);
        let sg = model.state_graph(200_000).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(sg.is_consistent(), "seed {seed}: inconsistent explicit state graph");
        let space = model.symbolic_state_space(None);
        assert!(space.converged, "seed {seed}: symbolic fixpoint truncated");
        assert_eq!(
            space.state_count(),
            sg.num_states() as u128,
            "seed {seed}: engines disagree on the reachable state count"
        );
        assert_eq!(
            !sg.complete_state_coding_holds(),
            model.symbolic_csc_violation(0),
            "seed {seed}: engines disagree on the CSC verdict"
        );
    }
}

#[test]
fn governed_flows_never_panic_overrun_or_descend_non_monotonically() {
    for seed in 0..seed_count(500) {
        let model = random_stg(seed);
        // Derive the fault injection from the same seed: a node ceiling
        // (often absurdly tight) plus a deadline, so even an explicit rung
        // that inherits a pathological model stays bounded.
        let mut rng = SplitMix64::new(seed ^ 0x5eed_ba5e);
        let options = FlowOptions {
            node_budget: Some(32 + rng.below(4096) as u64),
            timeout_ms: Some(20 + rng.below(300) as u64),
            ..FlowOptions::default()
        };
        let start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| run_flow(&model, &options)));
        let elapsed = start.elapsed().as_millis() as u64;
        let result = outcome.unwrap_or_else(|_| panic!("seed {seed}: run_flow panicked"));
        if let Some(timeout) = options.timeout_ms {
            assert!(
                elapsed < timeout + DEADLINE_SLACK_MS,
                "seed {seed}: flow overran the deadline ({elapsed} ms vs {timeout} ms)"
            );
        }
        // A typed solver error (e.g. an unsolvable conflict routed through
        // the explicit pipeline) is a legitimate outcome; the contract is
        // only that it is *typed*, which the Ok/Err split already proves.
        if let Ok(report) = result {
            // The degradation trail must descend monotonically and end
            // where the report says the flow ended.  (It need not start
            // at the symbolic rung: by-design routing — e.g. a typed
            // no-candidate failure — can hand over to the explicit rung
            // without a degradation event.)
            let mut position = FlowRung::Symbolic;
            for event in &report.degradations {
                assert!(
                    event.from >= position,
                    "seed {seed}: degradation trail moved up ({} after {position})",
                    event.from
                );
                assert!(
                    event.to > event.from,
                    "seed {seed}: ladder climbed ({} -> {})",
                    event.from,
                    event.to
                );
                position = event.to;
            }
            if let Some(last) = report.degradations.last() {
                assert_eq!(
                    report.rung, last.to,
                    "seed {seed}: reported rung does not match the trail"
                );
            }
        }
    }
}

#[test]
fn fuzzed_netlists_emit_round_trip_and_agree_with_the_cover_level_verdict() {
    let config = stg::ReachabilityConfig::default();
    for seed in 0..seed_count(500) {
        let model = random_stg(seed);
        let csc_violated = model.symbolic_csc_violation(0);
        // Cover-level agreement, direction one: the derivation succeeds
        // exactly when the covers satisfy ON ∧ OFF = ∅ over the reachable
        // codes — i.e. when the cover-level CSC check passes.
        let analysis = logic::analyze_stg(&model, 0, None);
        let analysis = match analysis {
            Ok(analysis) => {
                assert!(!csc_violated, "seed {seed}: covers derived despite a CSC violation");
                analysis
            }
            Err(error) => {
                assert!(
                    csc_violated,
                    "seed {seed}: derivation failed on a CSC-clean model: {error}"
                );
                continue;
            }
        };
        // Every CSC-free fuzzed STG goes through synthesis, both emission
        // formats, re-parsing, and the closed-loop verifier — none of
        // which may panic.
        let checked = catch_unwind(AssertUnwindSafe(|| {
            let circuit = netlist::synthesize(&model, &analysis.functions)
                .unwrap_or_else(|e| panic!("seed {seed}: synthesis failed: {e}"));
            let eqn = circuit.to_eqn();
            let _verilog = circuit.to_verilog();
            let reparsed = netlist::parse_eqn(&eqn)
                .unwrap_or_else(|e| panic!("seed {seed}: emitted .eqn must re-parse: {e}"));
            assert!(
                netlist::equivalent(&circuit, &reparsed).expect("equivalence check runs"),
                "seed {seed}: .eqn round-trip changed the circuit"
            );
            netlist::verify(&model, &circuit, 0, &config)
                .unwrap_or_else(|e| panic!("seed {seed}: verification errored: {e}"))
        }));
        let verification =
            checked.unwrap_or_else(|_| panic!("seed {seed}: the netlist back-end panicked"));
        // Exact covers on a CSC-clean model always reproduce the STG's
        // excitations state by state.
        assert!(verification.trace_equivalent, "seed {seed}: netlist diverges from the STG");
        // Speed-independence agreement with the cover-level persistency
        // check is one-directional: a gate-level hazard implies a cover
        // diagnostic (the converse can fail on same-signal co-enabled
        // transitions, which the gate model merges into one excitation).
        if !verification.speed_independent {
            assert!(
                !analysis.diagnostics.is_empty(),
                "seed {seed}: gate-level hazard without a cover-level diagnostic: {:?}",
                verification.diagnostics
            );
        }
        if analysis.diagnostics.is_empty() {
            assert!(
                verification.speed_independent,
                "seed {seed}: clean covers but the netlist check failed: {:?}",
                verification.diagnostics
            );
        }
    }
}

#[test]
fn mutated_g_text_never_panics_the_parser_or_the_flow() {
    for seed in 0..seed_count(500) {
        let base = random_stg(seed % 16).to_g();
        let mutated = mutate_g(&base, seed);
        let parsed = catch_unwind(|| stg::parse_g(&mutated))
            .unwrap_or_else(|_| panic!("seed {seed}: parse_g panicked on mutated input"));
        let Ok(model) = parsed else { continue };
        // Whatever still parses must survive validation …
        let report = catch_unwind(AssertUnwindSafe(|| stg::validate(&model)))
            .unwrap_or_else(|_| panic!("seed {seed}: validate panicked"));
        if report.has_errors() {
            continue;
        }
        // … and a tightly budgeted governed flow: a typed error or a
        // (possibly degraded) report, never a panic.
        let options =
            FlowOptions { node_budget: Some(512), timeout_ms: Some(500), ..FlowOptions::default() };
        let outcome = catch_unwind(AssertUnwindSafe(|| run_flow(&model, &options)));
        assert!(outcome.is_ok(), "seed {seed}: run_flow panicked on a mutated model");
    }
}
