//! Signals, signal kinds and transition polarities.

use std::fmt;

/// Identifier of a signal within an [`crate::Stg`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SignalId(pub u32);

impl SignalId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for SignalId {
    fn from(value: usize) -> Self {
        SignalId(value as u32)
    }
}

/// The interface role of a signal.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum SignalKind {
    /// Driven by the environment; the synthesis tool must never delay or
    /// insert transitions of input signals.
    Input,
    /// Driven by the circuit and observable by the environment.
    Output,
    /// Driven by the circuit but not observable (state signals inserted to
    /// solve CSC are internal).
    Internal,
}

impl SignalKind {
    /// Returns `true` for signals the circuit drives (outputs and internal
    /// signals) — the "non-input" signals of the CSC definition.
    pub fn is_non_input(self) -> bool {
        !matches!(self, SignalKind::Input)
    }
}

impl fmt::Display for SignalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalKind::Input => write!(f, "input"),
            SignalKind::Output => write!(f, "output"),
            SignalKind::Internal => write!(f, "internal"),
        }
    }
}

/// A named signal of an STG.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Signal {
    /// Signal name, e.g. `dsr`.
    pub name: String,
    /// Interface role.
    pub kind: SignalKind,
}

/// The direction of a signal transition.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Polarity {
    /// Rising edge `a+` (0 → 1).
    Rise,
    /// Falling edge `a-` (1 → 0).
    Fall,
    /// Toggle `a~` (either direction; resolved during state-graph
    /// construction).
    Toggle,
}

impl Polarity {
    /// The suffix used in `.g` files and transition names.
    pub fn suffix(self) -> &'static str {
        match self {
            Polarity::Rise => "+",
            Polarity::Fall => "-",
            Polarity::Toggle => "~",
        }
    }

    /// Parses a polarity from a label suffix character.
    pub fn from_suffix(c: char) -> Option<Polarity> {
        match c {
            '+' => Some(Polarity::Rise),
            '-' => Some(Polarity::Fall),
            '~' => Some(Polarity::Toggle),
            _ => None,
        }
    }
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.suffix())
    }
}

/// Splits an STG transition label such as `csc0+/2` into its base name,
/// polarity and instance number.
///
/// Returns `None` when the label has no polarity suffix (a dummy event).
pub fn split_label(label: &str) -> Option<(&str, Polarity, u32)> {
    let (stem, instance) = match label.split_once('/') {
        Some((stem, idx)) => (stem, idx.parse().ok()?),
        None => (label, 1),
    };
    let polarity = Polarity::from_suffix(stem.chars().last()?)?;
    let name = &stem[..stem.len() - 1];
    if name.is_empty() {
        return None;
    }
    Some((name, polarity, instance))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds() {
        assert!(!SignalKind::Input.is_non_input());
        assert!(SignalKind::Output.is_non_input());
        assert!(SignalKind::Internal.is_non_input());
        assert_eq!(SignalKind::Output.to_string(), "output");
    }

    #[test]
    fn polarity_round_trip() {
        for p in [Polarity::Rise, Polarity::Fall, Polarity::Toggle] {
            let c = p.suffix().chars().next().unwrap();
            assert_eq!(Polarity::from_suffix(c), Some(p));
        }
        assert_eq!(Polarity::from_suffix('x'), None);
    }

    #[test]
    fn label_splitting() {
        assert_eq!(split_label("a+"), Some(("a", Polarity::Rise, 1)));
        assert_eq!(split_label("dtack-/3"), Some(("dtack", Polarity::Fall, 3)));
        assert_eq!(split_label("x~"), Some(("x", Polarity::Toggle, 1)));
        assert_eq!(split_label("dummy"), None);
        assert_eq!(split_label("+"), None);
        assert_eq!(split_label("a+/x"), None);
    }
}
