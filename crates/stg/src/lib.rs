//! Signal Transition Graphs (STGs).
//!
//! An STG is a Petri net whose transitions are labelled with rising (`a+`)
//! and falling (`a-`) edges of circuit signals.  STGs are the input
//! formalism of the DAC'96 state-encoding paper: the designer writes an STG,
//! its reachability graph is a binary-encoded transition system, and the
//! Complete State Coding property must hold on that state graph before a
//! speed-independent circuit can be derived.
//!
//! This crate provides:
//!
//! * the STG model itself ([`Stg`], [`StgBuilder`], [`Signal`],
//!   [`SignalKind`], [`TransitionLabel`]),
//! * a reader and writer for the `astg` / SIS `.g` interchange format
//!   ([`parse_g`], [`Stg::to_g`]),
//! * binary-coded state graphs with consistency checking
//!   ([`StateGraph`], [`Stg::state_graph`]),
//! * a BDD-based symbolic reachability engine used for the very large
//!   benchmarks of Table 1 ([`symbolic`]),
//! * the benchmark suite used by the experiment harnesses
//!   ([`benchmarks`]),
//! * a structural validator with typed diagnostics ([`validate`]) and a
//!   seeded fuzzer for differential hardening ([`fuzz`]).
//!
//! # Example
//!
//! ```
//! use stg::benchmarks;
//!
//! // The VME bus controller (read cycle) — the classic CSC-conflict example.
//! let vme = benchmarks::vme_read();
//! let sg = vme.state_graph(10_000)?;
//! assert!(sg.is_consistent());
//! assert!(!sg.unique_state_coding_holds(), "the VME read cycle has code clashes");
//! # Ok::<(), stg::StgError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
mod error;
pub mod fuzz;
mod model;
mod parser;
mod signal;
mod state_graph;
pub mod symbolic;
mod validate;

pub use error::StgError;
pub use model::{Stg, StgBuilder, TransitionLabel};
pub use parser::parse_g;
pub use signal::{Polarity, Signal, SignalId, SignalKind};
pub use state_graph::StateGraph;
pub use symbolic::{
    ReachabilityConfig, ReachabilityStrategy, SymbolicStateSpace, TransitionBranch,
};
pub use validate::{validate, Severity, ValidationIssue, ValidationReport};
