//! Error type for STG construction and analysis.

use bdd::BudgetExceeded;
use petri::PetriError;
use std::error::Error;
use std::fmt;

/// Errors raised while building or analysing a Signal Transition Graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StgError {
    /// A problem in the underlying Petri net.
    Net(PetriError),
    /// The STG is not consistently labelled: along some firing sequence a
    /// signal would have to be both 0 and 1 in the same marking.
    Inconsistent {
        /// Name of the offending signal.
        signal: String,
        /// Name of the state-graph state where the contradiction appeared.
        state: String,
    },
    /// The STG has more signals than the *explicit* state-graph engine
    /// supports (explicit codes are packed in a 64-bit word; the symbolic
    /// engine has no such limit).
    TooManySignals {
        /// Number of signals in the STG.
        count: usize,
    },
    /// A `.g` file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// A signal or transition name was referenced but never declared.
    UnknownName {
        /// The undeclared name.
        name: String,
    },
    /// Symbolic reachability hit its iteration cap before reaching a
    /// fixpoint: the computed set is truncated and must not be used as "the
    /// reachable states".
    NotConverged {
        /// Image rounds performed before giving up.
        iterations: usize,
    },
    /// A resource budget (node ceiling, step ceiling, deadline or
    /// cancellation) tripped during a symbolic analysis.
    Budget(BudgetExceeded),
}

impl fmt::Display for StgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StgError::Net(e) => write!(f, "petri net error: {e}"),
            StgError::Inconsistent { signal, state } => {
                write!(f, "inconsistent labelling: signal '{signal}' has contradictory values in state {state}")
            }
            StgError::TooManySignals { count } => {
                write!(
                    f,
                    "the explicit state-graph engine supports at most 64 signals, the STG has \
                     {count} (use the symbolic engine for wider designs)"
                )
            }
            StgError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            StgError::UnknownName { name } => write!(f, "unknown signal or transition '{name}'"),
            StgError::NotConverged { iterations } => {
                write!(f, "symbolic reachability did not converge within {iterations} iterations")
            }
            StgError::Budget(e) => write!(f, "{e}"),
        }
    }
}

impl Error for StgError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StgError::Net(e) => Some(e),
            StgError::Budget(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PetriError> for StgError {
    fn from(value: PetriError) -> Self {
        StgError::Net(value)
    }
}

impl From<BudgetExceeded> for StgError {
    fn from(value: BudgetExceeded) -> Self {
        StgError::Budget(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = StgError::Inconsistent { signal: "lds".into(), state: "m17".into() };
        assert!(e.to_string().contains("lds"));
        assert!(e.to_string().contains("m17"));
        let p = StgError::Parse { line: 12, message: "missing .graph".into() };
        assert!(p.to_string().contains("12"));
        let n: StgError = PetriError::EmptyNet.into();
        assert!(n.source().is_some());
    }
}
