//! The STG model and its builder.

use crate::signal::{Polarity, Signal, SignalId, SignalKind};
use crate::StgError;
use petri::{PetriNet, PetriNetBuilder, PlaceId, TransId};
use std::collections::HashMap;
use std::fmt;

/// The interpretation of one Petri-net transition of an STG.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum TransitionLabel {
    /// A rising or falling edge of a signal.
    Edge {
        /// The signal.
        signal: SignalId,
        /// The direction of the edge.
        polarity: Polarity,
    },
    /// A dummy (silent) event that changes no signal.
    Dummy,
}

/// A Signal Transition Graph: a labelled safe Petri net.
///
/// Use [`StgBuilder`] to construct STGs programmatically or
/// [`crate::parse_g`] to read the `.g` interchange format.
#[derive(Clone)]
pub struct Stg {
    net: PetriNet,
    signals: Vec<Signal>,
    labels: Vec<TransitionLabel>,
    name: String,
}

impl Stg {
    pub(crate) fn from_parts(
        net: PetriNet,
        signals: Vec<Signal>,
        labels: Vec<TransitionLabel>,
        name: String,
    ) -> Self {
        debug_assert_eq!(net.num_transitions(), labels.len());
        Stg { net, signals, labels, name }
    }

    /// Wraps an existing labelled Petri net as an STG.
    ///
    /// This is the constructor used when an STG is *re-synthesized* from a
    /// transition system (e.g. after state-signal insertion): the caller
    /// provides the net, the signal table and one label per net transition.
    ///
    /// # Errors
    ///
    /// Returns [`StgError::UnknownName`] if `labels` does not have exactly
    /// one entry per transition or references a signal outside the table.
    pub fn from_labelled_net(
        net: PetriNet,
        signals: Vec<Signal>,
        labels: Vec<TransitionLabel>,
        name: impl Into<String>,
    ) -> Result<Self, StgError> {
        if labels.len() != net.num_transitions() {
            return Err(StgError::UnknownName {
                name: format!("expected {} labels, got {}", net.num_transitions(), labels.len()),
            });
        }
        for label in &labels {
            if let TransitionLabel::Edge { signal, .. } = label {
                if signal.index() >= signals.len() {
                    return Err(StgError::UnknownName {
                        name: format!("signal #{}", signal.index()),
                    });
                }
            }
        }
        Ok(Stg::from_parts(net, signals, labels, name.into()))
    }

    /// The underlying Petri net.
    pub fn net(&self) -> &PetriNet {
        &self.net
    }

    /// The model name (used by the `.g` writer).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All signals, indexed by [`SignalId`].
    pub fn signals(&self) -> &[Signal] {
        &self.signals
    }

    /// Number of signals.
    pub fn num_signals(&self) -> usize {
        self.signals.len()
    }

    /// The signal with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn signal(&self, id: SignalId) -> &Signal {
        &self.signals[id.index()]
    }

    /// Looks up a signal by name.
    pub fn signal_id(&self, name: &str) -> Option<SignalId> {
        self.signals.iter().position(|s| s.name == name).map(SignalId::from)
    }

    /// The label of a net transition.
    pub fn label(&self, trans: TransId) -> TransitionLabel {
        self.labels[trans.index()]
    }

    /// All transition labels, indexed by [`TransId`].
    pub fn labels(&self) -> &[TransitionLabel] {
        &self.labels
    }

    /// Ids of all input signals.
    pub fn input_signals(&self) -> Vec<SignalId> {
        self.signals_of_kind(SignalKind::Input)
    }

    /// Ids of all output signals.
    pub fn output_signals(&self) -> Vec<SignalId> {
        self.signals_of_kind(SignalKind::Output)
    }

    /// Ids of all internal signals.
    pub fn internal_signals(&self) -> Vec<SignalId> {
        self.signals_of_kind(SignalKind::Internal)
    }

    /// Ids of all non-input (circuit-driven) signals.
    pub fn non_input_signals(&self) -> Vec<SignalId> {
        self.signals
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind.is_non_input())
            .map(|(i, _)| SignalId::from(i))
            .collect()
    }

    fn signals_of_kind(&self, kind: SignalKind) -> Vec<SignalId> {
        self.signals
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == kind)
            .map(|(i, _)| SignalId::from(i))
            .collect()
    }

    /// All net transitions labelled with an edge of `signal`.
    pub fn transitions_of_signal(&self, signal: SignalId) -> Vec<TransId> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| matches!(l, TransitionLabel::Edge { signal: s, .. } if *s == signal))
            .map(|(i, _)| TransId::from(i))
            .collect()
    }

    /// Summary statistics: (places, transitions, signals).
    pub fn stats(&self) -> (usize, usize, usize) {
        (self.net.num_places(), self.net.num_transitions(), self.signals.len())
    }
}

impl fmt::Debug for Stg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (p, t, s) = self.stats();
        f.debug_struct("Stg")
            .field("name", &self.name)
            .field("places", &p)
            .field("transitions", &t)
            .field("signals", &s)
            .finish()
    }
}

/// Builder for [`Stg`].
///
/// # Example
///
/// ```
/// use stg::{StgBuilder, Polarity, SignalKind};
///
/// // A single four-phase handshake: req+ ; ack+ ; req- ; ack-.
/// let mut b = StgBuilder::new("handshake");
/// let req = b.add_signal("req", SignalKind::Input);
/// let ack = b.add_signal("ack", SignalKind::Output);
/// let rp = b.add_edge(req, Polarity::Rise);
/// let ap = b.add_edge(ack, Polarity::Rise);
/// let rm = b.add_edge(req, Polarity::Fall);
/// let am = b.add_edge(ack, Polarity::Fall);
/// b.connect_cycle(&[rp, ap, rm, am]);
/// let stg = b.build()?;
/// assert_eq!(stg.num_signals(), 2);
/// assert_eq!(stg.net().num_transitions(), 4);
/// # Ok::<(), stg::StgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StgBuilder {
    name: String,
    signals: Vec<Signal>,
    signal_index: HashMap<String, SignalId>,
    net: PetriNetBuilder,
    labels: Vec<TransitionLabel>,
    instance_counts: HashMap<(SignalId, Polarity), u32>,
    place_counter: usize,
}

impl StgBuilder {
    /// Creates an empty builder for a model with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        StgBuilder {
            name: name.into(),
            signals: Vec::new(),
            signal_index: HashMap::new(),
            net: PetriNetBuilder::new(),
            labels: Vec::new(),
            instance_counts: HashMap::new(),
            place_counter: 0,
        }
    }

    /// Declares (or looks up) a signal.  The kind of an existing signal is
    /// left unchanged.
    pub fn add_signal(&mut self, name: impl Into<String>, kind: SignalKind) -> SignalId {
        let name = name.into();
        if let Some(&id) = self.signal_index.get(&name) {
            return id;
        }
        let id = SignalId::from(self.signals.len());
        self.signal_index.insert(name.clone(), id);
        self.signals.push(Signal { name, kind });
        id
    }

    /// Declares an input signal.
    pub fn add_input(&mut self, name: impl Into<String>) -> SignalId {
        self.add_signal(name, SignalKind::Input)
    }

    /// Declares an output signal.
    pub fn add_output(&mut self, name: impl Into<String>) -> SignalId {
        self.add_signal(name, SignalKind::Output)
    }

    /// Declares an internal signal.
    pub fn add_internal(&mut self, name: impl Into<String>) -> SignalId {
        self.add_signal(name, SignalKind::Internal)
    }

    /// Adds a transition labelled with an edge of `signal`.  Repeated edges
    /// of the same signal and polarity get `/2`, `/3`, … instance suffixes.
    ///
    /// # Panics
    ///
    /// Panics if `signal` was not declared with this builder.
    pub fn add_edge(&mut self, signal: SignalId, polarity: Polarity) -> TransId {
        assert!(signal.index() < self.signals.len(), "undeclared signal {signal:?}");
        let counter = self.instance_counts.entry((signal, polarity)).or_insert(0);
        *counter += 1;
        let base = format!("{}{}", self.signals[signal.index()].name, polarity.suffix());
        let name = if *counter == 1 { base } else { format!("{base}/{counter}") };
        let trans = self.net.add_transition(name);
        debug_assert_eq!(trans.index(), self.labels.len());
        self.labels.push(TransitionLabel::Edge { signal, polarity });
        trans
    }

    /// Adds a dummy (silent) transition.
    pub fn add_dummy(&mut self, name: impl Into<String>) -> TransId {
        let trans = self.net.add_transition(name);
        debug_assert_eq!(trans.index(), self.labels.len());
        self.labels.push(TransitionLabel::Dummy);
        trans
    }

    /// Adds an explicit place.
    pub fn add_place(&mut self, name: impl Into<String>, marked: bool) -> PlaceId {
        self.net.add_place(name, u32::from(marked))
    }

    /// Puts an initial token on an already-created place.
    pub fn mark_place(&mut self, place: PlaceId) {
        self.net.mark_place(place);
    }

    /// Adds an arc from a place to a transition.
    pub fn arc_place_to_transition(&mut self, place: PlaceId, trans: TransId) {
        self.net.add_arc_place_to_transition(place, trans);
    }

    /// Adds an arc from a transition to a place.
    pub fn arc_transition_to_place(&mut self, trans: TransId, place: PlaceId) {
        self.net.add_arc_transition_to_place(trans, place);
    }

    /// Connects `from` to `to` through a fresh implicit place; `marked`
    /// places an initial token on it.
    pub fn connect(&mut self, from: TransId, to: TransId, marked: bool) -> PlaceId {
        self.place_counter += 1;
        let name = format!("p{}", self.place_counter);
        self.net.connect(from, to, name, marked)
    }

    /// Connects the given transitions in a cycle `t0 → t1 → … → t0`, with
    /// the initial token on the place entering `t0` (so `t0` is enabled in
    /// the initial marking).
    pub fn connect_cycle(&mut self, transitions: &[TransId]) {
        for window in transitions.windows(2) {
            self.connect(window[0], window[1], false);
        }
        if let (Some(&last), Some(&first)) = (transitions.last(), transitions.first()) {
            self.connect(last, first, true);
        }
    }

    /// Connects the given transitions in a linear chain `t0 → t1 → …`
    /// without closing the cycle.
    pub fn connect_chain(&mut self, transitions: &[TransId]) {
        for window in transitions.windows(2) {
            self.connect(window[0], window[1], false);
        }
    }

    /// Finalises the STG.
    ///
    /// The signal count is unbounded: only the *explicit* state-graph
    /// engine packs codes into a 64-bit word
    /// ([`StgError::TooManySignals`] is raised there); the symbolic engine
    /// and the symbolic logic back-end handle any width.
    ///
    /// # Errors
    ///
    /// Returns [`StgError::Net`] if the underlying net is malformed.
    pub fn build(self) -> Result<Stg, StgError> {
        let net = self.net.build()?;
        Ok(Stg::from_parts(net, self.signals, self.labels, self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let mut b = StgBuilder::new("toy");
        let a = b.add_input("a");
        let z = b.add_output("z");
        let ap = b.add_edge(a, Polarity::Rise);
        let zp = b.add_edge(z, Polarity::Rise);
        let am = b.add_edge(a, Polarity::Fall);
        let zm = b.add_edge(z, Polarity::Fall);
        b.connect_cycle(&[ap, zp, am, zm]);
        let stg = b.build().unwrap();
        assert_eq!(stg.name(), "toy");
        assert_eq!(stg.stats(), (4, 4, 2));
        assert_eq!(stg.signal_id("z"), Some(z));
        assert_eq!(stg.signal(a).kind, SignalKind::Input);
        assert_eq!(stg.input_signals(), vec![a]);
        assert_eq!(stg.output_signals(), vec![z]);
        assert_eq!(stg.non_input_signals(), vec![z]);
        assert_eq!(stg.transitions_of_signal(a).len(), 2);
        assert!(matches!(
            stg.label(ap),
            TransitionLabel::Edge { signal, polarity: Polarity::Rise } if signal == a
        ));
    }

    #[test]
    fn repeated_edges_get_instance_suffixes() {
        let mut b = StgBuilder::new("multi");
        let x = b.add_output("x");
        let first = b.add_edge(x, Polarity::Rise);
        let second = b.add_edge(x, Polarity::Rise);
        let fall = b.add_edge(x, Polarity::Fall);
        b.connect_cycle(&[first, fall, second]);
        // Need the second fall too for consistency, but name checking is the
        // point here.
        let stg = b.build().unwrap();
        assert_eq!(stg.net().transition_name(first), "x+");
        assert_eq!(stg.net().transition_name(second), "x+/2");
        assert_eq!(stg.net().transition_name(fall), "x-");
    }

    #[test]
    fn dummies_are_supported() {
        let mut b = StgBuilder::new("dummy");
        let a = b.add_input("a");
        let ap = b.add_edge(a, Polarity::Rise);
        let d = b.add_dummy("eps");
        let am = b.add_edge(a, Polarity::Fall);
        b.connect_cycle(&[ap, d, am]);
        let stg = b.build().unwrap();
        assert_eq!(stg.label(d), TransitionLabel::Dummy);
        assert_eq!(stg.internal_signals().len(), 0);
    }

    #[test]
    fn too_many_signals_is_rejected() {
        let mut b = StgBuilder::new("big");
        for i in 0..65 {
            b.add_output(format!("s{i}"));
        }
        let s0 = b.signal_index_for_test("s0");
        let up = b.add_edge(s0, Polarity::Rise);
        let dn = b.add_edge(s0, Polarity::Fall);
        b.connect_cycle(&[up, dn]);
        // Wide STGs build fine (the symbolic engines have no width limit);
        // only the explicit u64-coded state graph rejects them.
        let stg = b.build().unwrap();
        assert_eq!(stg.num_signals(), 65);
        assert!(matches!(
            stg.state_graph(1_000).unwrap_err(),
            StgError::TooManySignals { count: 65 }
        ));
    }

    impl StgBuilder {
        fn signal_index_for_test(&self, name: &str) -> SignalId {
            self.signal_index[name]
        }
    }

    #[test]
    fn signal_kind_is_not_overwritten() {
        let mut b = StgBuilder::new("kinds");
        let a1 = b.add_input("a");
        let a2 = b.add_output("a");
        assert_eq!(a1, a2);
        let up = b.add_edge(a1, Polarity::Rise);
        let dn = b.add_edge(a1, Polarity::Fall);
        b.connect_cycle(&[up, dn]);
        let stg = b.build().unwrap();
        assert_eq!(stg.signal(a1).kind, SignalKind::Input);
    }
}
