//! Deterministic STG fuzzing utilities.
//!
//! This module powers the differential robustness harness: it generates
//! *consistent-by-construction* STGs from a seed (so the explicit and the
//! symbolic engines can be run on the same model and compared), and mutates
//! `.g` interchange text (so the parser can be hardened against malformed
//! input).  Everything is seeded and reproducible — a failing seed printed
//! by the harness replays the exact same model.
//!
//! * [`random_stg`] / [`random_stg_with`] — seeded generator of safe, live,
//!   consistently-labelled STGs (fork/join marked graphs whose branches
//!   interleave rise-before-fall signal edges),
//! * [`mutate_g`] — seeded structural mutation of `.g` text: deleted,
//!   duplicated and truncated lines, token swaps, injected garbage,
//! * [`SplitMix64`] — the tiny deterministic RNG behind both, exposed so
//!   harnesses can derive auxiliary choices (budgets, strategies) from the
//!   same seed.

use crate::model::{Stg, StgBuilder};
use crate::signal::{Polarity, SignalId, SignalKind};

/// SplitMix64: a tiny, high-quality, deterministic pseudo-random generator.
///
/// Not cryptographic; used only to derive reproducible fuzz cases.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    /// Fair coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Size bounds for [`random_stg_with`].
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Maximum number of concurrent branches (≥ 1).
    pub max_branches: usize,
    /// Maximum number of signals owned by one branch (≥ 1).
    pub max_signals_per_branch: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig { max_branches: 3, max_signals_per_branch: 3 }
    }
}

/// Generates a random STG from `seed` with the default size bounds.
///
/// The result is always a safe, live, consistently-labelled STG: both the
/// explicit and the symbolic engines accept it, which is what makes the
/// differential comparison meaningful.
pub fn random_stg(seed: u64) -> Stg {
    random_stg_with(seed, &FuzzConfig::default())
}

/// Generates a random STG from `seed` within the given size bounds.
///
/// Shape: `branches` parallel chains between a fork dummy and a join dummy
/// (or a single plain cycle when only one branch is drawn).  Each branch
/// owns a disjoint set of signals and interleaves their edges uniformly at
/// random subject to *rise before fall*, so every signal alternates `0 → 1
/// → 0` along any firing of the cycle — the net is consistent by
/// construction, and as a marked graph it is free of choice, hence safe.
pub fn random_stg_with(seed: u64, config: &FuzzConfig) -> Stg {
    let mut rng = SplitMix64::new(seed);
    let branches = 1 + rng.below(config.max_branches.max(1));
    let mut b = StgBuilder::new(format!("fuzz_{seed:016x}"));

    // Disjoint per-branch signal sets; at least one output signal overall
    // so the model has circuit-driven behaviour to synthesize.
    let mut branch_orders: Vec<Vec<(SignalId, Polarity)>> = Vec::new();
    let mut signal_counter = 0usize;
    for branch in 0..branches {
        let signals = 1 + rng.below(config.max_signals_per_branch.max(1));
        let mut order: Vec<(SignalId, Polarity)> = Vec::new();
        for s in 0..signals {
            let kind = if branch == 0 && s == 0 {
                SignalKind::Output
            } else if rng.coin() {
                SignalKind::Input
            } else {
                SignalKind::Output
            };
            let id = b.add_signal(format!("s{signal_counter}"), kind);
            signal_counter += 1;
            // Insert the rising edge anywhere, the falling edge after it.
            let i = rng.below(order.len() + 1);
            order.insert(i, (id, Polarity::Rise));
            let j = i + 1 + rng.below(order.len() - i);
            order.insert(j, (id, Polarity::Fall));
        }
        branch_orders.push(order);
    }

    if branch_orders.len() == 1 {
        let chain: Vec<_> = branch_orders[0].iter().map(|&(s, p)| b.add_edge(s, p)).collect();
        b.connect_cycle(&chain);
    } else {
        let fork = b.add_dummy("fork");
        let join = b.add_dummy("join");
        for order in &branch_orders {
            let chain: Vec<_> = order.iter().map(|&(s, p)| b.add_edge(s, p)).collect();
            b.connect(fork, chain[0], false);
            b.connect_chain(&chain);
            b.connect(*chain.last().expect("branches are non-empty"), join, false);
        }
        b.connect(join, fork, true);
    }

    b.build().expect("fuzz STGs are structurally valid by construction")
}

/// Garbage fragments injected by [`mutate_g`].
const GARBAGE: &[&str] = &[
    "@@@",
    ".graph",
    ".marking {",
    ".inputs",
    "p? !!",
    "a+ b- c~",
    ".model",
    "<dangling,",
    ".end extra",
];

/// Applies 1–3 seeded structural mutations to `.g` interchange text.
///
/// Mutations include deleting, duplicating and truncating lines, swapping
/// tokens within a line, replacing a token with an undeclared name, and
/// injecting garbage lines.  The output is frequently *invalid*: the point
/// is that [`crate::parse_g`] must reject it with a typed
/// [`crate::StgError`] — never panic — and must still accept it when the
/// mutation happens to preserve validity.
pub fn mutate_g(text: &str, seed: u64) -> String {
    let mut rng = SplitMix64::new(seed ^ 0xda39_a3ee_5e6b_4b0d);
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    let mutations = 1 + rng.below(3);
    for _ in 0..mutations {
        if lines.is_empty() {
            lines.push(GARBAGE[rng.below(GARBAGE.len())].to_owned());
            continue;
        }
        let idx = rng.below(lines.len());
        match rng.below(6) {
            0 => {
                lines.remove(idx);
            }
            1 => {
                let dup = lines[idx].clone();
                lines.insert(idx, dup);
            }
            2 => {
                let line = &mut lines[idx];
                if !line.is_empty() {
                    let cut = rng.below(line.chars().count());
                    *line = line.chars().take(cut).collect();
                }
            }
            3 => {
                let mut tokens: Vec<&str> = lines[idx].split_whitespace().collect();
                if tokens.len() >= 2 {
                    let a = rng.below(tokens.len());
                    let b = rng.below(tokens.len());
                    tokens.swap(a, b);
                    lines[idx] = tokens.join(" ");
                }
            }
            4 => {
                let mut tokens: Vec<String> =
                    lines[idx].split_whitespace().map(str::to_owned).collect();
                if !tokens.is_empty() {
                    let a = rng.below(tokens.len());
                    tokens[a] = format!("undeclared_{}", rng.below(1000));
                    lines[idx] = tokens.join(" ");
                }
            }
            _ => {
                lines.insert(idx, GARBAGE[rng.below(GARBAGE.len())].to_owned());
            }
        }
    }
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_g;
    use crate::validate::validate;

    #[test]
    fn generated_stgs_are_well_formed() {
        for seed in 0..60 {
            let stg = random_stg(seed);
            let report = validate(&stg);
            assert!(report.is_clean(), "seed {seed}: {report}");
            let sg = stg.state_graph(100_000).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(sg.is_consistent(), "seed {seed} is inconsistent");
            assert!(sg.num_states() >= 2, "seed {seed} has a trivial state graph");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_stg(42).to_g();
        let b = random_stg(42).to_g();
        assert_eq!(a, b);
        let c = random_stg(43).to_g();
        assert_ne!(a, c);
    }

    #[test]
    fn generated_stgs_round_trip_through_g_format() {
        for seed in 0..20 {
            let stg = random_stg(seed);
            let text = stg.to_g();
            let back = parse_g(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(back.num_signals(), stg.num_signals(), "seed {seed}");
            assert_eq!(back.net().num_transitions(), stg.net().num_transitions(), "seed {seed}");
        }
    }

    #[test]
    fn mutation_is_deterministic_and_changes_the_text() {
        let base = random_stg(7).to_g();
        let a = mutate_g(&base, 1);
        let b = mutate_g(&base, 1);
        assert_eq!(a, b);
        let mut changed = 0;
        for seed in 0..20 {
            if mutate_g(&base, seed) != base {
                changed += 1;
            }
        }
        assert!(changed >= 15, "only {changed}/20 mutations changed the text");
    }

    #[test]
    fn parser_survives_mutated_text() {
        for model_seed in 0..5u64 {
            let base = random_stg(model_seed).to_g();
            for mutation_seed in 0..200u64 {
                // Ok (mutation kept validity) or typed Err are both fine;
                // the parser must simply never panic.
                let _ = parse_g(&mutate_g(&base, mutation_seed));
            }
        }
    }

    #[test]
    fn splitmix_is_uniform_enough() {
        let mut rng = SplitMix64::new(123);
        let mut buckets = [0usize; 8];
        for _ in 0..8000 {
            buckets[rng.below(8)] += 1;
        }
        for (i, &count) in buckets.iter().enumerate() {
            assert!((800..1200).contains(&count), "bucket {i} has {count} hits");
        }
    }
}
