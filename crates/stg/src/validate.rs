//! Structural validation of STGs.
//!
//! [`validate`] inspects the net structure and the signal labelling of an
//! [`Stg`] *before* any reachability analysis is attempted, and reports
//! every problem it finds as a typed [`ValidationIssue`].  The checks are
//! purely structural — linear in the size of the net — so they are cheap
//! enough to run on every input, and they catch the malformed-specification
//! classes that would otherwise surface deep inside the solvers as panics,
//! empty fixpoints or non-safe firings:
//!
//! | check                        | severity | downstream failure avoided        |
//! |------------------------------|----------|-----------------------------------|
//! | source transition            | error    | unbounded firing, non-safe net    |
//! | empty initial marking        | error    | empty reachable set / dead flow   |
//! | dead initial marking         | error    | dead flow with tokens present     |
//! | overmarked place pair        | error    | non-1-safe marking                |
//! | isolated place               | warning  | silent no-op structure            |
//! | sink transition              | warning  | token drain, eventual deadlock    |
//! | unused signal                | warning  | spurious state variables          |
//! | unbalanced signal            | warning  | likely inconsistent labelling     |
//!
//! Warnings describe nets the engines can still process; errors describe
//! nets that cannot have a well-defined safe reachability graph, so the CLI
//! refuses to start the flow on them.

use crate::model::{Stg, TransitionLabel};
use crate::signal::Polarity;
use petri::TransId;
use std::fmt;

/// How serious a [`ValidationIssue`] is.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// The net is unusual but analysable.
    Warning,
    /// The net cannot have a well-defined safe reachability graph.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One structural problem found by [`validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ValidationIssue {
    /// A transition with an empty pre-set: it is enabled in every marking,
    /// so it can fire unboundedly and the net cannot be safe.
    SourceTransition {
        /// Name of the transition.
        transition: String,
    },
    /// The initial marking carries no token at all, so no transition can
    /// ever fire and the reachable set is the initial marking alone.
    EmptyInitialMarking,
    /// The initial marking has tokens but enables no transition.
    DeadInitialMarking,
    /// Two initially marked places feed the same transition's post-place,
    /// i.e. the initial marking already over-marks a structural conflict —
    /// firing the shared consumer would put a second token in its output.
    ///
    /// Detected conservatively: a place is over-marked when it is initially
    /// marked *and* one of its producing transitions has all of its input
    /// places initially marked as well.
    OvermarkedPlace {
        /// Name of the over-marked place.
        place: String,
        /// Name of the producing transition that is already enabled.
        transition: String,
    },
    /// A place with no consuming and no producing transitions.
    IsolatedPlace {
        /// Name of the place.
        place: String,
    },
    /// A transition with an empty post-set: every firing drains a token
    /// from the net, so the net eventually deadlocks.
    SinkTransition {
        /// Name of the transition.
        transition: String,
    },
    /// A declared signal that labels no transition.
    UnusedSignal {
        /// Name of the signal.
        signal: String,
    },
    /// A signal whose rising and falling edge counts differ, which makes a
    /// consistent binary interpretation of any firing cycle unlikely.
    UnbalancedSignal {
        /// Name of the signal.
        signal: String,
        /// Number of rising-edge transitions.
        rising: usize,
        /// Number of falling-edge transitions.
        falling: usize,
    },
}

impl ValidationIssue {
    /// The severity class of this issue.
    pub fn severity(&self) -> Severity {
        match self {
            ValidationIssue::SourceTransition { .. }
            | ValidationIssue::EmptyInitialMarking
            | ValidationIssue::DeadInitialMarking
            | ValidationIssue::OvermarkedPlace { .. } => Severity::Error,
            ValidationIssue::IsolatedPlace { .. }
            | ValidationIssue::SinkTransition { .. }
            | ValidationIssue::UnusedSignal { .. }
            | ValidationIssue::UnbalancedSignal { .. } => Severity::Warning,
        }
    }
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationIssue::SourceTransition { transition } => {
                write!(f, "transition '{transition}' has no input place (fires unboundedly)")
            }
            ValidationIssue::EmptyInitialMarking => {
                write!(f, "the initial marking carries no token")
            }
            ValidationIssue::DeadInitialMarking => {
                write!(f, "the initial marking enables no transition")
            }
            ValidationIssue::OvermarkedPlace { place, transition } => {
                write!(
                    f,
                    "place '{place}' is marked while its producer '{transition}' is already \
                     enabled (firing it would break 1-safeness)"
                )
            }
            ValidationIssue::IsolatedPlace { place } => {
                write!(f, "place '{place}' is connected to no transition")
            }
            ValidationIssue::SinkTransition { transition } => {
                write!(f, "transition '{transition}' has no output place (drains tokens)")
            }
            ValidationIssue::UnusedSignal { signal } => {
                write!(f, "signal '{signal}' labels no transition")
            }
            ValidationIssue::UnbalancedSignal { signal, rising, falling } => {
                write!(
                    f,
                    "signal '{signal}' has {rising} rising but {falling} falling edges \
                     (labelling is likely inconsistent)"
                )
            }
        }
    }
}

/// The outcome of [`validate`]: every issue found, in deterministic order
/// (errors and warnings interleaved in discovery order).
#[derive(Clone, Debug, Default)]
pub struct ValidationReport {
    issues: Vec<ValidationIssue>,
}

impl ValidationReport {
    /// All issues, in discovery order.
    pub fn issues(&self) -> &[ValidationIssue] {
        &self.issues
    }

    /// `true` when no issue at all was found.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// `true` when at least one [`Severity::Error`] issue was found.
    pub fn has_errors(&self) -> bool {
        self.issues.iter().any(|i| i.severity() == Severity::Error)
    }

    /// The error-severity issues only.
    pub fn errors(&self) -> impl Iterator<Item = &ValidationIssue> {
        self.issues.iter().filter(|i| i.severity() == Severity::Error)
    }

    /// The warning-severity issues only.
    pub fn warnings(&self) -> impl Iterator<Item = &ValidationIssue> {
        self.issues.iter().filter(|i| i.severity() == Severity::Warning)
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for issue in &self.issues {
            writeln!(f, "{}: {issue}", issue.severity())?;
        }
        Ok(())
    }
}

/// Runs every structural check on `stg` and collects the findings.
///
/// # Example
///
/// ```
/// use stg::{validate, benchmarks};
///
/// let report = validate(&benchmarks::vme_read());
/// assert!(report.is_clean());
/// ```
pub fn validate(stg: &Stg) -> ValidationReport {
    let net = stg.net();
    let mut issues = Vec::new();

    for t in 0..net.num_transitions() {
        let t = TransId::from(t);
        if net.preset(t).is_empty() {
            issues.push(ValidationIssue::SourceTransition {
                transition: net.transition_name(t).to_owned(),
            });
        }
        if net.postset(t).is_empty() {
            issues.push(ValidationIssue::SinkTransition {
                transition: net.transition_name(t).to_owned(),
            });
        }
    }

    let initial = net.initial_marking();
    if initial.token_count() == 0 {
        issues.push(ValidationIssue::EmptyInitialMarking);
    } else if net.enabled_transitions(initial).is_empty() {
        issues.push(ValidationIssue::DeadInitialMarking);
    }

    for p in 0..net.num_places() {
        let p = petri::PlaceId::from(p);
        if net.place_postset(p).is_empty() && net.place_preset(p).is_empty() {
            issues.push(ValidationIssue::IsolatedPlace { place: net.place_name(p).to_owned() });
        }
        if initial.is_marked(p) {
            // A marked place whose producer is already enabled breaks
            // 1-safeness on the very first firing.
            if let Some(&t) = net
                .place_preset(p)
                .iter()
                .find(|&&t| net.is_enabled(initial, t) && !net.preset(t).contains(&p))
            {
                issues.push(ValidationIssue::OvermarkedPlace {
                    place: net.place_name(p).to_owned(),
                    transition: net.transition_name(t).to_owned(),
                });
            }
        }
    }

    let mut rising = vec![0usize; stg.num_signals()];
    let mut falling = vec![0usize; stg.num_signals()];
    for label in stg.labels() {
        if let TransitionLabel::Edge { signal, polarity } = label {
            match polarity {
                Polarity::Rise => rising[signal.index()] += 1,
                Polarity::Fall => falling[signal.index()] += 1,
                // A toggle edge flips the signal either way, so it neither
                // uses up a rise nor a fall; it still marks the signal used.
                Polarity::Toggle => {
                    rising[signal.index()] += 1;
                    falling[signal.index()] += 1;
                }
            }
        }
    }
    for (i, signal) in stg.signals().iter().enumerate() {
        if rising[i] == 0 && falling[i] == 0 {
            issues.push(ValidationIssue::UnusedSignal { signal: signal.name.clone() });
        } else if rising[i] != falling[i] {
            issues.push(ValidationIssue::UnbalancedSignal {
                signal: signal.name.clone(),
                rising: rising[i],
                falling: falling[i],
            });
        }
    }

    ValidationReport { issues }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::model::StgBuilder;
    use crate::signal::SignalKind;

    #[test]
    fn the_benchmarks_validate_cleanly() {
        for model in [
            benchmarks::vme_read(),
            benchmarks::handshake(),
            benchmarks::pulser(),
            benchmarks::wide_conflict(4),
            benchmarks::parallel_handshakes(3),
        ] {
            let report = validate(&model);
            assert!(report.is_clean(), "{}: {report}", model.name());
        }
    }

    #[test]
    fn a_source_transition_is_an_error() {
        let mut b = StgBuilder::new("source");
        let a = b.add_signal("a", SignalKind::Output);
        let up = b.add_edge(a, Polarity::Rise);
        let dn = b.add_edge(a, Polarity::Fall);
        // `up` gets an output place but no input place.
        b.connect(up, dn, false);
        b.add_place("seed", true);
        let stg = b.build().unwrap();
        let report = validate(&stg);
        assert!(report.has_errors());
        assert!(report.errors().any(
            |i| matches!(i, ValidationIssue::SourceTransition { transition } if transition == "a+")
        ));
        // `dn` never produces: flagged as a warning, not an error.
        assert!(report.warnings().any(
            |i| matches!(i, ValidationIssue::SinkTransition { transition } if transition == "a-")
        ));
    }

    #[test]
    fn empty_and_dead_markings_are_errors() {
        let mut b = StgBuilder::new("empty");
        let a = b.add_signal("a", SignalKind::Input);
        let up = b.add_edge(a, Polarity::Rise);
        let dn = b.add_edge(a, Polarity::Fall);
        b.connect(up, dn, false);
        b.connect(dn, up, false); // cycle, but no token anywhere
        let stg = b.build().unwrap();
        let report = validate(&stg);
        assert!(report.issues().contains(&ValidationIssue::EmptyInitialMarking));

        let mut b = StgBuilder::new("dead");
        let a = b.add_signal("a", SignalKind::Input);
        let up = b.add_edge(a, Polarity::Rise);
        let dn = b.add_edge(a, Polarity::Fall);
        b.connect(up, dn, true); // token *between* up and dn …
        b.connect(dn, up, false);
        let p = b.add_place("stray", true);
        let _ = p; // … plus a stray token nowhere useful
                   // `dn` needs both its input places; only one exists, so it is
                   // enabled — make it need the stray's sibling instead:
        let stg = b.build().unwrap();
        // Here dn *is* enabled, so this net is fine; build a genuinely dead
        // one: a single transition whose only input place is unmarked, with
        // the token parked on an output-only place.
        let report = validate(&stg);
        assert!(!report.issues().contains(&ValidationIssue::DeadInitialMarking));

        let mut b = StgBuilder::new("dead2");
        let a = b.add_signal("a", SignalKind::Input);
        let up = b.add_edge(a, Polarity::Rise);
        let dn = b.add_edge(a, Polarity::Fall);
        b.connect(up, dn, false);
        let parked = b.add_place("parked", true);
        b.arc_transition_to_place(dn, parked);
        b.arc_place_to_transition(parked, up);
        let pre = b.add_place("gate", false);
        b.arc_place_to_transition(pre, up);
        b.arc_transition_to_place(dn, pre);
        let stg = b.build().unwrap();
        let report = validate(&stg);
        assert!(report.issues().contains(&ValidationIssue::DeadInitialMarking));
    }

    #[test]
    fn overmarked_conflicts_are_detected() {
        let mut b = StgBuilder::new("overmarked");
        let a = b.add_signal("a", SignalKind::Output);
        let up = b.add_edge(a, Polarity::Rise);
        let dn = b.add_edge(a, Polarity::Fall);
        let p_in = b.add_place("in", true);
        let p_mid = b.add_place("mid", true); // already marked *and* up is enabled
        b.arc_place_to_transition(p_in, up);
        b.arc_transition_to_place(up, p_mid);
        b.arc_place_to_transition(p_mid, dn);
        b.arc_transition_to_place(dn, p_in);
        let stg = b.build().unwrap();
        let report = validate(&stg);
        assert!(report.errors().any(
            |i| matches!(i, ValidationIssue::OvermarkedPlace { place, .. } if place == "mid")
        ));
    }

    #[test]
    fn signal_labelling_warnings() {
        let mut b = StgBuilder::new("labels");
        let a = b.add_signal("a", SignalKind::Output);
        let _ghost = b.add_signal("ghost", SignalKind::Input);
        let up = b.add_edge(a, Polarity::Rise);
        let up2 = b.add_edge(a, Polarity::Rise);
        let dn = b.add_edge(a, Polarity::Fall);
        b.connect_cycle(&[up, dn, up2]);
        let stg = b.build().unwrap();
        let report = validate(&stg);
        assert!(!report.has_errors());
        assert!(report
            .warnings()
            .any(|i| matches!(i, ValidationIssue::UnusedSignal { signal } if signal == "ghost")));
        assert!(report.warnings().any(|i| matches!(
            i,
            ValidationIssue::UnbalancedSignal { signal, rising: 2, falling: 1 } if signal == "a"
        )));
    }

    #[test]
    fn isolated_places_are_warnings() {
        let mut b = StgBuilder::new("isolated");
        let a = b.add_signal("a", SignalKind::Input);
        let up = b.add_edge(a, Polarity::Rise);
        let dn = b.add_edge(a, Polarity::Fall);
        b.connect_cycle(&[up, dn]);
        b.add_place("floating", false);
        let stg = b.build().unwrap();
        let report = validate(&stg);
        assert!(!report.has_errors());
        assert!(report
            .warnings()
            .any(|i| matches!(i, ValidationIssue::IsolatedPlace { place } if place == "floating")));
    }

    #[test]
    fn severities_and_display_render() {
        assert!(Severity::Error > Severity::Warning);
        let issue = ValidationIssue::UnbalancedSignal { signal: "x".into(), rising: 3, falling: 1 };
        assert_eq!(issue.severity(), Severity::Warning);
        let text = issue.to_string();
        assert!(text.contains('x') && text.contains('3') && text.contains('1'));
    }
}
