//! BDD-based symbolic state-space exploration.
//!
//! The DAC'96 paper attributes petrify's capacity to handle "extremely large
//! state graphs" to the symbolic (OBDD) representation of the state graph.
//! This module provides that engine: markings of the safe net are encoded
//! with one BDD variable per place (plus, optionally, one variable per
//! signal for the binary code), reachability is computed as a least
//! fixpoint of per-transition image operators, and the CSC / USC properties
//! are checked by projecting the reachable set onto the code variables.
//!
//! The symbolic engine is used by the Table 1 harness to count state spaces
//! far beyond what explicit enumeration can touch (e.g. `4^16` markings for
//! a 16-wide parallel composition) and to detect the presence of encoding
//! conflicts without building the explicit graph.

use crate::model::{Stg, TransitionLabel};
use crate::signal::Polarity;
use bdd::{Bdd, BddManager, VarId};
use petri::TransId;

/// A symbolically represented set of reachable markings.
#[derive(Debug)]
pub struct SymbolicStateSpace {
    manager: BddManager,
    reachable: Bdd,
    num_places: usize,
    num_signals: usize,
    /// `true` when the fixpoint completed without hitting the iteration cap.
    pub converged: bool,
}

impl Stg {
    /// Computes the reachable markings symbolically (place variables only).
    ///
    /// `max_iterations` bounds the number of breadth-first image steps; the
    /// default (`None`) allows `4 × places` steps, which is ample for the
    /// benchmark suite.
    pub fn symbolic_state_space(&self, max_iterations: Option<usize>) -> SymbolicStateSpace {
        self.symbolic_space_inner(false, 0, max_iterations)
    }

    /// Computes the reachable (marking, code) pairs symbolically.
    ///
    /// Place variables come first, followed by one variable per signal.
    /// `initial_code` gives the signal values in the initial marking (bit
    /// `i` = signal `i`); the benchmark suite starts every signal at 0.
    pub fn symbolic_encoded_state_space(
        &self,
        initial_code: u64,
        max_iterations: Option<usize>,
    ) -> SymbolicStateSpace {
        self.symbolic_space_inner(true, initial_code, max_iterations)
    }

    fn symbolic_space_inner(
        &self,
        with_codes: bool,
        initial_code: u64,
        max_iterations: Option<usize>,
    ) -> SymbolicStateSpace {
        let net = self.net();
        let num_places = net.num_places();
        let num_signals = if with_codes { self.num_signals() } else { 0 };
        let num_vars = num_places + num_signals;
        // Pre-size the arena and unique table: reachability fixpoints build
        // nodes monotonically, and sizing up front avoids growth rehashing
        // in the middle of the image iteration.
        let mut m =
            BddManager::with_capacity(num_vars.max(1), (num_vars.max(8) * 512).min(1 << 20));

        // Initial state cube: the exact initial marking (and code).
        let mut initial_lits: Vec<(VarId, bool)> = (0..num_places)
            .map(|p| (p as VarId, net.initial_marking().is_marked(petri::PlaceId::from(p))))
            .collect();
        if with_codes {
            for s in 0..num_signals {
                initial_lits.push(((num_places + s) as VarId, initial_code & (1 << s) != 0));
            }
        }
        let mut reachable = m.cube_of(&initial_lits);

        // Precompute per-transition image operators *once*: the enabling
        // cube (marked preset plus the signal's pre-value), the set of
        // variables the firing changes, and the cube pinning their
        // post-values.  A toggle edge (`a~`) flips its code bit, which a
        // quantify-and-pin operator cannot express in one step, so it
        // expands into two branches — one per current bit value.  The
        // fixpoint loop below then performs only and/exists/or work per
        // branch per iteration instead of rebuilding the same cubes every
        // round.
        struct TransImage {
            enabled_cube: Bdd,
            changed: Vec<VarId>,
            pin_cube: Bdd,
        }
        /// One literal constraining a code bit (`None` = unconstrained).
        type CodeLit = Option<(VarId, bool)>;
        let images: Vec<TransImage> = (0..net.num_transitions())
            .flat_map(|t| {
                let t_id = TransId::from(t);
                let pre: Vec<VarId> = net.preset(t_id).iter().map(|p| p.index() as VarId).collect();
                let post: Vec<VarId> =
                    net.postset(t_id).iter().map(|p| p.index() as VarId).collect();
                let cleared: Vec<VarId> =
                    pre.iter().copied().filter(|v| !post.contains(v)).collect();
                let set: Vec<VarId> = post.iter().copied().filter(|v| !pre.contains(v)).collect();
                let signal_var = if with_codes {
                    match self.label(t_id) {
                        TransitionLabel::Edge { signal, polarity } => {
                            Some(((num_places + signal.index()) as VarId, polarity))
                        }
                        TransitionLabel::Dummy => None,
                    }
                } else {
                    None
                };
                let enabled_lits: Vec<(VarId, bool)> = pre.iter().map(|&v| (v, true)).collect();
                let mut changed: Vec<VarId> = cleared.clone();
                changed.extend(&set);
                let mut pinned: Vec<(VarId, bool)> = Vec::new();
                pinned.extend(cleared.iter().map(|&v| (v, false)));
                pinned.extend(set.iter().map(|&v| (v, true)));
                // (signal pre-value, signal post-value) per branch.
                let code_branches: Vec<(CodeLit, CodeLit)> = match signal_var {
                    Some((var, Polarity::Rise)) => {
                        vec![(Some((var, false)), Some((var, true)))]
                    }
                    Some((var, Polarity::Fall)) => {
                        vec![(Some((var, true)), Some((var, false)))]
                    }
                    // A toggle fires from either value and lands on the
                    // opposite one.
                    Some((var, Polarity::Toggle)) => vec![
                        (Some((var, false)), Some((var, true))),
                        (Some((var, true)), Some((var, false))),
                    ],
                    None => vec![(None, None)],
                };
                code_branches
                    .into_iter()
                    .map(|(pre_lit, post_lit)| {
                        let mut enabled_lits = enabled_lits.clone();
                        let mut changed = changed.clone();
                        let mut pinned = pinned.clone();
                        if let Some(lit) = pre_lit {
                            enabled_lits.push(lit);
                            changed.push(lit.0);
                        }
                        if let Some(lit) = post_lit {
                            pinned.push(lit);
                        }
                        TransImage {
                            enabled_cube: m.cube_of(&enabled_lits),
                            changed,
                            pin_cube: m.cube_of(&pinned),
                        }
                    })
                    .collect::<Vec<_>>()
            })
            .collect();

        let limit = max_iterations.unwrap_or(4 * num_places.max(8));
        let mut converged = false;
        for _ in 0..limit {
            let mut next = reachable;
            for img in &images {
                // States where the transition is enabled (with the signal
                // pre-value already folded into the cube).
                let firing = m.and(reachable, img.enabled_cube);
                if firing.is_false() {
                    continue;
                }
                // Quantify away every variable the firing changes, then pin
                // the new values.
                let mut successor = m.exists_many(firing, &img.changed);
                successor = m.and(successor, img.pin_cube);
                next = m.or(next, successor);
            }
            if next == reachable {
                converged = true;
                break;
            }
            reachable = next;
        }

        SymbolicStateSpace { manager: m, reachable, num_places, num_signals, converged }
    }
}

impl SymbolicStateSpace {
    /// Number of reachable markings (or marking/code pairs), as an exact
    /// count saturating at `u128::MAX`.
    pub fn state_count(&self) -> u128 {
        self.manager.sat_count(self.reachable)
    }

    /// Number of reachable markings as a float (robust beyond 128 places).
    pub fn state_count_f64(&self) -> f64 {
        self.manager.sat_count_f64(self.reachable)
    }

    /// Number of BDD nodes representing the reachable set — the compression
    /// factor the paper relies on.
    pub fn bdd_size(&self) -> usize {
        self.manager.size(self.reachable)
    }

    /// Returns `true` if the given marking (as a vector of booleans indexed
    /// by place, extended with signal values if the space is code-encoded)
    /// is reachable.
    pub fn contains(&self, assignment: &[bool]) -> bool {
        self.manager.eval(self.reachable, assignment)
    }

    /// Number of place variables.
    pub fn num_places(&self) -> usize {
        self.num_places
    }

    /// Number of signal (code) variables, 0 for a places-only space.
    pub fn num_signals(&self) -> usize {
        self.num_signals
    }
}

/// Symbolic encoding-property checks on a code-encoded state space.
impl Stg {
    /// Returns `true` if two distinct reachable markings share the same
    /// binary code (Unique State Coding violated), determined symbolically.
    pub fn symbolic_usc_violation(&self, initial_code: u64) -> bool {
        let space = self.symbolic_encoded_state_space(initial_code, None);
        let states = space.state_count_f64();
        // Project onto the code variables: the number of distinct codes.
        let mut m = space.manager;
        let place_vars: Vec<VarId> = (0..space.num_places as VarId).collect();
        let codes = m.exists_many(space.reachable, &place_vars);
        let distinct_codes = m.sat_count_f64(codes) / 2f64.powi(space.num_places as i32);
        states > distinct_codes + 0.5
    }

    /// Returns `true` if the STG has a CSC conflict, determined symbolically:
    /// some code is shared by a state that enables a non-input signal and a
    /// state that does not.
    pub fn symbolic_csc_violation(&self, initial_code: u64) -> bool {
        let space = self.symbolic_encoded_state_space(initial_code, None);
        let mut m = space.manager;
        let reachable = space.reachable;
        let place_vars: Vec<VarId> = (0..space.num_places as VarId).collect();
        for signal in self.non_input_signals() {
            // Enabled(signal) as a function of places: some transition of the
            // signal has all its input places marked.
            let mut enabled = m.bottom();
            for t in self.transitions_of_signal(signal) {
                let lits: Vec<(VarId, bool)> =
                    self.net().preset(t).iter().map(|p| (p.index() as VarId, true)).collect();
                let cube = m.cube_of(&lits);
                enabled = m.or(enabled, cube);
            }
            let with = m.and(reachable, enabled);
            let without = m.and_not(reachable, enabled);
            let codes_with = m.exists_many(with, &place_vars);
            let codes_without = m.exists_many(without, &place_vars);
            let clash = m.and(codes_with, codes_without);
            if !clash.is_false() {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use crate::benchmarks;

    #[test]
    fn symbolic_and_explicit_state_counts_agree() {
        for stg in [
            benchmarks::handshake(),
            benchmarks::pulser(),
            benchmarks::vme_read(),
            benchmarks::parallel_handshakes(3),
            benchmarks::parallelizer(4),
        ] {
            let explicit = stg.state_graph(1_000_000).unwrap().num_states() as u128;
            let space = stg.symbolic_state_space(None);
            assert!(space.converged, "{} did not converge", stg.name());
            assert_eq!(space.state_count(), explicit, "mismatch for {}", stg.name());
        }
    }

    #[test]
    fn symbolic_counts_scale_beyond_explicit_limits() {
        // 4^12 ≈ 16.7 million markings: cheap symbolically, expensive
        // explicitly.
        let stg = benchmarks::parallel_handshakes(12);
        let space = stg.symbolic_state_space(None);
        assert!(space.converged);
        assert_eq!(space.state_count(), 4u128.pow(12));
        assert!(space.bdd_size() < 10_000, "BDD must stay compact");
    }

    #[test]
    fn encoded_space_matches_state_graph() {
        let stg = benchmarks::pulser();
        let space = stg.symbolic_encoded_state_space(0, None);
        assert!(space.converged);
        // Each of the 6 markings has exactly one code, so the encoded space
        // also has 6 states.
        assert_eq!(space.state_count(), 6);
    }

    #[test]
    fn toggle_edges_flip_their_code_bit_symbolically() {
        use crate::{Polarity, SignalKind, StgBuilder};
        // c~ / d+ / c~ / d- ring: the same shape the explicit engine's
        // toggle test uses; c alternates 0,1,0,1 around the cycle.
        let mut b = StgBuilder::new("toggle");
        let c = b.add_signal("c", SignalKind::Output);
        let d = b.add_signal("d", SignalKind::Output);
        let c1 = b.add_edge(c, Polarity::Toggle);
        let dp = b.add_edge(d, Polarity::Rise);
        let c2 = b.add_edge(c, Polarity::Toggle);
        let dm = b.add_edge(d, Polarity::Fall);
        b.connect_cycle(&[c1, dp, c2, dm]);
        let stg = b.build().unwrap();
        let sg = stg.state_graph(100).unwrap();
        assert_eq!(sg.num_states(), 4);
        // The symbolic (marking, code) space must agree with the explicit
        // graph: 4 markings, each with a distinct code (c toggles).
        let space = stg.symbolic_encoded_state_space(0, None);
        assert!(space.converged);
        assert_eq!(space.state_count(), sg.num_states() as u128);
    }

    #[test]
    fn symbolic_usc_and_csc_checks() {
        assert!(!benchmarks::handshake().symbolic_usc_violation(0));
        assert!(!benchmarks::handshake().symbolic_csc_violation(0));
        assert!(benchmarks::pulser().symbolic_usc_violation(0));
        assert!(benchmarks::pulser().symbolic_csc_violation(0));
        assert!(benchmarks::vme_read().symbolic_csc_violation(0));
        assert!(!benchmarks::parallelizer(3).symbolic_csc_violation(0));
    }

    #[test]
    fn initial_marking_is_reachable() {
        let stg = benchmarks::vme_read();
        let space = stg.symbolic_state_space(None);
        let assignment = stg.net().initial_marking().to_bools();
        assert!(space.contains(&assignment));
    }
}
